#!/usr/bin/env python
"""Wall-clock benchmark harness (ROADMAP perf trajectory).

Measures the repo's three hot paths plus the tracer's overhead, all in
host time (virtual time is free — these numbers say how fast the
*simulator* runs, not how fast the simulated cloud is):

* ``solver_solves_per_s``   — HBSS ``solve_hour`` calls per second;
* ``solver_parallel_solves_per_s`` — the same solve fanned over a
  thread pool (``--jobs``), after asserting the parallel plan set is
  *identical* to the serial reference (the determinism contract);
* ``solver_batched_solves_per_s`` — HBSS with ``wave_size > 1``, which
  funnels each wave of fresh candidates through the cross-plan stacked
  Monte-Carlo kernel, gated on bit-identity with the scalar-reference
  fallback (``batched_evaluation=False``) on the same seed;
* ``solver_process_solves_per_s`` — the hour fan-out over forked worker
  *processes* (``parallel_backend="process"``), gated on the same
  serial-equality contract as the thread pool;
* ``executor_events_per_s`` — simulation events per second through the
  *serving phase*: an open-loop arrival trace injected into a deployed
  workflow, timed over the event-loop drain only (deploy and trace
  generation excluded, so the number isolates the executor + pubsub +
  KV + network hot path);
* ``workload_gen_events_per_s`` — arrival-trace generation rate of
  :func:`repro.data.workload.generate_arrivals` on a day-scale diurnal
  spec;
* ``fleet_solve_wall_s``    — wall seconds for one shared-cache
  ``check_all`` cycle over a registered fleet (200 workflows, 24 in
  smoke); *lower is better*, gated separately from the throughput
  metrics;
* ``mc_samples_per_s``      — Monte-Carlo simulation samples per second
  inside ``estimate_profile`` (measured by the phase profiler);
* ``tracer_overhead_pct``   — wall-clock cost of running with a live
  :class:`~repro.obs.trace.Tracer` vs the no-op ``NULL_TRACER``,
  best-of-3 each to shed scheduler noise;
* ``tracer_sampled_overhead_pct`` — the same comparison with request
  sampling (``Tracer(sample_every=8)``), the cheap way to keep traces
  on hot paths;
* ``telemetry_overhead_pct``  — events/s cost of a live
  :class:`~repro.obs.timeseries.WindowedSampler` on the serving phase,
  gated by an absolute ceiling (5 % by default) and paired with
  byte-identity aborts on the windowed series (same seed twice, and
  serial vs thread-fan-out solves).

Results are written as ``BENCH_<label>.json`` (schema
``caribou.bench/v1``) and optionally compared against a committed
baseline: any throughput metric slower than ``--max-regression`` times
the baseline fails the gate (exit code 1), which is what CI's
perf-smoke job enforces.

Usage::

    python scripts/bench.py --smoke                     # quick CI shape
    python scripts/bench.py --label mybox               # full run
    python scripts/bench.py --smoke --baseline BENCH_baseline.json
    python scripts/bench.py --smoke --update-baseline   # refresh baseline
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import get_app  # noqa: E402
from repro.apps.base import default_config  # noqa: E402
from repro.cloud.provider import SimulatedCloud  # noqa: E402
from repro.common.rng import RngRegistry  # noqa: E402
from repro.core.deployer import DeploymentUtility  # noqa: E402
from repro.core.fleet import FleetManager  # noqa: E402
from repro.core.solver import (  # noqa: E402
    ExactSolver,
    HBSSSolver,
    SolverSettings,
    SolverStats,
)
from repro.data.workload import (  # noqa: E402
    OpenLoopInjector,
    WorkloadSpec,
    generate_arrivals,
    generate_trace,
)
from repro.experiments.harness import (  # noqa: E402
    BENCH_SOLVER_SETTINGS,
    build_plan_evaluator,
    deploy_benchmark,
    run_caribou,
    solve_plan_set,
    warm_up,
)
from repro.metrics.carbon import TransmissionScenario  # noqa: E402
from repro.model.config import Tolerances  # noqa: E402
from repro.obs.profile import Profiler, set_profiler  # noqa: E402
from repro.obs.timeseries import (  # noqa: E402
    TelemetryConfig,
    WindowedSampler,
    series_to_jsonl,
)
from repro.obs.trace import Tracer  # noqa: E402

#: Schema identifier embedded in every benchmark document.
BENCH_SCHEMA = "caribou.bench/v1"

#: Metrics where *higher is better*; the regression gate applies to these.
THROUGHPUT_METRICS = (
    "executor_events_per_s",
    "mc_samples_per_s",
    "solver_batched_solves_per_s",
    "solver_parallel_solves_per_s",
    "solver_process_solves_per_s",
    "service_jobs_per_s",
    "solver_solves_per_s",
    "workload_gen_events_per_s",
)

#: Metrics where *lower is better* (wall seconds); the regression gate
#: fails when current exceeds ``baseline * max_regression``.
LATENCY_METRICS = ("fleet_solve_wall_s",)

#: Solver-quality metrics (percentage points, lower is better).  The
#: HBSS optimality gap sits at ~0 pp on a healthy solver, so a ratio
#: gate is meaningless — the gate is *absolute*: current may exceed the
#: baseline by at most ``--max-quality-regression-pp`` points.
QUALITY_METRICS = ("hbss_carbon_gap_pct",)

#: Default absolute slack for the quality gate, in percentage points.
MAX_QUALITY_REGRESSION_PP = 2.0

#: Overhead metrics gated by an *absolute ceiling* (percent), not a
#: baseline ratio: windowed telemetry must stay within this share of
#: the untelemetered ``executor_events_per_s``, whatever the machine.
OVERHEAD_METRICS = ("telemetry_overhead_pct",)

#: Default ceiling for the telemetry-overhead gate, in percent.
MAX_TELEMETRY_OVERHEAD_PCT = 5.0

APP = "text2speech_censoring"

#: Apps and latency-tolerance sweep for the solver-quality stage.
QUALITY_APPS = ("rag_ingestion", "text2speech_censoring", "video_analytics")
QUALITY_TOLERANCES = (None, 0.25, 0.05)


def validate_bench(doc: Dict[str, Any]) -> List[str]:
    """Validate a benchmark document; returns a list of problems
    (empty == valid).  Kept dependency-free on purpose — the repo has no
    jsonschema package."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(doc.get("label"), str) or not doc.get("label"):
        problems.append("label must be a non-empty string")
    if not isinstance(doc.get("smoke"), bool):
        problems.append("smoke must be a boolean")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
        metrics = {}
    for name in THROUGHPUT_METRICS + LATENCY_METRICS + QUALITY_METRICS + (
        OVERHEAD_METRICS
    ) + (
        "tracer_overhead_pct",
        "tracer_sampled_overhead_pct",
    ):
        entry = metrics.get(name)
        if not isinstance(entry, dict):
            problems.append(f"metrics.{name} missing")
            continue
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"metrics.{name}.value must be a number")
        elif name in THROUGHPUT_METRICS + LATENCY_METRICS and value <= 0:
            problems.append(f"metrics.{name}.value must be positive")
        elif name in QUALITY_METRICS and value < -1e-6:
            # exact is a proven lower bound; a *negative* gap means the
            # heuristic beat the optimum — i.e. the exact solver broke.
            problems.append(f"metrics.{name}.value must be non-negative")
        if not isinstance(entry.get("unit"), str):
            problems.append(f"metrics.{name}.unit must be a string")
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        problems.append("phases must be an object")
    else:
        for phase, entry in phases.items():
            for key in ("calls", "self_s", "total_s"):
                if key not in entry:
                    problems.append(f"phases.{phase}.{key} missing")
    return problems


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
    max_quality_pp: float = MAX_QUALITY_REGRESSION_PP,
    max_overhead_pct: float = MAX_TELEMETRY_OVERHEAD_PCT,
) -> List[str]:
    """Compare throughput metrics against a baseline document.

    Returns failure lines for every metric slower than
    ``baseline / max_regression``.  Absolute wall-clock numbers vary by
    machine, so the gate is deliberately loose — it exists to catch
    order-of-magnitude accidents (an O(n^2) slip, a hot path suddenly
    allocating), not 10 % jitter.

    Quality metrics (``QUALITY_METRICS``) gate differently: they are
    deterministic (seeded virtual-time solves, no wall clock involved)
    and sit near zero, so the gate is an absolute percentage-point
    ceiling — current may exceed baseline by at most ``max_quality_pp``.
    """
    failures: List[str] = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in THROUGHPUT_METRICS:
        base = (base_metrics.get(name) or {}).get("value")
        cur = (cur_metrics.get(name) or {}).get("value")
        if not base or not cur:
            continue
        ratio = base / cur
        if ratio > max_regression:
            failures.append(
                f"{name}: {cur:.1f} vs baseline {base:.1f} "
                f"({ratio:.2f}x slower, limit {max_regression:.2f}x)"
            )
    for name in LATENCY_METRICS:
        base = (base_metrics.get(name) or {}).get("value")
        cur = (cur_metrics.get(name) or {}).get("value")
        if not base or not cur:
            continue
        ratio = cur / base  # lower is better: slower means cur grows
        if ratio > max_regression:
            failures.append(
                f"{name}: {cur:.2f}s vs baseline {base:.2f}s "
                f"({ratio:.2f}x slower, limit {max_regression:.2f}x)"
            )
    for name in QUALITY_METRICS:
        base = (base_metrics.get(name) or {}).get("value")
        cur = (cur_metrics.get(name) or {}).get("value")
        if base is None or cur is None:
            continue
        if cur > base + max_quality_pp:
            failures.append(
                f"{name}: {cur:.3f} pp vs baseline {base:.3f} pp "
                f"(exceeds absolute slack of {max_quality_pp:.2f} pp)"
            )
    for name in OVERHEAD_METRICS:
        # Absolute ceiling, baseline-independent: telemetry that costs
        # more than the ceiling is broken on *any* machine.
        cur = (cur_metrics.get(name) or {}).get("value")
        if cur is None:
            continue
        if cur > max_overhead_pct:
            failures.append(
                f"{name}: {cur:.2f}% exceeds the absolute ceiling of "
                f"{max_overhead_pct:.2f}%"
            )
    return failures


# -------------------------------------------------------------------- workloads
def bench_solver(smoke: bool) -> Dict[str, float]:
    """HBSS solves/sec and MC samples/sec over a warmed-up deployment."""
    profiler = Profiler()
    prev = set_profiler(profiler)
    try:
        cloud = SimulatedCloud(seed=7)
        app = get_app(APP)
        deployed, executor, _ = deploy_benchmark(app, cloud)
        warm_up(executor, app, "small", n=6 if smoke else 12)
        stats = SolverStats()
        hours = list(range(2 if smoke else 8))
        t0 = time.perf_counter()
        solve_plan_set(
            deployed,
            executor,
            TransmissionScenario.best_case(),
            hours=hours,
            stats=stats,
        )
        elapsed = time.perf_counter() - t0
    finally:
        set_profiler(prev)
    mc_s = profiler.total_s("mc.estimate_profile")
    return {
        "solver_solves_per_s": len(hours) / max(elapsed, 1e-9),
        "mc_samples_per_s": stats.samples_drawn / max(mc_s, 1e-9),
        "solver_wall_s": elapsed,
        "mc_wall_s": mc_s,
        "mc_samples": float(stats.samples_drawn),
        "phases": profiler.snapshot(),  # hoisted into the doc by run_bench
    }


def _solved_workload(
    smoke: bool,
    jobs: int,
    backend: Optional[str] = None,
    settings=None,
    n_hours: Optional[int] = None,
):
    """Fresh same-seeded deployment, warmed up and solved with ``jobs``
    workers; returns ``(plan_set, solve_wall_s, n_hours)``.  ``backend``
    and ``settings`` pass straight through to ``solve_plan_set``."""
    cloud = SimulatedCloud(seed=7)
    app = get_app(APP)
    deployed, executor, _ = deploy_benchmark(app, cloud)
    warm_up(executor, app, "small", n=6 if smoke else 12)
    if n_hours is None:
        n_hours = 2 if smoke else 8
    hours = list(range(n_hours))
    kwargs = {}
    if settings is not None:
        kwargs["solver_settings"] = settings
    t0 = time.perf_counter()
    plan_set = solve_plan_set(
        deployed,
        executor,
        TransmissionScenario.best_case(),
        hours=hours,
        jobs=jobs,
        backend=backend,
        **kwargs,
    )
    return plan_set, time.perf_counter() - t0, len(hours)


def bench_parallel_solver(smoke: bool, jobs: int) -> Dict[str, float]:
    """Parallel solves/sec — and the determinism contract: the parallel
    plan set must be *identical* to the serial reference on the same
    seed.  A mismatch is a correctness bug, not a perf number, so it
    aborts the bench."""
    serial_ps, _, _ = _solved_workload(smoke, jobs=1)
    parallel_ps, elapsed, n_hours = _solved_workload(smoke, jobs=jobs)
    if parallel_ps.to_dict() != serial_ps.to_dict():
        raise RuntimeError(
            f"parallel plan set (jobs={jobs}) differs from the serial "
            "reference on the same seed — determinism contract violated"
        )
    return {
        "solver_parallel_solves_per_s": n_hours / max(elapsed, 1e-9),
        "solver_parallel_jobs": float(jobs),
        "solver_parallel_wall_s": elapsed,
    }


#: HBSS candidate wave size for the batched-solver bench: big enough to
#: keep the stacked kernel busy, small enough that smoke stays fast.
BATCH_WAVE = 8


def bench_batched_solver(smoke: bool) -> Dict[str, float]:
    """Wave-batched solves/sec — HBSS with ``wave_size > 1`` funnels
    every wave of fresh candidates through the cross-plan stacked
    Monte-Carlo kernel.  Gate: the batched run must produce the
    *bit-identical* plan set of the scalar-reference fallback
    (``batched_evaluation=False``) on the same seed; a mismatch is a
    correctness bug, so it aborts the bench."""
    wave = dataclasses.replace(BENCH_SOLVER_SETTINGS, wave_size=BATCH_WAVE)
    scalar = dataclasses.replace(wave, batched_evaluation=False)
    scalar_ps, _, _ = _solved_workload(smoke, jobs=1, settings=scalar)
    batched_ps, elapsed, n_hours = _solved_workload(
        smoke, jobs=1, settings=wave
    )
    if batched_ps.to_dict() != scalar_ps.to_dict():
        raise RuntimeError(
            f"batched plan set (wave_size={BATCH_WAVE}) differs from the "
            "scalar-reference fallback on the same seed — batched kernel "
            "bit-identity violated"
        )
    return {
        "solver_batched_solves_per_s": n_hours / max(elapsed, 1e-9),
        "solver_batched_wave": float(BATCH_WAVE),
        "solver_batched_wall_s": elapsed,
    }


def bench_process_solver(smoke: bool, jobs: int) -> Dict[str, float]:
    """Process-pool solves/sec — the hour fan-out over forked workers.
    Same determinism contract as the thread pool: the process plan set
    must be identical to the serial reference on the same seed.  Runs a
    full 24-hour day even in smoke so the one-off fork cost is amortised
    the way real solves amortise it."""
    n_hours = 24
    serial_ps, _, _ = _solved_workload(smoke, jobs=1, n_hours=n_hours)
    process_ps, elapsed, n_hours = _solved_workload(
        smoke, jobs=jobs, backend="process", n_hours=n_hours
    )
    if process_ps.to_dict() != serial_ps.to_dict():
        raise RuntimeError(
            f"process plan set (jobs={jobs}) differs from the serial "
            "reference on the same seed — determinism contract violated"
        )
    return {
        "solver_process_solves_per_s": n_hours / max(elapsed, 1e-9),
        "solver_process_jobs": float(jobs),
        "solver_process_wall_s": elapsed,
    }


def _timed_run(n_invocations: int, tracer: Optional[Tracer]) -> Dict[str, float]:
    """One full Caribou run; returns wall seconds and events executed."""
    app = get_app(APP)
    t0 = time.perf_counter()
    outcome = run_caribou(
        app,
        "small",
        ("us-east-1", "ca-central-1"),
        seed=3,
        n_invocations=n_invocations,
        tracer=tracer,
    )
    elapsed = time.perf_counter() - t0
    assert outcome.n_invocations == n_invocations
    return {"wall_s": elapsed}


def bench_executor(smoke: bool) -> Dict[str, float]:
    """Events/sec through the serving phase.

    Deploys once (untimed), generates an open-loop arrival trace
    (untimed), injects it through :class:`OpenLoopInjector`, and times
    the event-loop drain alone — the number measures how fast the
    simulator serves traffic, not how fast it deploys or solves.
    """
    cloud = SimulatedCloud(seed=3)
    app = get_app(APP)
    _deployed, executor, _ = deploy_benchmark(app, cloud)
    spec = WorkloadSpec(
        base_rate_per_s=20.0,
        duration_s=60.0 if smoke else 1200.0,
        profile="steady",
    )
    trace = generate_trace(spec, cloud.env.rng.get("bench.workload"))
    injector = OpenLoopInjector(executor, trace)
    injector.start()
    env = cloud.env
    before = env.events_executed
    t0 = time.perf_counter()
    env.run_until_idle()
    elapsed = time.perf_counter() - t0
    events = float(env.events_executed - before)
    return {
        "executor_events_per_s": events / max(elapsed, 1e-9),
        "executor_events": events,
        "executor_requests": float(injector.injected),
        "executor_wall_s": elapsed,
    }


def bench_workload_gen(smoke: bool) -> Dict[str, float]:
    """Arrival-trace generation rate on a day-scale diurnal spec."""
    spec = WorkloadSpec(
        base_rate_per_s=100.0 if smoke else 500.0,
        duration_s=3600.0 if smoke else 14400.0,
        profile="diurnal",
    )
    rng = RngRegistry(7).get("bench.workload_gen")
    t0 = time.perf_counter()
    times = generate_arrivals(spec, rng)
    elapsed = time.perf_counter() - t0
    return {
        "workload_gen_events_per_s": len(times) / max(elapsed, 1e-9),
        "workload_gen_events": float(len(times)),
        "workload_gen_wall_s": elapsed,
    }


#: Fleet sizes for the shared-cache sweep bench.
FLEET_SIZE = 200
FLEET_SIZE_SMOKE = 24

#: Small solver settings for the fleet sweep: each check solves one
#: hour, so the sweep's wall clock is dominated by per-workflow fixed
#: costs — exactly what the fleet layer's sharing is meant to amortise.
FLEET_BENCH_SETTINGS = SolverSettings(
    batch_size=30, max_samples=60, cov_threshold=0.2, alpha_per_node_region=2
)


def bench_fleet(smoke: bool) -> Dict[str, float]:
    """Wall seconds for one shared-cache ``check_all`` cycle.

    Registers ``FLEET_SIZE`` copies of the benchmark app (names
    uniquified) under one :class:`FleetManager`, so every check shares
    the fleet's evaluation-cache scopes and the daily forecast refits.
    Each workflow gets a couple of warm-up requests first — a manager
    only solves for workflows with observed invocations.
    """
    n = FLEET_SIZE_SMOKE if smoke else FLEET_SIZE
    cloud = SimulatedCloud(seed=5)
    utility = DeploymentUtility(cloud)
    fleet = FleetManager(
        cloud,
        utility,
        TransmissionScenario.best_case(),
        solver_settings=FLEET_BENCH_SETTINGS,
        use_forecast=False,
        use_token_bucket=False,
        fixed_granularity=1,
    )
    app = get_app(APP)
    executors = []
    for i in range(n):
        workflow = app.build_workflow()
        workflow.name = f"{workflow.name}-{i:03d}"
        deployed, executor = utility.deploy(
            workflow, default_config(benchmarking_fraction=0.0)
        )
        fleet.register(deployed, executor)
        executors.append(executor)
    for executor in executors:
        for _ in range(2):
            executor.invoke(app.make_input("small"), force_home=True)
        cloud.env.run_until_idle()
    t0 = time.perf_counter()
    reports = fleet.check_all()
    elapsed = time.perf_counter() - t0
    solved = sum(1 for r in reports.values() if r.solved)
    if solved != n:
        raise RuntimeError(
            f"fleet sweep solved {solved}/{n} workflows — the bench must "
            "exercise one solve per registered workflow"
        )
    report = fleet.fleet_report()
    return {
        "fleet_solve_wall_s": elapsed,
        "fleet_workflows": float(n),
        "fleet_cache_estimates": float(report["cache_estimates"]),
        "fleet_checks": float(report["checks"]),
    }


SERVICE_JOBS = 8
SERVICE_JOBS_SMOKE = 3


def bench_service(smoke: bool) -> Dict[str, float]:
    """Jobs per wall second through the full service pipeline.

    Submits ``SERVICE_JOBS`` copies of the benchmark app to a
    :class:`~repro.service.ServiceEngine` and drains them
    SUBMITTED -> MONITORING (deploy, warm-up + solve, migrate, register
    with the fleet).  The solve dominates, so this is effectively the
    end-to-end cost of onboarding one tenant.
    """
    from repro.service import MONITORING, MemoryJobStore, ServiceEngine

    n = SERVICE_JOBS_SMOKE if smoke else SERVICE_JOBS
    cloud = SimulatedCloud(seed=11)
    engine = ServiceEngine(cloud, MemoryJobStore())
    for _ in range(n):
        engine.submit(APP, "small")
    t0 = time.perf_counter()
    steps = engine.run(max_steps=4 * n + 4)
    elapsed = time.perf_counter() - t0
    done = sum(1 for r in engine.jobs() if r.state == MONITORING)
    if done != n:
        raise RuntimeError(
            f"service drained {done}/{n} jobs to MONITORING — the bench "
            "must push every job through the whole pipeline"
        )
    return {
        "service_jobs_per_s": done / elapsed,
        "service_jobs": float(n),
        "service_steps": float(steps),
    }


#: Request-sampling period for the sampled-tracer bench.
TRACE_SAMPLE_EVERY = 8


def bench_solver_quality(smoke: bool) -> Dict[str, float]:
    """HBSS optimality gap vs the branch-and-bound exact optimum.

    For each (app, latency-tolerance) case, both solvers run against
    *one shared evaluator* — same learned metrics, same per-plan RNG
    substreams, same cache — so every per-plan metric is bit-identical
    across solvers and the measured gap is purely search quality:

        gap_pct = (hbss_carbon - exact_carbon) / exact_carbon * 100

    The whole stage is deterministic (seeded virtual-time runs, no wall
    clock in the numbers), which is what lets CI pin it with an
    absolute percentage-point gate instead of a loose speed ratio.
    """
    apps = QUALITY_APPS[:2] if smoke else QUALITY_APPS
    tolerances = QUALITY_TOLERANCES[:2] if smoke else QUALITY_TOLERANCES
    hours = [0] if smoke else [0, 12]
    gaps: List[float] = []
    for app_name in apps:
        for tol in tolerances:
            cloud = SimulatedCloud(seed=11)
            app = get_app(app_name)
            deployed, executor, _ = deploy_benchmark(
                app,
                cloud,
                tolerances=None if tol is None else Tolerances(latency=tol),
            )
            warm_up(executor, app, "small", n=6)
            evaluator = build_plan_evaluator(
                deployed, TransmissionScenario.best_case()
            )
            hbss = HBSSSolver(
                evaluator,
                cloud.env.rng.get(f"solver:{deployed.name}"),
                rng_factory=lambda h: cloud.env.rng.get(
                    f"solver:{deployed.name}:hour={h}"
                ),
            )
            hbss_set, _ = hbss.solve_day(hours)
            exact_set = ExactSolver(evaluator).solve_day(hours)
            for hour in hours:
                hbss_carbon = evaluator.estimate(
                    hbss_set.plan_for_hour(hour), hour
                ).mean_carbon_g
                exact_carbon = evaluator.estimate(
                    exact_set.plan_for_hour(hour), hour
                ).mean_carbon_g
                gaps.append(
                    (hbss_carbon - exact_carbon) / exact_carbon * 100.0
                )
    return {
        "hbss_carbon_gap_pct": sum(gaps) / len(gaps),
        "hbss_carbon_gap_max_pct": max(gaps),
        "hbss_quality_cases": float(len(gaps)),
    }


def bench_tracer_overhead(smoke: bool) -> Dict[str, float]:
    """Traced vs untraced wall clock, best-of-3 each — once with the
    full tracer and once with request sampling
    (``sample_every=TRACE_SAMPLE_EVERY``)."""
    n = 4 if smoke else 12
    repeats = 3
    untraced = min(
        _timed_run(n, tracer=None)["wall_s"] for _ in range(repeats)
    )
    traced = min(
        _timed_run(n, tracer=Tracer())["wall_s"] for _ in range(repeats)
    )
    sampled = min(
        _timed_run(n, tracer=Tracer(sample_every=TRACE_SAMPLE_EVERY))["wall_s"]
        for _ in range(repeats)
    )
    overhead = (traced - untraced) / max(untraced, 1e-9) * 100.0
    sampled_overhead = (sampled - untraced) / max(untraced, 1e-9) * 100.0
    return {
        "tracer_overhead_pct": overhead,
        "tracer_sampled_overhead_pct": sampled_overhead,
        "tracer_sample_every": float(TRACE_SAMPLE_EVERY),
        "traced_wall_s": traced,
        "sampled_wall_s": sampled,
        "untraced_wall_s": untraced,
    }


def _serving_run(
    smoke: bool, window_s: Optional[float]
) -> Dict[str, Any]:
    """One open-loop serving run (the ``bench_executor`` shape), with
    an optional windowed sampler attached.  Returns events/s plus the
    sampler's series dump for determinism checks."""
    cloud = SimulatedCloud(seed=3)
    app = get_app(APP)
    _deployed, executor, _ = deploy_benchmark(app, cloud)
    spec = WorkloadSpec(
        base_rate_per_s=20.0,
        duration_s=60.0 if smoke else 1200.0,
        profile="steady",
    )
    trace = generate_trace(spec, cloud.env.rng.get("bench.workload"))
    sampler = None
    if window_s is not None:
        sampler = WindowedSampler(cloud.metrics, window_s=window_s)
        sampler.attach(cloud.env)
    injector = OpenLoopInjector(executor, trace)
    injector.start()
    env = cloud.env
    before = env.events_executed
    t0 = time.perf_counter()
    env.run_until_idle()
    elapsed = time.perf_counter() - t0
    series = ""
    windows = 0
    if sampler is not None:
        sampler.close()
        series = sampler.to_jsonl()
        windows = sampler.windows_flushed
    return {
        "events_per_s": float(env.events_executed - before)
        / max(elapsed, 1e-9),
        "series": series,
        "windows": windows,
    }


def bench_telemetry(smoke: bool, jobs: int) -> Dict[str, float]:
    """Windowed-telemetry overhead and determinism on the serving path.

    Overhead: the ``bench_executor`` workload with a live
    :class:`WindowedSampler` vs without, best-of-3 each;
    ``telemetry_overhead_pct`` is the events/s cost in percent and is
    gated by an *absolute* ceiling (``MAX_TELEMETRY_OVERHEAD_PCT``) —
    sampling happens only at window boundaries, so the hot path should
    not notice it at all.

    Determinism (abort, not a metric — mirroring the solver benches'
    bit-identity contracts): two same-seed telemetered serving runs
    must dump byte-identical series, and a full Caribou run's merged
    series must be byte-identical between the serial solver and the
    thread fan-out (``jobs``) on one seed.
    """
    window_s = 10.0 if smoke else 60.0
    repeats = 3
    base = max(
        _serving_run(smoke, window_s=None)["events_per_s"]
        for _ in range(repeats)
    )
    telemetered_runs = [
        _serving_run(smoke, window_s=window_s) for _ in range(repeats)
    ]
    telemetered = max(r["events_per_s"] for r in telemetered_runs)
    first_series = telemetered_runs[0]["series"]
    for run in telemetered_runs[1:]:
        if run["series"] != first_series:
            raise RuntimeError(
                "telemetered serving runs on one seed dumped different "
                "series — windowed sampling determinism violated"
            )
    if telemetered_runs[0]["windows"] == 0:
        raise RuntimeError(
            "telemetered serving run flushed no windows — the sampler "
            "never fired and the overhead number is meaningless"
        )

    telemetry = TelemetryConfig(window_s=3600.0)
    app = get_app(APP)
    serial = run_caribou(
        app, "small", ("us-east-1", "ca-central-1"), seed=3,
        n_invocations=4 if smoke else 12, telemetry=telemetry,
    )
    threaded = run_caribou(
        app, "small", ("us-east-1", "ca-central-1"), seed=3,
        n_invocations=4 if smoke else 12, telemetry=telemetry,
        jobs=jobs, backend="thread",
    )
    serial_dump = series_to_jsonl(serial.series or [])
    threaded_dump = series_to_jsonl(threaded.series or [])
    if serial_dump != threaded_dump:
        raise RuntimeError(
            f"telemetry series differ between serial and jobs={jobs} "
            "thread solves on one seed — windowed sampling must be "
            "backend-invariant"
        )
    if not serial.series:
        raise RuntimeError("telemetered Caribou run produced no series")

    overhead = (base - telemetered) / max(base, 1e-9) * 100.0
    return {
        "telemetry_overhead_pct": overhead,
        "telemetry_windows": float(telemetered_runs[0]["windows"]),
        "telemetry_points": float(len(serial.series)),
        "telemetry_window_s": window_s,
    }


def run_bench(label: str, smoke: bool, jobs: int) -> Dict[str, Any]:
    """Run every workload and assemble the benchmark document."""
    units = {
        "executor_events_per_s": "events/s",
        "fleet_solve_wall_s": "s",
        "fleet_workflows": "workflows",
        "hbss_carbon_gap_pct": "%",
        "hbss_carbon_gap_max_pct": "%",
        "hbss_quality_cases": "cases",
        "mc_samples_per_s": "samples/s",
        "service_jobs": "jobs",
        "service_jobs_per_s": "jobs/s",
        "service_steps": "steps",
        "solver_batched_solves_per_s": "solves/s",
        "solver_parallel_solves_per_s": "solves/s",
        "solver_process_solves_per_s": "solves/s",
        "solver_solves_per_s": "solves/s",
        "telemetry_overhead_pct": "%",
        "telemetry_points": "points",
        "telemetry_window_s": "s",
        "telemetry_windows": "windows",
        "tracer_overhead_pct": "%",
        "tracer_sampled_overhead_pct": "%",
        "workload_gen_events_per_s": "events/s",
    }
    raw: Dict[str, float] = {}
    solver = bench_solver(smoke)
    phases = solver.pop("phases")
    raw.update(solver)
    raw.update(bench_parallel_solver(smoke, jobs))
    raw.update(bench_batched_solver(smoke))
    raw.update(bench_process_solver(smoke, jobs))
    raw.update(bench_executor(smoke))
    raw.update(bench_workload_gen(smoke))
    raw.update(bench_fleet(smoke))
    raw.update(bench_service(smoke))
    raw.update(bench_solver_quality(smoke))
    raw.update(bench_tracer_overhead(smoke))
    raw.update(bench_telemetry(smoke, jobs))

    metrics = {
        name: {"unit": units.get(name, "s" if name.endswith("_s") else ""),
               "value": value}
        for name, value in sorted(raw.items())
    }
    return {
        "app": APP,
        "label": label,
        "metrics": metrics,
        "phases": phases,
        "schema": BENCH_SCHEMA,
        "smoke": smoke,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="local",
                        help="suffix for BENCH_<label>.json")
    parser.add_argument("--smoke", action="store_true",
                        help="small, CI-sized workloads")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="compare against this committed baseline")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail if any throughput metric is this many "
                             "times slower than baseline (default 2.0)")
    parser.add_argument("--max-quality-regression-pp", type=float,
                        default=MAX_QUALITY_REGRESSION_PP,
                        help="fail if a solver-quality metric (percentage "
                             "points, e.g. hbss_carbon_gap_pct) exceeds the "
                             "baseline by more than this absolute slack "
                             f"(default {MAX_QUALITY_REGRESSION_PP})")
    parser.add_argument("--max-telemetry-overhead-pct", type=float,
                        default=MAX_TELEMETRY_OVERHEAD_PCT,
                        help="fail if windowed telemetry costs more than "
                             "this percent of executor_events_per_s "
                             f"(absolute; default {MAX_TELEMETRY_OVERHEAD_PCT})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the result to BENCH_baseline.json")
    parser.add_argument("--out-dir", default=str(REPO_ROOT),
                        help="directory for BENCH_<label>.json")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads for the parallel-solver "
                             "bench (default: min(4, CPUs), at least 2 "
                             "so the threaded path is always exercised)")
    args = parser.parse_args(argv)

    jobs = args.jobs
    if jobs is None:
        jobs = max(2, min(4, os.cpu_count() or 1))
    if jobs < 2:
        print("--jobs must be >= 2 (the serial case is benched anyway)",
              file=sys.stderr)
        return 2

    doc = run_bench(args.label, args.smoke, jobs)
    problems = validate_bench(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 2

    out_dir = Path(args.out_dir)
    out_path = out_dir / f"BENCH_{args.label}.json"
    out_path.write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path}")
    for name, entry in doc["metrics"].items():
        print(f"  {name:24s} {entry['value']:12.2f} {entry['unit']}")

    if args.update_baseline:
        base_path = out_dir / "BENCH_baseline.json"
        base_path.write_text(
            json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {base_path}")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        base_problems = validate_bench(baseline)
        if base_problems:
            for problem in base_problems:
                print(f"BASELINE INVALID: {problem}", file=sys.stderr)
            return 2
        failures = check_regression(
            doc, baseline, args.max_regression,
            max_quality_pp=args.max_quality_regression_pp,
            max_overhead_pct=args.max_telemetry_overhead_pct,
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed (limit {args.max_regression:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
