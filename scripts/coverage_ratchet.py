#!/usr/bin/env python
"""Coverage ratchet: fail CI if line coverage regresses below the floor.

Usage::

    python scripts/coverage_ratchet.py coverage.json            # check
    python scripts/coverage_ratchet.py coverage.json --update   # raise floor

``coverage.json`` is the output of ``coverage json`` (produced in CI by
``pytest --cov=repro --cov-report=json``).  The floor lives in
``coverage-ratchet.json`` at the repo root; the check passes while total
line coverage >= floor, and ``--update`` raises the floor to the current
total (never lowers it).  Either way the ten least-covered modules are
printed so regressions are easy to localise from the job summary.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RATCHET_FILE = REPO_ROOT / "coverage-ratchet.json"
#: Never let --update push the floor above this: leaves headroom so a
#: single over-covered run does not make the ratchet unachievable.
CEILING_PCT = 98.0


def load_totals(coverage_json: pathlib.Path) -> tuple[float, list[tuple[str, float, int]]]:
    data = json.loads(coverage_json.read_text(encoding="utf-8"))
    total = float(data["totals"]["percent_covered"])
    modules = []
    for filename, entry in data.get("files", {}).items():
        summary = entry["summary"]
        statements = int(summary.get("num_statements", 0))
        if statements == 0:
            continue
        modules.append(
            (filename, float(summary["percent_covered"]), statements)
        )
    return total, modules


def print_least_covered(modules: list[tuple[str, float, int]], n: int = 10) -> None:
    print(f"\n{n} least-covered modules:")
    print(f"{'module':60s} {'cover%':>7s} {'stmts':>6s}")
    for name, pct, stmts in sorted(modules, key=lambda m: (m[1], -m[2]))[:n]:
        print(f"{name:60s} {pct:7.1f} {stmts:6d}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("coverage_json", type=pathlib.Path)
    parser.add_argument(
        "--update",
        action="store_true",
        help="raise the ratchet floor to the current coverage",
    )
    parser.add_argument(
        "--ratchet-file",
        type=pathlib.Path,
        default=RATCHET_FILE,
        help="path to the ratchet floor file (default: repo root)",
    )
    args = parser.parse_args(argv)

    if not args.coverage_json.exists():
        print(f"coverage report not found: {args.coverage_json}")
        return 2

    total, modules = load_totals(args.coverage_json)
    ratchet_file = args.ratchet_file
    ratchet = json.loads(ratchet_file.read_text(encoding="utf-8"))
    floor = float(ratchet["min_line_coverage_pct"])

    print(f"total line coverage: {total:.2f}% (ratchet floor: {floor:.2f}%)")
    print_least_covered(modules)

    if args.update:
        new_floor = max(floor, min(total, CEILING_PCT))
        if new_floor != floor:
            ratchet["min_line_coverage_pct"] = round(new_floor, 2)
            ratchet_file.write_text(
                json.dumps(ratchet, indent=2) + "\n", encoding="utf-8"
            )
            print(f"ratchet floor raised: {floor:.2f}% -> {new_floor:.2f}%")
        else:
            print("ratchet floor unchanged")
        return 0

    if total + 1e-9 < floor:
        print(
            f"\nFAIL: coverage {total:.2f}% fell below the ratchet floor "
            f"{floor:.2f}%.  Add tests for the modules above, or (only "
            "with reviewer sign-off) lower coverage-ratchet.json."
        )
        return 1
    print("coverage ratchet OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
