#!/usr/bin/env python3
"""Carbon explorer: the data behind the decisions.

A small analytical companion to the runnable workflow examples: renders
ASCII views of the synthetic grid carbon traces (the Fig. 2 substitute),
shows the diurnal profiles the 24-hourly plans exploit, and quantifies
the best possible shifting gain per hour of day — before any workflow
enters the picture.

Run:  python examples/carbon_explorer.py
"""

import numpy as np

from repro.cloud.provider import SimulatedCloud
from repro.data.regions import EVALUATION_REGIONS

BAR_WIDTH = 48


def bar(value: float, maximum: float) -> str:
    filled = int(round(BAR_WIDTH * value / maximum))
    return "#" * filled + "." * (BAR_WIDTH - filled)


def main() -> None:
    cloud = SimulatedCloud(seed=0, carbon_horizon_hours=24 * 7)
    traces = {
        region: np.asarray(cloud.carbon_source.trace(region))
        for region in EVALUATION_REGIONS
    }

    print("== weekly average carbon intensity (gCO2eq/kWh) ==")
    maximum = max(t.mean() for t in traces.values())
    for region, trace in traces.items():
        print(f"{region:14s} {trace.mean():7.1f}  {bar(trace.mean(), maximum)}")

    print("\n== diurnal profile (hour-of-day means) ==")
    print(f"{'hour':>4s}  " + "  ".join(f"{r:>13s}" for r in traces))
    profiles = {
        r: t.reshape(-1, 24).mean(axis=0) for r, t in traces.items()
    }
    for hour in range(24):
        row = "  ".join(f"{profiles[r][hour]:13.1f}" for r in traces)
        cleanest = min(traces, key=lambda r: profiles[r][hour])
        print(f"{hour:4d}  {row}   <- {cleanest}")

    print("\n== the shifting opportunity, hour by hour ==")
    stacked = np.stack([profiles[r] for r in traces])
    names = list(traces)
    dirtiest = stacked.max(axis=0)
    cleanest = stacked.min(axis=0)
    print("potential intensity reduction by moving from the dirtiest to")
    print("the cleanest region at each hour of day:")
    for hour in range(0, 24, 3):
        gain = 1 - cleanest[hour] / dirtiest[hour]
        print(f"  {hour:02d}:00  {gain:6.1%}  {bar(gain, 1.0)}")

    print("\n== without the hydro region (us-* only) ==")
    us_only = {r: p for r, p in profiles.items() if r != "ca-central-1"}
    su = np.stack(list(us_only.values()))
    swing = 1 - su.min(axis=0) / su.max(axis=0)
    print(f"hourly shifting gain within the US regions: "
          f"min {swing.min():.1%}, mean {swing.mean():.1%}, "
          f"max {swing.max():.1%}")
    best_hour = int(np.argmax(swing))
    print(f"the best US-only shifting window is around {best_hour:02d}:00, "
          "when the solar grid bottoms out —")
    print("exactly the diurnal pattern the 24-hourly deployment plans "
          "are built to chase (§5.1).")


if __name__ == "__main__":
    main()
