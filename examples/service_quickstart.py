#!/usr/bin/env python3
"""Caribou as a service: declare a DAG with decorators, submit it as a
job, and let the service engine shepherd it through the lifecycle.

Where examples/quickstart.py drives every step by hand (deploy, warm
up, solve, migrate), this example hands the same lifecycle to
``repro.service``:

1. declare a diamond workflow with the ``@task`` / builder API — no
   hand-built config dicts, no AST analysis;
2. register the builder and ``submit()`` it as a job, alongside a
   stock benchmark app submitted by name;
3. ``run()`` the engine: each tick advances jobs one step through
   SUBMITTED -> ANALYZED -> SOLVED -> DEPLOYED -> MONITORING;
4. inspect the journaled state machine, then crash-and-recover: a
   fresh engine resumes from the store without re-solving.

Run:  python examples/service_quickstart.py
"""

from repro.cloud.provider import SimulatedCloud
from repro.service import (
    MONITORING,
    MemoryJobStore,
    ServiceEngine,
    task,
    workflow,
)


# -- 1. a diamond DAG, declared as plain Python -----------------------------

@task(memory_mb=512)
def fetch(event):
    return {"doc": (event or {}).get("doc", "report.pdf")}


@task()
def extract_text(payload):
    return {"text": f"text of {payload['doc']}"}


@task()
def extract_tables(payload):
    return {"tables": [f"table in {payload['doc']}"]}


@task(memory_mb=3538)
def merge(payloads):
    # Fan-in: receives the list of predecessor payload contents.
    return {"parts": len(payloads)}


def build_pipeline():
    return (
        workflow("doc-pipeline")
        .then(fetch)
        .branch(extract_text, extract_tables)
        .join(merge)
    )


def main() -> None:
    cloud = SimulatedCloud(seed=42)
    store = MemoryJobStore()
    engine = ServiceEngine(cloud, store)

    # -- 2. submit: a builder-declared workflow and a stock app -------------
    engine.register_workflow(build_pipeline())
    custom = engine.submit("doc-pipeline", "small")
    stock = engine.submit("dna_visualization", "small")
    print("submitted:")
    for record in engine.jobs():
        print(f"  {record.job_id:28s} {record.state}")

    # -- 3. drain the pipelines ---------------------------------------------
    steps = engine.run(max_steps=16)
    print(f"\nengine ran {steps} steps; job journals:")
    for record in engine.jobs():
        print(f"  {record.job_id} -> {record.state}")
        for entry in record.journal:
            print(f"    t={entry.time_s:8.1f}  "
                  f"{entry.from_state:>9s} -> {entry.to_state:<10s} "
                  f"({entry.step})")

    custom_plan = engine.job(custom.job_id).artifacts["plan_set"]
    print(f"\ndoc-pipeline solved plan covers "
          f"{len(custom_plan['plans_by_hour'])} hour slot(s)")

    # -- 4. crash and recover -----------------------------------------------
    # Only the store survives; code (the builder) must be re-registered,
    # then a fresh engine re-attaches every job and re-applies the
    # persisted plans instead of re-solving.
    resumed = ServiceEngine(cloud, store)
    resumed.register_workflow(build_pipeline())
    recovered = resumed.recover()
    staged = resumed.job(custom.job_id).artifacts["plan_set"]
    assert staged["plans_by_hour"] == custom_plan["plans_by_hour"]
    assert resumed.solver_stats.simulations_run == 0, "recovery re-solved!"
    print(f"\nrecovered {recovered} job(s) after restart; "
          f"0 simulations run — plans were replayed, not re-solved")

    monitoring = [r.job_id for r in resumed.jobs() if r.state == MONITORING]
    print(f"under fleet management: {', '.join(sorted(monitoring))}")
    assert {custom.job_id, stock.job_id} == set(monitoring)


if __name__ == "__main__":
    main()
