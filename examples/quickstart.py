#!/usr/bin/env python3
"""Quickstart: declare a workflow, deploy it, let Caribou shift it.

Walks the full lifecycle from the paper on the simulated cloud:

1. declare a two-stage workflow with the Listing-1 API;
2. deploy it to the home region (static analysis -> IAM -> image ->
   topics -> metadata, §6.1);
3. run some traffic so the Metrics Manager learns distributions;
4. solve a 24-hour deployment plan with HBSS (§5.1) and migrate (§6.1);
5. compare carbon before and after.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.base import default_config
from repro.cloud.functions import WorkProfile
from repro.cloud.provider import SimulatedCloud
from repro.core.api import Payload, Workflow
from repro.core.deployer import DeploymentUtility
from repro.core.migrator import DeploymentMigrator
from repro.experiments.harness import solve_plan_set
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel


def build_workflow() -> Workflow:
    """A minimal two-stage pipeline: resize an image, then tag it."""
    workflow = Workflow(name="quickstart", version="0.1")

    @workflow.serverless_function(
        name="resize",
        entry_point=True,
        memory_mb=1769,
        profile=WorkProfile(base_seconds=0.8, seconds_per_mb=0.5),
    )
    def resize(event):
        image = event or {}
        thumbnail = {"name": image.get("name", "img"), "width": 256}
        workflow.invoke_serverless_function(
            Payload(content=thumbnail, size_bytes=64_000), tag
        )

    @workflow.serverless_function(
        name="tag",
        memory_mb=3538,
        profile=WorkProfile(base_seconds=2.5, seconds_per_mb=1.0,
                            cpu_utilization=0.9),
    )
    def tag(event):
        return {"tags": ["cat", "outdoor"], "image": (event or {}).get("name")}

    return workflow


def main() -> None:
    # One simulated cloud == one reproducible world (seeded).
    cloud = SimulatedCloud(seed=42)
    workflow = build_workflow()
    config = default_config(home_region="us-east-1",
                            benchmarking_fraction=0.1)

    print("== deploying to the home region (us-east-1) ==")
    utility = DeploymentUtility(cloud)
    deployed, executor = utility.deploy(workflow, config)
    print(f"DAG nodes: {', '.join(deployed.dag.node_names)}")

    print("\n== phase 1: 20 invocations, everything at home ==")
    for i in range(20):
        cloud.env.schedule(
            i * 120.0,
            lambda: executor.invoke(
                Payload(content={"name": "photo.jpg"}, size_bytes=900_000),
                force_home=True,
            ),
        )
    cloud.run_until_idle()

    scenario = TransmissionScenario.best_case()
    accountant = CarbonAccountant(
        cloud.carbon_source, CarbonModel(scenario), CostModel(cloud.pricing_source)
    )
    before = accountant.price_workflow(cloud.ledger, "quickstart")
    print(f"carbon so far: {before.carbon_g * 1000:.2f} mg over "
          f"{len(cloud.ledger.request_ids('quickstart'))} invocations")

    print("\n== phase 2: solve a 24-hour plan and migrate ==")
    plan_set = solve_plan_set(deployed, executor, scenario)
    migrator = DeploymentMigrator(utility, deployed, executor)
    report = migrator.migrate(plan_set)
    print(f"migration activated={report.activated}, "
          f"new deployments: {report.deployed}")
    sample = plan_set.plan_for_hour(12)
    for node, region in sorted(sample.assignments.items()):
        print(f"  12:00 plan: {node} -> {region}")

    print("\n== phase 3: 20 invocations routed by the plan ==")
    routed_rids = []
    for i in range(20):
        cloud.env.schedule(
            i * 120.0,
            lambda: routed_rids.append(
                executor.invoke(
                    Payload(content={"name": "photo.jpg"}, size_bytes=900_000)
                )
            ),
        )
    cloud.run_until_idle()

    per_inv_before = before.carbon_g / max(1, before.n_executions / 2)
    routed = [
        accountant.price_workflow(cloud.ledger, "quickstart", rid)
        for rid in routed_rids
    ]
    per_inv_after = float(np.mean([fp.carbon_g for fp in routed]))
    # The one-time migration cost (crane image copies) is overhead the
    # token bucket budgets for (§5.2) — report it separately.
    image_copies = [r for r in cloud.ledger.transmissions if r.kind == "image"]
    migration_g = sum(accountant.transmission_carbon_g(r) for r in image_copies)

    print(f"carbon per invocation: {per_inv_before * 1000:.3f} mg (home) -> "
          f"{per_inv_after * 1000:.3f} mg (Caribou)")
    print(f"one-time migration overhead: {migration_g * 1000:.1f} mg "
          f"(amortises over future traffic)")
    if per_inv_after < per_inv_before:
        saved = 1 - per_inv_after / per_inv_before
        breakeven = migration_g / (per_inv_before - per_inv_after)
        print(f"saved {saved:.1%} operational carbon per invocation, "
              f"break-even after ~{breakeven:.0f} invocations, "
              "no code changes.")


if __name__ == "__main__":
    main()
