#!/usr/bin/env python3
"""Compliance-constrained shifting: the paper's Fig. 3 scenario.

The Text2Speech Censoring workflow has a regulation-sensitive upload/
validation stage that must stay on US soil, while the rest of the
pipeline is free to move.  The paper's point (§9.2 I3): a *fine-grained*
framework can still reduce emissions by offloading the unconstrained
stages — "a detailed specification of location constraints (e.g., to
ensure compliance of one stage) can allow emission reductions for
workflows (e.g., by offloading other stages)".

This example contrasts three strategies:
  1. everything at home (status quo, Fig. 1a);
  2. coarse single-region (blocked: no compliant low-carbon region);
  3. Caribou fine-grained (upload pinned, the rest offloaded).

Run:  python examples/compliance_constrained_shifting.py
"""


from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.experiments.harness import (
    deploy_benchmark,
    run_caribou,
    run_coarse,
    solve_plan_set,
    warm_up,
)
from repro.metrics.carbon import TransmissionScenario

REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")


def main() -> None:
    app = get_app("text2speech_censoring")
    scenario = TransmissionScenario.best_case()

    print("== the compliance constraint ==")
    cloud = SimulatedCloud(seed=7)
    deployed, executor, _ = deploy_benchmark(app, cloud)
    for fn in ("upload", "profanity_detection", "censoring"):
        allowed = [r for r in REGIONS if deployed.config.permits(fn, r)]
        print(f"  {fn:22s} may run in: {', '.join(allowed)}")

    print("\n== 1. status quo: everything in us-east-1 ==")
    home = run_coarse(app, "small", "us-east-1", seed=7, n_invocations=20,
                      days=3.0, scenarios=[scenario])
    print(f"  carbon/invocation: {home.carbon(scenario.name) * 1000:.3f} mg")

    print("\n== 2. coarse shifting: blocked by compliance ==")
    # A single compliant region exists only inside the US; the cleanest
    # option (ca-central-1) is off the table for the whole workflow.
    warm_up(executor, app, "small", n=8)
    from repro.core.manager import DeploymentManager  # noqa: F401  (docs)

    plan_set = solve_plan_set(deployed, executor, scenario)
    # Show what coarse could have done: best compliant single region.
    us_best = run_coarse(app, "small", "us-west-1", seed=7, n_invocations=20,
                         days=3.0, scenarios=[scenario])
    print(f"  best compliant single region (us-west-1): "
          f"{us_best.carbon(scenario.name) * 1000:.3f} mg/invocation")

    print("\n== 3. Caribou fine-grained: pin upload, offload the rest ==")
    fine = run_caribou(app, "small", REGIONS, seed=7, n_invocations=20,
                       warmup=8, days=3.0, scenario_for_solver=scenario,
                       scenarios=[scenario])
    plan = fine.plan_set.plan_for_hour(12)
    for node, region in sorted(plan.assignments.items()):
        marker = "  (pinned)" if node == "upload" else ""
        print(f"  12:00 plan: {node:22s} -> {region}{marker}")
    print(f"  carbon/invocation: {fine.carbon(scenario.name) * 1000:.3f} mg")

    saved_vs_home = 1 - fine.carbon(scenario.name) / home.carbon(scenario.name)
    saved_vs_coarse = 1 - fine.carbon(scenario.name) / us_best.carbon(
        scenario.name
    )
    print(f"\nfine-grained shifting saves {saved_vs_home:.1%} vs home and "
          f"{saved_vs_coarse:.1%} vs the best compliant coarse deployment,")
    print("while the regulated stage never leaves the US.")


if __name__ == "__main__":
    main()
