#!/usr/bin/env python3
"""Continuous self-adaptive operation: a week in the life of a workflow.

Reproduces the §9.5 setting as a runnable demo: the Video Analytics
workflow receives Azure-trace-shaped traffic for five days while the
Deployment Manager loop (Fig. 6) runs autonomously — collecting metrics,
earning carbon tokens, solving when the budget allows, migrating, and
scheduling its own next check.  Prints the decision timeline and the
cumulative carbon against an everything-at-home counterfactual.

Run:  python examples/continuous_operation.py
"""

from collections import Counter

import numpy as np

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.manager import DeploymentManager
from repro.core.solver import SolverSettings
from repro.core.trigger import TriggerSettings
from repro.data.traces import azure_like_trace
from repro.experiments.harness import deploy_benchmark, run_coarse
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel

DAYS = 5.0
DAILY_INVOCATIONS = 200


def main() -> None:
    cloud = SimulatedCloud(seed=99)
    app = get_app("video_analytics")
    scenario = TransmissionScenario.best_case()

    deployed, executor, utility = deploy_benchmark(
        app, cloud, benchmarking_fraction=0.10
    )
    dm = DeploymentManager(
        deployed, executor, utility, scenario=scenario,
        solver_settings=SolverSettings(batch_size=50, max_samples=150,
                                       cov_threshold=0.12,
                                       alpha_per_node_region=4),
        trigger_settings=TriggerSettings(
            min_check_period_s=4 * SECONDS_PER_HOUR,
            max_check_period_s=SECONDS_PER_DAY,
        ),
        use_forecast=False,
    )

    trace = azure_like_trace(days=DAYS,
                             mean_daily_invocations=DAILY_INVOCATIONS,
                             seed=99)
    print(f"scheduling {len(trace)} invocations over {DAYS:.0f} days "
          f"(Azure-trace-shaped)")
    rids = []
    for t in trace:
        cloud.env.schedule(
            t, lambda: rids.append(executor.invoke(app.make_input("small")))
        )
    dm.run_for(DAYS * SECONDS_PER_DAY, first_check_delay_s=SECONDS_PER_HOUR)
    cloud.run_until_idle()

    print(f"\n== Deployment Manager activity ==")
    print(f"token checks: {len(dm.reports)}, "
          f"plan generations: {len(dm.plan_history)}")
    for report in dm.reports:
        mark = "SOLVED" if report.solved else "  -   "
        print(f"  t={report.time_s / 3600:6.1f}h  [{mark}]  "
              f"tokens={report.tokens_g * 1000:8.3f} mg / "
              f"cost={report.solve_cost_g * 1000:8.3f} mg  "
              f"next check in {report.next_check_delay_s / 3600:.1f}h")

    print(f"\n== where did the work run? (per day, execution counts) ==")
    per_day: dict = {}
    for rec in cloud.ledger.executions_for(deployed.name):
        day = int(rec.start_s // SECONDS_PER_DAY)
        per_day.setdefault(day, Counter())[rec.region] += 1
    for day, counts in sorted(per_day.items()):
        summary = ", ".join(f"{r}={n}" for r, n in counts.most_common())
        print(f"  day {day}: {summary}")

    accountant = CarbonAccountant(
        cloud.carbon_source, CarbonModel(scenario),
        CostModel(cloud.pricing_source),
    )
    fp = accountant.price_workflow(cloud.ledger, deployed.name)
    caribou_per_inv = fp.carbon_g / max(1, len(rids))

    home = run_coarse(app, "small", "us-east-1", seed=99, n_invocations=40,
                      days=DAYS, scenarios=[scenario])
    print(f"\n== weekly outcome ==")
    print(f"Caribou:     {caribou_per_inv * 1000:8.3f} mgCO2eq/invocation "
          f"(includes 10 % home benchmarking traffic)")
    print(f"all-at-home: {home.carbon(scenario.name) * 1000:8.3f} "
          f"mgCO2eq/invocation")
    print(f"reduction:   "
          f"{1 - caribou_per_inv / home.carbon(scenario.name):.1%}")


if __name__ == "__main__":
    main()
