"""Tests for the cloud facade and the Step Functions service."""

import pytest

from repro.cloud.provider import SimulatedCloud
from repro.cloud.stepfunctions import StepFunctionsService


class TestSimulatedCloud:
    def test_default_regions_are_evaluation_set(self, cloud):
        assert set(cloud.regions) == {
            "us-east-1", "us-west-1", "us-west-2", "ca-central-1",
        }

    def test_custom_region_subset(self):
        cloud = SimulatedCloud(seed=0, regions=("us-east-1", "ca-central-1"))
        assert cloud.regions == ("us-east-1", "ca-central-1")

    def test_invalid_region_rejected_early(self):
        with pytest.raises(KeyError):
            SimulatedCloud(seed=0, regions=("us-east-1", "nowhere-9"))

    def test_kvstore_cached_per_region(self, cloud):
        assert cloud.kvstore("us-east-1") is cloud.kvstore("us-east-1")
        assert cloud.kvstore("us-east-1") is not cloud.kvstore("us-west-1")

    def test_stepfunctions_cached_per_region(self, cloud):
        assert cloud.stepfunctions("us-east-1") is cloud.stepfunctions("us-east-1")

    def test_run_advances_time(self, cloud):
        cloud.env.schedule(5.0, lambda: None)
        cloud.run(until=10.0)
        assert cloud.now() == 10.0

    def test_seed_isolation(self):
        a = SimulatedCloud(seed=1)
        b = SimulatedCloud(seed=1)
        assert a.env.rng.get("x").random() == b.env.rng.get("x").random()


class TestStepFunctionsService:
    def test_execution_lifecycle(self, cloud):
        sf = cloud.stepfunctions("us-east-1")
        sf.start_execution("e1")
        assert not sf.is_finished("e1")
        sf.finish_execution("e1")
        assert sf.is_finished("e1")

    def test_duplicate_execution_rejected(self, cloud):
        sf = cloud.stepfunctions("us-east-1")
        sf.start_execution("e1")
        with pytest.raises(ValueError):
            sf.start_execution("e1")

    def test_unknown_execution(self, cloud):
        sf = cloud.stepfunctions("us-east-1")
        with pytest.raises(KeyError):
            sf.is_finished("ghost")

    def test_transition_accounting(self, cloud):
        sf = cloud.stepfunctions("us-east-1")
        assert sf.transitions == 0
        delay = sf.transition_delay()
        assert delay > 0
        assert sf.transitions == 1

    def test_central_arrival_counting(self, cloud):
        sf = cloud.stepfunctions("us-east-1")
        sf.start_execution("e1")
        assert sf.record_arrival("e1", "join") == 1
        assert sf.record_arrival("e1", "join") == 2
        assert sf.arrivals("e1", "join") == 2
        assert sf.arrivals("e1", "other") == 0

    def test_transition_cheaper_than_sns_hop(self, cloud):
        from repro.cloud.pubsub import DELIVERY_OVERHEAD_S, PUBLISH_OVERHEAD_S

        sf = StepFunctionsService(cloud.env, "us-east-1")
        # The Fig. 12 premise: SF transitions beat publish+delivery.
        assert sf.transition_delay() < PUBLISH_OVERHEAD_S + DELIVERY_OVERHEAD_S
