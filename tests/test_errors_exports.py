"""Tests for the error hierarchy and public package surface."""

import pytest

import repro
from repro.common.errors import (
    CaribouError,
    ConditionalCheckFailed,
    ConfigurationError,
    DeploymentError,
    KeyValueStoreError,
    MessageDeliveryError,
    RegionUnavailableError,
    SolverError,
    ToleranceViolatedError,
    WorkflowDefinitionError,
)


class TestErrorHierarchy:
    def test_everything_is_a_caribou_error(self):
        for exc in (
            WorkflowDefinitionError, ConfigurationError, DeploymentError,
            RegionUnavailableError, SolverError, ToleranceViolatedError,
            KeyValueStoreError, ConditionalCheckFailed, MessageDeliveryError,
        ):
            assert issubclass(exc, CaribouError)

    def test_specialisations(self):
        assert issubclass(RegionUnavailableError, DeploymentError)
        assert issubclass(ToleranceViolatedError, SolverError)
        assert issubclass(ConditionalCheckFailed, KeyValueStoreError)

    def test_catchable_as_base(self):
        with pytest.raises(CaribouError):
            raise RegionUnavailableError("region down")


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in ("Workflow", "Payload", "SimulatedCloud",
                     "DeploymentPlan", "HourlyPlanSet", "WorkflowConfig"):
            assert hasattr(repro, name), name

    def test_subpackage_imports(self):
        import repro.apps
        import repro.cloud
        import repro.core
        import repro.core.solver
        import repro.data
        import repro.experiments
        import repro.metrics
        import repro.model

    def test_cli_module_has_entry_point(self):
        from repro.cli import main

        assert callable(main)
