"""Unit tests for the observability layer (repro.obs)."""

import io
import json

import pytest

from repro.common.clock import VirtualClock
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Span,
    Tracer,
    load_jsonl,
    render_span_tree,
    render_trace_summary,
)
from repro.obs.trace import iter_children


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestTracer:
    def test_unbound_tracer_raises_on_use(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="not bound to a clock"):
            tr.record("kv", "get")

    def test_record_defaults_to_point_span(self, tracer, clock):
        clock.advance(5.0)
        span = tracer.record("kv", "get:t")
        assert span.t0 == 5.0
        assert span.t1 == 5.0
        assert span.duration_s == 0.0

    def test_record_with_interval(self, tracer):
        span = tracer.record("transfer", "a->b", t0=1.0, t1=3.5)
        assert span.duration_s == 2.5

    def test_span_ids_sequential(self, tracer):
        ids = [tracer.record("kv", "x").span_id for _ in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_scope_parents_synchronous_children(self, tracer):
        with tracer.span("publish", "p") as scope:
            child = tracer.record("transfer", "a->b")
        assert child.parent_id == scope.span.span_id

    def test_scope_closes_at_now_by_default(self, tracer, clock):
        with tracer.span("solve", "s"):
            clock.advance(2.0)
        assert tracer.spans[0].t1 == 2.0

    def test_scope_end_at_future_time(self, tracer):
        with tracer.span("publish", "p") as scope:
            scope.end_at(42.0)
        assert tracer.spans[0].t1 == 42.0

    def test_scope_tags_error_and_reraises(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("migration", "m"):
                raise ValueError("boom")
        span = tracer.spans[0]
        assert span.attrs["error"] == "ValueError"
        assert span.t1 is not None

    def test_request_root_parents_async_spans(self, tracer):
        tracer.open_request("r1", workflow="wf")
        # No scope on the stack: the request id resolves the parent.
        span = tracer.record("invocation", "wf.f", request_id="r1")
        assert span.parent_id == tracer.request_root("r1").span_id

    def test_scope_wins_over_request_root(self, tracer):
        tracer.open_request("r1")
        with tracer.span("publish", "p", request_id="r1") as scope:
            child = tracer.record("transfer", "a->b", request_id="r1")
        assert child.parent_id == scope.span.span_id

    def test_close_request_sets_status(self, tracer, clock):
        tracer.open_request("r1")
        clock.advance(3.0)
        tracer.close_request("r1", "completed")
        root = tracer.request_root("r1")
        assert root.attrs["status"] == "completed"
        assert root.t1 == 3.0

    def test_close_request_first_terminal_wins(self, tracer):
        tracer.open_request("r1")
        tracer.close_request("r1", "completed")
        tracer.close_request("r1", "failed")
        assert tracer.request_root("r1").attrs["status"] == "completed"

    def test_finalize_closes_open_spans_as_pending(self, tracer, clock):
        tracer.open_request("r1")
        clock.advance(1.0)
        tracer.finalize()
        root = tracer.request_root("r1")
        assert root.t1 == 1.0
        assert root.attrs["status"] == "pending"

    def test_finalize_extends_parents_over_children(self, tracer):
        tracer.open_request("r1")
        tracer.close_request("r1", "completed")  # t1 = 0.0
        tracer.record("invocation", "wf.f", request_id="r1", t0=0.0, t1=9.0)
        tracer.finalize()
        assert tracer.request_root("r1").t1 == 9.0

    def test_jsonl_round_trip(self, tracer):
        tracer.open_request("r1", workflow="wf")
        tracer.record("kv", "get:t", request_id="r1", op="get")
        tracer.close_request("r1", "completed")
        spans = load_jsonl(io.StringIO(tracer.to_jsonl()))
        assert [s.to_dict() for s in spans] == [
            s.to_dict() for s in tracer.spans
        ]

    def test_jsonl_is_compact_and_sorted(self, tracer):
        tracer.record("kv", "get", op="get")
        line = tracer.to_jsonl().strip()
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)
        assert ": " not in line and ", " not in line

    def test_export_to_path(self, tracer, tmp_path):
        tracer.record("kv", "get")
        path = tmp_path / "trace.jsonl"
        tracer.export(str(path))
        assert load_jsonl(str(path))[0].kind == "kv"

    def test_iter_children(self, tracer):
        root = tracer.open_request("r1")
        tracer.record("kv", "a", request_id="r1")
        tracer.record("kv", "b", request_id="r1")
        assert [s.name for s in iter_children(tracer.spans, root.span_id)] == [
            "a",
            "b",
        ]

    def test_len_counts_spans(self, tracer):
        assert len(tracer) == 0
        tracer.record("kv", "x")
        assert len(tracer) == 1


class TestTracerSampling:
    """Request sampling: keep every N-th request, drop the rest whole."""

    def test_sample_every_validation(self, clock):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(clock, sample_every=0)

    def test_default_keeps_everything(self, tracer):
        for i in range(4):
            assert tracer.open_request(f"r{i}") is not None

    def test_keeps_every_nth_request(self, clock):
        tr = Tracer(clock, sample_every=3)
        kept = [tr.open_request(f"r{i}") is not None for i in range(7)]
        assert kept == [True, False, False, True, False, False, True]

    def test_dropped_request_spans_suppressed(self, clock):
        tr = Tracer(clock, sample_every=2)
        tr.open_request("keep")
        tr.open_request("drop")
        assert tr.record("kv", "get", request_id="drop") is None
        assert tr.record("kv", "get", request_id="keep") is not None
        tr.close_request("drop", "completed")  # no-op, no error
        tr.close_request("keep", "completed")
        assert all(s.request_id != "drop" for s in tr.spans)

    def test_dropped_scope_suppresses_synchronous_children(self, clock):
        tr = Tracer(clock, sample_every=2)
        tr.open_request("keep")
        tr.open_request("drop")
        with tr.span("publish", "p", request_id="drop") as scope:
            assert scope.span is None
            # Children carry no request id — the drop scope must still
            # suppress them, and its setters must be inert no-ops.
            assert tr.record("transfer", "a->b") is None
            scope.set(bytes=10)
        assert tr.record("transfer", "a->b") is not None
        assert len(tr) == 2  # keep's root + the post-scope transfer

    def test_sampled_trace_is_deterministic(self, clock):
        def run(tr):
            for i in range(6):
                tr.open_request(f"r{i}")
                tr.record("kv", "get", request_id=f"r{i}")
                tr.close_request(f"r{i}", "completed")
            buf = io.StringIO()
            tr.export(buf)
            return buf.getvalue()

        a = run(Tracer(VirtualClock(), sample_every=2))
        b = run(Tracer(VirtualClock(), sample_every=2))
        assert a == b
        assert a != run(Tracer(VirtualClock()))  # sampling does drop spans


class TestNullTracer:
    def test_is_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.record("kv", "x") is None
        with NULL_TRACER.span("publish", "p") as scope:
            scope.end_at(5.0)
            scope.set(a=1)
        NULL_TRACER.open_request("r")
        NULL_TRACER.close_request("r", "completed")
        NULL_TRACER.finalize()
        assert NULL_TRACER.to_jsonl() == ""
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.request_root("r") is None

    def test_null_scope_never_swallows(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("kv", "x"):
                raise KeyError("k")


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2.0)
        assert reg.snapshot()["hits"] == 3.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("hits").inc(-1.0)

    def test_labels_key_instruments_sorted(self):
        reg = MetricsRegistry()
        reg.counter("req", b="2", a="1").inc()
        snap = reg.snapshot()
        assert "req{a=1,b=2}" in snap

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4.0)
        g.add(-1.0)
        assert reg.snapshot()["depth"] == 3.0

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        snap = reg.snapshot()["lat"]
        assert snap["count"] == 3
        assert snap["min"] == 0.1
        assert snap["max"] == 0.3
        assert snap["mean"] == pytest.approx(0.2)

    def test_histogram_quantile_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            h.observe(v)
        assert h.quantile(0.5) <= h.quantile(0.95)

    def test_same_instrument_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", a="1") is not reg.counter("x", a="2")

    def test_disabled_registry_is_inert(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(1.0)
        NULL_METRICS.histogram("z").observe(1.0)
        assert NULL_METRICS.snapshot() == {}
        assert len(NULL_METRICS) == 0

    def test_summary_filters_by_prefix(self):
        reg = MetricsRegistry()
        reg.counter("kv.reads").inc()
        reg.counter("faas.invocations").inc()
        text = reg.summary(prefix="kv.")
        assert "kv.reads" in text
        assert "faas" not in text


class TestHistogramQuantile:
    """Quantiles interpolate within the winning bucket and respect the
    observed min/max (the old implementation returned raw bucket upper
    bounds, biasing every estimate high)."""

    def _hist(self, values, bounds=(1.0, 2.0, 4.0, 8.0)):
        from repro.obs.metrics import Histogram

        h = Histogram("t", bounds=bounds)
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_is_zero(self):
        h = self._hist([])
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_q0_is_min_and_q1_is_max(self):
        h = self._hist([0.5, 3.0, 7.0])
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 7.0

    def test_single_value_every_quantile(self):
        h = self._hist([3.0])
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert h.quantile(q) == 3.0

    def test_interpolates_within_bucket(self):
        # 10 observations, all in the (2, 4] bucket: the median rank
        # lands halfway through the bucket, so the estimate must lie
        # strictly inside (2, 4), not snap to the upper bound 4.0.
        h = self._hist([2.5] * 10)
        mid = h.quantile(0.5)
        assert 2.0 < mid < 4.0
        assert mid != 4.0  # the old upper-bound-biased answer

    def test_clamped_to_observed_range(self):
        h = self._hist([2.5, 2.6, 2.7])
        for q in (0.1, 0.5, 0.99):
            assert 2.5 <= h.quantile(q) <= 2.7

    def test_first_bucket_uses_min_as_lower_bound(self):
        # All mass in the first bucket; without the min clamp the lower
        # edge would be undefined (there is no bounds[-1]).
        h = self._hist([0.2, 0.4, 0.8])
        q = h.quantile(0.5)
        assert 0.2 <= q <= 0.8

    def test_overflow_bucket_uses_max_as_upper_bound(self):
        h = self._hist([9.0, 20.0, 100.0])  # all beyond the last bound 8.0
        q = h.quantile(0.9)
        assert 8.0 <= q <= 100.0
        assert h.quantile(1.0) == 100.0

    def test_monotone_in_q(self):
        h = self._hist([0.3, 0.9, 1.5, 2.2, 3.3, 5.0, 9.0, 12.0])
        qs = [h.quantile(q) for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
        assert qs == sorted(qs)

    def test_uniform_spread_median_near_true_median(self):
        values = [0.1 * i for i in range(1, 41)]  # 0.1 .. 4.0
        h = self._hist(values)
        assert h.quantile(0.5) == pytest.approx(2.0, abs=1.0)

    def test_rejects_out_of_range_q(self):
        h = self._hist([1.0])
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(-0.1)


class TestRenderers:
    def _sample_spans(self):
        return [
            Span(0, "request", "r1", 0.0, 5.0, None, "wf", "r1",
                 {"status": "completed"}),
            Span(1, "publish", "a->b", 0.0, 1.0, 0, "wf", "r1", {}),
            Span(2, "transfer", "a->b", 0.0, 0.5, 1, "wf", "r1", {}),
        ]

    def test_summary_counts_kinds_and_outcomes(self):
        text = render_trace_summary(self._sample_spans())
        assert "3 spans" in text
        assert "requests: completed=1" in text

    def test_summary_empty(self):
        assert render_trace_summary([]) == "(empty trace)"

    def test_tree_indents_children(self):
        lines = render_span_tree(self._sample_spans()).splitlines()
        assert lines[0].startswith("request:r1")
        assert lines[1].startswith("  publish:")
        assert lines[2].startswith("    transfer:")

    def test_tree_filters_by_request(self):
        spans = self._sample_spans() + [
            Span(3, "request", "r2", 0.0, 1.0, None, "wf", "r2",
                 {"status": "failed"})
        ]
        text = render_span_tree(spans, request_id="r2")
        assert "r2" in text and "publish" not in text

    def test_tree_truncates(self):
        spans = [
            Span(i, "kv", f"op{i}", 0.0, 0.0, None, "wf", "r") for i in range(10)
        ]
        text = render_span_tree(spans, max_spans=3)
        assert "truncated at 3 spans" in text

    def test_orphan_parents_treated_as_roots(self):
        # Span 2's parent (1) is filtered out: it must still render.
        spans = [Span(2, "transfer", "a->b", 0.0, 0.5, 1, "wf", "r1", {})]
        assert "transfer:a->b" in render_span_tree(spans)
