"""Tests for the workflow DAG model (§4)."""

import pytest

from repro.common.errors import WorkflowDefinitionError
from repro.model.dag import Edge, Node, WorkflowDAG


def build(nodes, edges, name="wf"):
    dag = WorkflowDAG(name)
    for n in nodes:
        dag.add_node(Node(name=n, function=n))
    for e in edges:
        dag.add_edge(Edge(*e) if len(e) == 2 else Edge(e[0], e[1], conditional=e[2]))
    return dag


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDAG("")

    def test_duplicate_node_rejected(self):
        dag = WorkflowDAG("wf")
        dag.add_node(Node("a", "a"))
        with pytest.raises(WorkflowDefinitionError, match="duplicate"):
            dag.add_node(Node("a", "a"))

    def test_edge_to_unknown_node_rejected(self):
        dag = WorkflowDAG("wf")
        dag.add_node(Node("a", "a"))
        with pytest.raises(WorkflowDefinitionError, match="unknown"):
            dag.add_edge(Edge("a", "ghost"))

    def test_self_loop_rejected(self):
        dag = build(["a"], [])
        with pytest.raises(WorkflowDefinitionError, match="self-loop"):
            dag.add_edge(Edge("a", "a"))

    def test_duplicate_edge_rejected(self):
        dag = build(["a", "b"], [("a", "b")])
        with pytest.raises(WorkflowDefinitionError, match="duplicate"):
            dag.add_edge(Edge("a", "b"))

    def test_invalid_node_memory(self):
        with pytest.raises(WorkflowDefinitionError):
            Node("a", "a", memory_mb=0)


class TestValidation:
    def test_cycle_detected(self):
        dag = build(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "b")])
        with pytest.raises(WorkflowDefinitionError, match="cycle"):
            dag.validate()

    def test_exactly_one_start_node(self):
        dag = build(["a", "b", "c"], [("a", "c"), ("b", "c")])
        with pytest.raises(WorkflowDefinitionError, match="start node"):
            dag.validate()

    def test_empty_dag_invalid(self):
        with pytest.raises(WorkflowDefinitionError, match="no nodes"):
            WorkflowDAG("wf").validate()

    def test_disconnected_node_rejected_as_extra_start(self):
        # A disconnected node is an extra in-degree-0 root: rejected by
        # the single-start rule (which subsumes reachability in a DAG).
        dag = build(["a", "b", "c"], [("a", "b")])
        with pytest.raises(WorkflowDefinitionError, match="start node"):
            dag.validate()

    def test_valid_diamond(self, diamond_dag):
        assert diamond_dag.start_node == "a"


class TestQueries:
    def test_sync_node_detection(self, diamond_dag):
        assert diamond_dag.sync_nodes == ("d",)
        assert diamond_dag.is_sync_node("d")
        assert not diamond_dag.is_sync_node("b")

    def test_terminal_nodes(self, diamond_dag):
        assert diamond_dag.terminal_nodes == ("d",)

    def test_in_out_edges(self, diamond_dag):
        assert {e.src for e in diamond_dag.in_edges("d")} == {"b", "c"}
        assert {e.dst for e in diamond_dag.out_edges("a")} == {"b", "c"}

    def test_conditional_flag(self, diamond_dag):
        assert diamond_dag.edge("a", "c").conditional
        assert not diamond_dag.edge("a", "b").conditional
        assert diamond_dag.has_conditional_edges

    def test_topological_order(self, diamond_dag):
        order = diamond_dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_topological_order_deterministic(self, diamond_dag):
        assert diamond_dag.topological_order() == diamond_dag.topological_order()

    def test_descendants(self, diamond_dag):
        assert diamond_dag.descendants("a") == {"b", "c", "d"}
        assert diamond_dag.descendants("d") == frozenset()

    def test_paths_between(self, diamond_dag):
        paths = diamond_dag.paths_between("a", "d")
        assert sorted(paths) == [["a", "b", "d"], ["a", "c", "d"]]

    def test_downstream_sync_nodes(self, diamond_dag):
        assert diamond_dag.downstream_sync_nodes("b") == ("d",)
        assert diamond_dag.downstream_sync_nodes("d") == ()

    def test_unknown_node_query(self, diamond_dag):
        with pytest.raises(KeyError):
            diamond_dag.node("ghost")
        with pytest.raises(KeyError):
            diamond_dag.edge("a", "ghost")

    def test_critical_path(self, diamond_dag):
        weights = {"a": 1.0, "b": 5.0, "c": 1.0, "d": 1.0}
        path, length = diamond_dag.critical_path(weights)
        assert path == ["a", "b", "d"]
        assert length == pytest.approx(7.0)

    def test_signature_stable_and_distinct(self, diamond_dag, chain_dag):
        assert diamond_dag.subgraph_signature() == diamond_dag.subgraph_signature()
        assert diamond_dag.subgraph_signature() != chain_dag.subgraph_signature()

    def test_len(self, diamond_dag):
        assert len(diamond_dag) == 4
