"""Tests for deployment plans and the workflow manifest."""

import pytest

from repro.common.errors import ConfigurationError
from repro.model.config import FunctionConstraints, Tolerances, WorkflowConfig
from repro.model.plan import DeploymentPlan, HourlyPlanSet


class TestDeploymentPlan:
    def test_region_lookup(self, chain_dag):
        plan = DeploymentPlan({"a": "us-east-1", "b": "ca-central-1", "c": "us-east-1"})
        assert plan.region_of("b") == "ca-central-1"
        with pytest.raises(KeyError):
            plan.region_of("ghost")

    def test_single_region_factory(self, chain_dag):
        plan = DeploymentPlan.single_region(chain_dag, "us-west-2")
        assert plan.is_single_region()
        assert plan.regions_used == ("us-west-2",)
        assert plan.covers(chain_dag)

    def test_covers_detects_missing(self, chain_dag):
        assert not DeploymentPlan({"a": "us-east-1"}).covers(chain_dag)

    def test_expiry(self):
        plan = DeploymentPlan({"a": "us-east-1"}, expires_at_s=100.0)
        assert not plan.is_expired(99.0)
        assert plan.is_expired(100.0)
        assert not DeploymentPlan({"a": "us-east-1"}).is_expired(1e12)

    def test_equality_and_hash_by_assignments(self):
        p1 = DeploymentPlan({"a": "x1"}, version=1)
        p2 = DeploymentPlan({"a": "x1"}, version=2)
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1 != DeploymentPlan({"a": "x2"})

    def test_moved_nodes(self):
        p1 = DeploymentPlan({"a": "r1", "b": "r1"})
        p2 = DeploymentPlan({"a": "r1", "b": "r2"})
        assert p1.moved_nodes(p2) == ("b",)

    def test_serialization_roundtrip(self):
        plan = DeploymentPlan(
            {"a": "us-east-1"}, version=3, created_at_s=5.0, expires_at_s=10.0
        )
        restored = DeploymentPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.version == 3
        assert restored.expires_at_s == 10.0


class TestHourlyPlanSet:
    def test_daily_plan_applies_all_hours(self):
        plan = DeploymentPlan({"a": "us-east-1"})
        plan_set = HourlyPlanSet.daily(plan)
        assert all(plan_set.plan_for_hour(h) == plan for h in range(24))
        assert plan_set.granularity == 1

    def test_sparse_hours_inherit_earlier(self):
        p0 = DeploymentPlan({"a": "us-east-1"})
        p12 = DeploymentPlan({"a": "ca-central-1"})
        plan_set = HourlyPlanSet({0: p0, 12: p12})
        assert plan_set.plan_for_hour(5) == p0
        assert plan_set.plan_for_hour(12) == p12
        assert plan_set.plan_for_hour(23) == p12

    def test_wraparound_inheritance(self):
        p6 = DeploymentPlan({"a": "us-west-1"})
        plan_set = HourlyPlanSet({6: p6})
        assert plan_set.plan_for_hour(2) == p6  # wraps to hour 6 of "yesterday"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            HourlyPlanSet({})

    def test_invalid_hour_rejected(self):
        with pytest.raises(ConfigurationError):
            HourlyPlanSet({24: DeploymentPlan({"a": "us-east-1"})})
        plan_set = HourlyPlanSet.daily(DeploymentPlan({"a": "us-east-1"}))
        with pytest.raises(ValueError):
            plan_set.plan_for_hour(24)

    def test_distinct_plans_and_regions(self):
        p0 = DeploymentPlan({"a": "us-east-1"})
        p1 = DeploymentPlan({"a": "ca-central-1"})
        plan_set = HourlyPlanSet({0: p0, 6: p1, 12: p0})
        assert plan_set.distinct_plans() == (p0, p1)
        assert plan_set.all_regions_used() == ("ca-central-1", "us-east-1")

    def test_serialization_roundtrip(self):
        plan_set = HourlyPlanSet(
            {0: DeploymentPlan({"a": "us-east-1"}),
             12: DeploymentPlan({"a": "us-west-2"})},
            created_at_s=1.0, expires_at_s=2.0,
        )
        restored = HourlyPlanSet.from_dict(plan_set.to_dict())
        assert restored.hours == (0, 12)
        assert restored.plan_for_hour(13) == plan_set.plan_for_hour(13)
        assert restored.expires_at_s == 2.0


class TestFunctionConstraints:
    def test_allow_list(self):
        fc = FunctionConstraints(allowed_regions=frozenset({"us-east-1"}))
        assert fc.permits("us-east-1")
        assert not fc.permits("ca-central-1")

    def test_deny_list(self):
        fc = FunctionConstraints(disallowed_regions=frozenset({"ca-central-1"}))
        assert fc.permits("us-east-1")
        assert not fc.permits("ca-central-1")

    def test_deny_beats_allow(self):
        fc = FunctionConstraints(
            allowed_regions=frozenset({"us-east-1", "us-west-1"}),
            disallowed_regions=frozenset({"us-west-1"}),
        )
        assert not fc.permits("us-west-1")

    def test_contradictory_constraints_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionConstraints(
                allowed_regions=frozenset({"us-east-1"}),
                disallowed_regions=frozenset({"us-east-1"}),
            )

    def test_unknown_region_rejected(self):
        with pytest.raises(KeyError):
            FunctionConstraints(allowed_regions=frozenset({"nowhere"}))


class TestWorkflowConfig:
    def test_defaults_allow_everything(self):
        cfg = WorkflowConfig(home_region="us-east-1")
        assert cfg.permits(None, "ca-central-1")
        assert cfg.permits("any_fn", "us-west-2")

    def test_priority_validation(self):
        with pytest.raises(ConfigurationError):
            WorkflowConfig(home_region="us-east-1", priority="speed")

    def test_workflow_allow_list(self):
        cfg = WorkflowConfig(
            home_region="us-east-1",
            allowed_regions=frozenset({"us-east-1", "us-west-2"}),
        )
        assert cfg.permits(None, "us-west-2")
        assert not cfg.permits(None, "ca-central-1")

    def test_function_constraints_supersede_workflow(self):
        # §8: function-level configurations supersede workflow-level.
        cfg = WorkflowConfig(
            home_region="us-east-1",
            allowed_regions=frozenset({"us-east-1"}),
            function_constraints={
                "free_fn": FunctionConstraints(
                    allowed_regions=frozenset({"ca-central-1", "us-east-1"})
                )
            },
        )
        assert cfg.permits("free_fn", "ca-central-1")  # function override wins
        assert not cfg.permits("other_fn", "ca-central-1")

    def test_home_region_must_be_permitted(self):
        with pytest.raises(ConfigurationError, match="home region"):
            WorkflowConfig(
                home_region="us-east-1",
                allowed_regions=frozenset({"ca-central-1"}),
            )

    def test_tolerances_validation(self):
        with pytest.raises(ConfigurationError):
            Tolerances(latency=-0.1)
        t = Tolerances(latency=0.05, carbon=None, cost=1.0)
        assert t.latency == 0.05

    def test_benchmarking_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            WorkflowConfig(home_region="us-east-1", benchmarking_fraction=1.5)

    def test_permitted_regions_filter(self):
        cfg = WorkflowConfig(
            home_region="us-east-1",
            disallowed_regions=frozenset({"us-west-1"}),
        )
        regions = ("us-east-1", "us-west-1", "ca-central-1")
        assert cfg.permitted_regions_for_function(None, regions) == (
            "us-east-1", "ca-central-1",
        )

    def test_with_helpers(self):
        cfg = WorkflowConfig(home_region="us-east-1")
        cfg2 = cfg.with_tolerances(Tolerances(latency=0.1))
        assert cfg2.tolerances.latency == 0.1
        cfg3 = cfg.with_home_region("us-west-2")
        assert cfg3.home_region == "us-west-2"
