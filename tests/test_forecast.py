"""Tests for Holt-Winters carbon forecasting (§7.2)."""

import numpy as np
import pytest

from repro.data.carbon import generate_carbon_trace
from repro.metrics.forecast import (
    HoltWintersForecaster,
    HoltWintersParams,
    mape,
)


class TestParams:
    def test_bounds(self):
        with pytest.raises(ValueError):
            HoltWintersParams(alpha=0.0, beta=0.1, gamma=0.1)
        with pytest.raises(ValueError):
            HoltWintersParams(alpha=0.5, beta=1.0, gamma=0.1)
        HoltWintersParams(alpha=0.5, beta=0.1, gamma=0.3)  # valid


class TestForecaster:
    def test_requires_two_seasons(self):
        with pytest.raises(ValueError, match="at least"):
            HoltWintersForecaster().fit([1.0] * 47)

    def test_rejects_nan(self):
        series = [1.0] * 48
        series[10] = float("nan")
        with pytest.raises(ValueError):
            HoltWintersForecaster().fit(series)

    def test_forecast_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HoltWintersForecaster().forecast(5)

    def test_invalid_horizon(self):
        f = HoltWintersForecaster().fit(list(range(48)))
        with pytest.raises(ValueError):
            f.forecast(0)

    def test_constant_series_forecast_constant(self):
        f = HoltWintersForecaster().fit([100.0] * (24 * 7))
        pred = f.forecast(24)
        assert np.allclose(pred, 100.0, atol=1.0)

    def test_learns_pure_sinusoid(self):
        t = np.arange(24 * 7)
        series = 300 + 50 * np.sin(2 * np.pi * t / 24)
        f = HoltWintersForecaster().fit(series)
        future = 300 + 50 * np.sin(2 * np.pi * np.arange(24 * 7, 24 * 8) / 24)
        pred = f.forecast(24)
        assert mape(future, pred) < 0.05

    def test_learns_trend(self):
        t = np.arange(24 * 7)
        series = 100 + 0.5 * t + 10 * np.sin(2 * np.pi * t / 24)
        f = HoltWintersForecaster().fit(series)
        pred = f.forecast(24)
        future_mean = 100 + 0.5 * (24 * 7 + 12)
        assert abs(pred.mean() - future_mean) < 15

    def test_non_negative_forecasts(self):
        # A falling trend must not forecast negative carbon intensity.
        t = np.arange(24 * 7)
        series = np.maximum(5.0, 100 - 0.5 * t)
        pred = HoltWintersForecaster().fit(series).forecast(24 * 3)
        assert np.all(pred >= 0)

    def test_reasonable_on_synthetic_carbon(self):
        # The §9.5/§9.7 use case: week of hourly data -> next day.
        trace = generate_carbon_trace("US-CAISO", 24 * 8, seed=5)
        f = HoltWintersForecaster().fit(trace[: 24 * 7])
        pred = f.forecast(24)
        assert mape(trace[24 * 7 :], pred) < 0.25

    def test_explicit_params_skip_grid_search(self):
        params = HoltWintersParams(alpha=0.3, beta=0.05, gamma=0.3)
        f = HoltWintersForecaster(params=params).fit([float(i % 24) + 10 for i in range(96)])
        assert f.fitted_params == params

    def test_grid_search_selects_params(self):
        f = HoltWintersForecaster().fit(
            generate_carbon_trace("US-PJM", 24 * 7)
        )
        assert f.fitted_params is not None


class TestMape:
    def test_zero_for_perfect(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_value(self):
        assert mape([100.0], [110.0]) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mape([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            mape([], [])
