"""Tests for ledger record pricing (carbon/cost accounting)."""

import pytest

from repro.cloud.ledger import (
    ExecutionRecord,
    KvAccessRecord,
    MessagingRecord,
    MeteringLedger,
    TransmissionRecord,
)
from repro.data.carbon import CarbonIntensitySource
from repro.data.pricing import PricingSource
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel


@pytest.fixture
def carbon_source():
    # Flat 400 everywhere for predictable arithmetic.
    flat = {zone: [400.0] * 24 for zone in
            ("US-PJM", "US-CAISO", "US-BPA", "CA-QC", "CA-AB")}
    return CarbonIntensitySource(hours=24, overrides=flat)


@pytest.fixture
def accountant(carbon_source):
    return CarbonAccountant(
        carbon_source,
        CarbonModel(TransmissionScenario.best_case()),
        CostModel(PricingSource()),
    )


def exec_rec(region="us-east-1", duration=3600.0, rid="r1"):
    return ExecutionRecord(
        workflow="wf", node="n", function="n", region=region, request_id=rid,
        start_s=0.0, duration_s=duration, memory_mb=1769, n_vcpu=1.0,
        cpu_total_time_s=duration, cold_start=False, payload_bytes=0,
        output_bytes=0,
    )


def trans_rec(src="us-east-1", dst="ca-central-1", size=1024**3, rid="r1"):
    return TransmissionRecord(
        workflow="wf", src_region=src, dst_region=dst, size_bytes=size,
        start_s=0.0, latency_s=0.1, request_id=rid, kind="data", edge="a->b",
    )


class TestSingleRecords:
    def test_execution_carbon_matches_model(self, accountant):
        carbon = accountant.execution_carbon_g(exec_rec())
        # Full-util 1 vCPU + 1769 MB for 1 h at 400 g/kWh with PUE 1.11.
        expected = 400.0 * (3.5e-3 + 3.725e-4 * 1769 / 1024) * 1.11
        assert carbon == pytest.approx(expected)

    def test_transmission_uses_route_mean(self, accountant, carbon_source):
        carbon = accountant.transmission_carbon_g(trans_rec())
        assert carbon == pytest.approx(400.0 * 0.001 * 1.0)

    def test_scenario_swap(self, accountant):
        worst = accountant.with_scenario(TransmissionScenario.worst_case())
        intra = trans_rec(dst="us-east-1")
        assert worst.transmission_carbon_g(intra) == 0.0
        assert accountant.transmission_carbon_g(intra) > 0.0


class TestAggregation:
    def test_price_combines_components(self, accountant):
        fp = accountant.price(
            executions=[exec_rec()],
            transmissions=[trans_rec()],
            messages=[MessagingRecord(workflow="wf", topic="t",
                                      region="us-east-1", start_s=0.0,
                                      size_bytes=10, request_id="r1")],
            kv_accesses=[KvAccessRecord(workflow="wf", table="t",
                                        region="us-east-1", start_s=0.0,
                                        write=True, request_id="r1")],
        )
        assert fp.carbon_g == pytest.approx(fp.exec_carbon_g + fp.trans_carbon_g)
        assert fp.n_executions == 1
        assert fp.n_transmissions == 1
        assert fp.exec_seconds == 3600.0
        assert fp.bytes_moved == 1024**3
        assert fp.cost_usd > 0

    def test_price_workflow_filters_request(self, accountant):
        ledger = MeteringLedger()
        ledger.record_execution(exec_rec(rid="r1"))
        ledger.record_execution(exec_rec(rid="r2"))
        fp = accountant.price_workflow(ledger, "wf", request_id="r1")
        assert fp.n_executions == 1

    def test_price_workflow_time_window(self, accountant):
        ledger = MeteringLedger()
        early = exec_rec(rid="r1")
        ledger.record_execution(early)
        late = ExecutionRecord(
            workflow="wf", node="n", function="n", region="us-east-1",
            request_id="r2", start_s=5000.0, duration_s=1.0, memory_mb=1769,
            n_vcpu=1.0, cpu_total_time_s=1.0, cold_start=False,
            payload_bytes=0, output_bytes=0,
        )
        ledger.record_execution(late)
        fp = accountant.price_workflow(ledger, "wf", since_s=1000.0)
        assert fp.n_executions == 1

    def test_merged(self, accountant):
        fp1 = accountant.price(executions=[exec_rec()])
        fp2 = accountant.price(transmissions=[trans_rec()])
        merged = fp1.merged(fp2)
        assert merged.carbon_g == pytest.approx(fp1.carbon_g + fp2.carbon_g)
        assert merged.n_executions == 1
        assert merged.n_transmissions == 1

    def test_cost_optional(self, carbon_source):
        acc = CarbonAccountant(
            carbon_source, CarbonModel(TransmissionScenario.best_case())
        )
        fp = acc.price(executions=[exec_rec()])
        assert fp.cost_usd == 0.0
        assert fp.carbon_g > 0.0


class TestPriceByRequest:
    def test_groups_match_per_request_pricing(self, accountant):
        ledger = MeteringLedger()
        for rid in ("r1", "r2"):
            ledger.record_execution(exec_rec(rid=rid))
            ledger.record_transmission(trans_rec(rid=rid))
            ledger.record_message(MessagingRecord(
                workflow="wf", topic="t", region="us-east-1", start_s=0.0,
                size_bytes=10, request_id=rid,
            ))
        grouped = accountant.price_by_request(ledger, "wf")
        assert set(grouped) == {"r1", "r2"}
        for rid, fp in grouped.items():
            direct = accountant.price_workflow(ledger, "wf", rid)
            assert fp.carbon_g == pytest.approx(direct.carbon_g)
            assert fp.cost_usd == pytest.approx(direct.cost_usd)
            assert fp.n_executions == direct.n_executions

    def test_window_filter(self, accountant):
        ledger = MeteringLedger()
        ledger.record_execution(exec_rec(rid="early"))
        late = ExecutionRecord(
            workflow="wf", node="n", function="n", region="us-east-1",
            request_id="late", start_s=9999.0, duration_s=1.0, memory_mb=1769,
            n_vcpu=1.0, cpu_total_time_s=1.0, cold_start=False,
            payload_bytes=0, output_bytes=0,
        )
        ledger.record_execution(late)
        grouped = accountant.price_by_request(ledger, "wf", since_s=5000.0)
        assert set(grouped) == {"late"}

    def test_anonymous_records_dropped(self, accountant):
        ledger = MeteringLedger()
        ledger.record_transmission(TransmissionRecord(
            workflow="wf", src_region="us-east-1", dst_region="us-west-1",
            size_bytes=10, start_s=0.0, latency_s=0.1, request_id="",
            kind="image", edge="crane:x",
        ))
        assert accountant.price_by_request(ledger, "wf") == {}
