"""Tests for the fault-injection layer and resilient execution paths."""

import math

import pytest

from repro.apps import get_app
from repro.cloud.faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultRule
from repro.cloud.provider import SimulatedCloud
from repro.cloud.pubsub import MAX_DELIVERY_ATTEMPTS, Message
from repro.common.errors import (
    FunctionInvocationError,
    FunctionTimeoutError,
    KeyValueStoreError,
    NetworkPartitionError,
    RegionUnavailableError,
)
from repro.core.solver import SolverSettings
from repro.experiments.harness import deploy_benchmark, run_caribou
from repro.model.config import WorkflowConfig


@pytest.fixture
def make_cloud():
    """Factory for chaos clouds that cannot leak RNG state.

    Each created cloud's RNG registry is snapshotted at birth and
    restored in teardown — even when the test body fails mid-run — so a
    half-consumed chaos stream can never bleed into a later test that
    happens to reuse the same cloud object through a cached reference.
    """
    created = []

    def factory(plan, seed=42):
        cloud = SimulatedCloud(seed=seed, fault_plan=plan)
        created.append((cloud, cloud.env.rng.snapshot()))
        return cloud

    try:
        yield factory
    finally:
        for cloud, state in created:
            cloud.env.rng.restore(state)


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="meteor_strike")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(kind="kv_error", probability=1.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty fault window"):
            FaultRule(kind="region_outage", region="us-east-1",
                      start_s=10.0, end_s=10.0)

    def test_partition_needs_both_endpoints(self):
        with pytest.raises(ValueError, match="src_region and dst_region"):
            FaultRule(kind="network_partition", src_region="us-east-1")

    def test_window_is_half_open(self):
        rule = FaultRule(kind="region_outage", region="r", start_s=1.0, end_s=2.0)
        assert not rule.active(0.999)
        assert rule.active(1.0)
        assert rule.active(1.999)
        assert not rule.active(2.0)

    def test_none_scope_matches_anything(self):
        rule = FaultRule(kind="invocation_failure")
        assert rule.matches("wf", "fn", "anywhere")
        scoped = FaultRule(kind="invocation_failure", workflow="wf", region="r1")
        assert scoped.matches("wf", "fn", "r1")
        assert not scoped.matches("other", "fn", "r1")
        assert not scoped.matches("wf", "fn", "r2")


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().with_kv_errors(0.5)

    def test_builders_accumulate_rules(self):
        plan = (
            FaultPlan()
            .with_invocation_failures(0.1)
            .with_invocation_timeouts(0.1)
            .with_cold_start_spike(4.0)
            .with_region_outage("us-west-2")
            .with_kv_errors(0.1)
            .with_kv_latency(2.0)
            .with_network_partition("us-east-1", "us-west-2")
        )
        assert len(plan.rules) == len(FAULT_KINDS)
        for kind in FAULT_KINDS:
            assert len(plan.of_kind(kind)) == 1

    def test_builders_do_not_mutate_original(self):
        base = FaultPlan()
        base.with_region_outage("us-east-1")
        assert not base


class TestFaultInjector:
    def test_empty_plan_never_touches_rng(self, cloud):
        injector = cloud.faults
        assert not injector.enabled
        assert injector._rng is None  # no RNG stream ever created
        assert not injector.region_down("us-east-1")
        assert injector.invocation_fault("wf", "fn", "us-east-1") is None
        assert injector.cold_start_multiplier("wf", "fn", "us-east-1") == 1.0
        assert injector.kv_latency_factor("us-east-1") == 1.0
        assert not injector.partitioned("us-east-1", "us-west-2")
        assert injector.snapshot() == {}

    def test_outage_follows_window(self, make_cloud):
        plan = FaultPlan().with_region_outage("us-west-2", start_s=10.0, end_s=20.0)
        cloud = make_cloud(plan)
        assert not cloud.faults.region_down("us-west-2")
        cloud.env.schedule(15.0, lambda: None)
        cloud.run_until_idle()
        assert cloud.faults.region_down("us-west-2")
        assert not cloud.faults.region_down("us-east-1")
        cloud.env.schedule(10.0, lambda: None)  # now 25 s
        cloud.run_until_idle()
        assert not cloud.faults.region_down("us-west-2")

    def test_certain_rules_consume_no_randomness(self, make_cloud):
        plan = FaultPlan().with_invocation_failures(1.0)
        cloud = make_cloud(plan)
        before = cloud.env.rng.get("faults").bit_generator.state
        assert cloud.faults.invocation_fault("wf", "fn", "us-east-1") == "failure"
        after = cloud.env.rng.get("faults").bit_generator.state
        assert before == after

    def test_partition_is_symmetric(self, make_cloud):
        plan = FaultPlan().with_network_partition("us-east-1", "us-west-2")
        cloud = make_cloud(plan)
        assert cloud.faults.partitioned("us-east-1", "us-west-2")
        assert cloud.faults.partitioned("us-west-2", "us-east-1")
        assert not cloud.faults.partitioned("us-east-1", "ca-central-1")
        assert not cloud.faults.partitioned("us-east-1", "us-east-1")


class TestServiceWiring:
    def _deploy(self, cloud):
        app = get_app("rag_ingestion")
        return deploy_benchmark(app, cloud)

    def test_invocation_failure_raised(self, make_cloud):
        plan = FaultPlan().with_invocation_failures(1.0)
        cloud = make_cloud(plan)
        deployed, _, _ = self._deploy(cloud)
        spec = deployed.workflow.functions[0]
        with pytest.raises(FunctionInvocationError):
            cloud.functions.invoke(
                deployed.name, spec.name, "us-east-1", None, 0.0
            )
        assert cloud.faults.snapshot() == {"invocation_failure": 1}

    def test_invocation_timeout_raised(self, make_cloud):
        plan = FaultPlan().with_invocation_timeouts(1.0)
        cloud = make_cloud(plan)
        deployed, _, _ = self._deploy(cloud)
        spec = deployed.workflow.functions[0]
        with pytest.raises(FunctionTimeoutError):
            cloud.functions.invoke(
                deployed.name, spec.name, "us-east-1", None, 0.0
            )

    def test_region_outage_blocks_invocations_and_deploys(self, make_cloud):
        plan = FaultPlan().with_region_outage("us-east-1")
        cloud = make_cloud(plan)
        with pytest.raises(RegionUnavailableError):
            self._deploy(cloud)

    def test_cold_start_spike_multiplies_delay(self, make_cloud):
        factor = 50.0
        plain = SimulatedCloud(seed=7)
        spiked = make_cloud(FaultPlan().with_cold_start_spike(factor), seed=7)
        d_plain, _, _ = self._deploy(plain)
        d_spiked, _, _ = self._deploy(spiked)
        spec = d_plain.workflow.functions[0]
        ctx_plain = plain.functions.invoke(
            d_plain.name, spec.name, "us-east-1", None, 0.0
        )
        ctx_spiked = spiked.functions.invoke(
            d_spiked.name, spec.name, "us-east-1", None, 0.0
        )
        # Same seed, same cold-start draw: only the factor differs.
        delay_plain = ctx_plain.start_s - plain.now()
        delay_spiked = ctx_spiked.start_s - spiked.now()
        assert delay_plain > 0  # first invocation is cold
        assert delay_spiked == pytest.approx(delay_plain * factor)

    def test_kv_error_raises(self, make_cloud):
        plan = FaultPlan().with_kv_errors(1.0)
        cloud = make_cloud(plan)
        kv = cloud.kvstore("us-east-1")
        with pytest.raises(KeyValueStoreError):
            kv.put("t", "k", 1)

    def test_kv_latency_inflated(self, make_cloud):
        factor = 3.0
        plain = SimulatedCloud(seed=7)
        slowed = make_cloud(FaultPlan().with_kv_latency(factor), seed=7)
        base = plain.kvstore("us-east-1").put("t", "k", 1)
        inflated = slowed.kvstore("us-east-1").put("t", "k", 1)
        assert inflated == pytest.approx(base * factor)

    def test_kv_host_outage_raises(self, make_cloud):
        plan = FaultPlan().with_region_outage("us-east-1")
        cloud = make_cloud(plan)
        with pytest.raises(RegionUnavailableError):
            cloud.kvstore("us-east-1").get("t", "k")

    def test_network_partition_refuses_transfer(self, make_cloud):
        plan = FaultPlan().with_network_partition("us-east-1", "us-west-2")
        cloud = make_cloud(plan)
        with pytest.raises(NetworkPartitionError):
            cloud.network.transfer("us-east-1", "us-west-2", 100.0)
        # Unrelated pairs still work.
        cloud.network.transfer("us-east-1", "ca-central-1", 100.0)

    def test_publish_to_dark_region_raises(self, make_cloud):
        plan = FaultPlan().with_region_outage("us-west-2")
        cloud = make_cloud(plan)
        cloud.pubsub.create_topic("t", "us-west-2")
        with pytest.raises(RegionUnavailableError):
            cloud.pubsub.publish(
                "t", "us-west-2", Message(body=None, size_bytes=0),
                source_region="us-east-1",
            )

    def test_delivery_during_outage_retries_then_dead_letters(self, make_cloud):
        # Publish accepted just before the outage window opens; delivery
        # attempts all land inside it.
        plan = FaultPlan().with_region_outage("us-west-2", start_s=0.01)
        cloud = make_cloud(plan)
        cloud.pubsub.create_topic("t", "us-west-2")
        delivered = []
        cloud.pubsub.subscribe("t", "us-west-2", lambda m: delivered.append(m))
        cloud.pubsub.publish(
            "t", "us-west-2", Message(body=None, size_bytes=0, workflow="wf"),
            source_region="us-west-2",
        )
        cloud.run_until_idle()
        assert delivered == []
        assert cloud.pubsub.dead_letter_count("wf") == 1
        assert cloud.pubsub.retry_count("wf") == MAX_DELIVERY_ATTEMPTS - 1

    def test_outage_ending_lets_retry_succeed(self, make_cloud):
        # Outage so short that the first redelivery lands after it ends:
        # at-least-once glue rides out the window (§6.2).
        plan = FaultPlan().with_region_outage("us-west-2", start_s=0.01, end_s=0.3)
        cloud = make_cloud(plan)
        cloud.pubsub.create_topic("t", "us-west-2")
        delivered = []
        cloud.pubsub.subscribe("t", "us-west-2", lambda m: delivered.append(m))
        cloud.pubsub.publish(
            "t", "us-west-2", Message(body=None, size_bytes=0, workflow="wf"),
            source_region="us-west-2",
        )
        cloud.run_until_idle()
        assert len(delivered) == 1
        assert cloud.pubsub.dead_letter_count("wf") == 0
        assert cloud.pubsub.retry_count("wf") >= 1


class TestExecutorResilience:
    def _deploy(self, cloud, **config_kwargs):
        app = get_app("text2speech_censoring")
        config = None
        if config_kwargs:
            config = WorkflowConfig(
                home_region="us-east-1", benchmarking_fraction=0.0,
                **config_kwargs,
            )
        deployed, executor, utility = deploy_benchmark(app, cloud, config=config)
        return app, deployed, executor, utility

    def test_home_fallback_on_region_outage(self, make_cloud):
        from repro.model.plan import DeploymentPlan, HourlyPlanSet

        # Materialise everything in us-west-2 while it is healthy, then
        # route there once the outage window opens: every publish must
        # fall back home and the request must still finish.
        outage_start = 50_000.0
        plan = FaultPlan().with_region_outage("us-west-2", start_s=outage_start)
        cloud = make_cloud(plan)
        app, deployed, executor, utility = self._deploy(cloud)
        for spec in deployed.workflow.functions:
            utility.deploy_function(deployed, executor, spec, "us-west-2",
                                    copy_image_from="us-east-1")
        executor.stage_plan_set(HourlyPlanSet.daily(
            DeploymentPlan.single_region(deployed.dag, "us-west-2")
        ))
        cloud.run_until_idle()
        assert cloud.now() < outage_start  # set-up finished before the outage
        rids = []
        cloud.env.schedule(
            outage_start - cloud.now() + 1.0,
            lambda: rids.append(executor.invoke(app.make_input("small"))),
        )
        cloud.run_until_idle()
        (rid,) = rids
        assert executor.request_status(rid) == "completed"
        stats = executor.reliability()
        assert stats.home_fallbacks >= 1
        regions = {e.region
                   for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert regions == {"us-east-1"}

    def test_missing_home_topic_dead_letters_not_crashes(self):
        from repro.core.executor import topic_name

        cloud = SimulatedCloud(seed=5)
        app, deployed, executor, _ = self._deploy(cloud)
        start = deployed.dag.start_node
        function = deployed.dag.node(start).function
        cloud.pubsub.delete_topic(topic_name(deployed.name, function),
                                  "us-east-1")
        rid = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()  # previously: MessageDeliveryError escaped
        assert executor.request_status(rid) == "failed"
        assert executor.reliability().dead_letters == 1

    def test_watchdog_times_out_stalled_request(self, make_cloud):
        # A gigantic cold-start spike pushes all effects far beyond the
        # request deadline: the watchdog must mark the request timed out.
        plan = FaultPlan().with_cold_start_spike(1e9)
        cloud = make_cloud(plan)
        app, deployed, executor, _ = self._deploy(
            cloud, request_timeout_s=60.0
        )
        rid = executor.invoke(app.make_input("small"))
        cloud.run(until=cloud.now() + 3600.0)
        assert executor.request_status(rid) == "timed_out"
        assert executor.reliability().timed_out_requests == 1

    def test_fetch_active_plan_survives_kv_outage(self, make_cloud):
        # KV errors start only after deployment (which itself writes the
        # plan to the store) has finished.
        errors_start = 50_000.0
        plan = FaultPlan().with_kv_errors(1.0, start_s=errors_start)
        cloud = make_cloud(plan)
        _, _, executor, _ = self._deploy(cloud)
        cloud.run_until_idle()
        assert cloud.now() < errors_start
        plans = []
        cloud.env.schedule(
            errors_start - cloud.now() + 1.0,
            lambda: plans.append(executor.fetch_active_plan()),
        )
        cloud.run_until_idle()
        assert plans[0].regions_used == ("us-east-1",)
        assert executor.reliability().home_fallbacks == 1


class TestRngStreamStability:
    def test_force_home_draw_not_short_circuited(self):
        """Regression: ``force_home`` used to skip the benchmarking draw,
        desynchronising the executor's RNG stream between warmed-up and
        cold runs with the same seed."""
        app = get_app("rag_ingestion")
        cloud = SimulatedCloud(seed=33)
        deployed, executor, _ = deploy_benchmark(app, cloud)
        twin = SimulatedCloud(seed=33)
        expected = twin.env.rng.get(f"executor:{deployed.name}")
        executor.invoke(app.make_input("small"), force_home=True)
        executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        # Both invocations consumed exactly one draw each: the live
        # stream now matches a twin advanced by two draws.
        expected.random(2)
        assert executor._rng.random() == expected.random()  # noqa: SLF001


class TestChaosRegression:
    """The PR's acceptance scenario: Text2Speech under a seeded chaos
    plan runs to completion with every request accounted for, and the
    reliability counters are bit-for-bit reproducible."""

    SETTINGS = SolverSettings(batch_size=20, max_samples=40, cov_threshold=0.5)

    def _chaos_plan(self):
        day = 86_400.0
        return (
            FaultPlan()
            .with_region_outage("us-west-2", start_s=1.0 * day, end_s=1.5 * day)
            .with_invocation_failures(0.05)
            .with_kv_latency(3.0, start_s=2.0 * day, end_s=3.0 * day)
        )

    def _run(self):
        return run_caribou(
            get_app("text2speech_censoring"),
            "small",
            ("us-east-1", "us-west-1", "us-west-2", "ca-central-1"),
            seed=3,
            n_invocations=12,
            warmup=6,
            solver_settings=self.SETTINGS,
            fault_plan=self._chaos_plan(),
        )

    def test_chaos_run_accounts_for_every_request(self):
        outcome = self._run()
        stats = outcome.reliability
        assert stats is not None
        # warmup + measured requests all reached a terminal state.
        assert stats.tracked_requests == 12 + 6
        assert stats.completed_requests > 0
        assert stats.total_injected > 0
        assert not math.isnan(outcome.mean_service_time_s)

    def test_chaos_counters_deterministic(self):
        first = self._run().reliability
        second = self._run().reliability
        assert first == second

    def test_no_fault_run_reports_clean_counters(self):
        outcome = run_caribou(
            get_app("text2speech_censoring"),
            "small",
            ("us-east-1", "us-west-2"),
            seed=3,
            n_invocations=6,
            warmup=4,
            solver_settings=self.SETTINGS,
        )
        stats = outcome.reliability
        assert stats.tracked_requests == 10
        assert stats.completed_requests == 10
        assert stats.failed_requests == 0
        assert stats.timed_out_requests == 0
        assert stats.total_injected == 0
