"""Tests for the solver stack: evaluation, HBSS, coarse, exhaustive."""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.core.solver import (
    CoarseSolver,
    ExhaustiveSolver,
    HBSSSolver,
    PlanEvaluator,
    SolverSettings,
    SolverStats,
)
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.model.config import FunctionConstraints, Tolerances, WorkflowConfig
from repro.model.plan import DeploymentPlan

REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")

#: Flat intensities: ca-central-1 overwhelmingly cleanest.
INTENSITY = {
    "us-east-1": 400.0,
    "us-west-1": 375.0,
    "us-west-2": 392.0,
    "ca-central-1": 34.0,
}


class FixtureData:
    def __init__(self, exec_seconds=1.0, edge_bytes=1e5):
        self.exec_seconds = exec_seconds
        self.edge_bytes = edge_bytes

    def execution_time_dist(self, node, region):
        return EmpiricalDistribution(
            [self.exec_seconds * f for f in (0.9, 1.0, 1.1)]
        )

    def edge_probability(self, src, dst):
        return 1.0

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution([self.edge_bytes])

    def node_memory_mb(self, node):
        return 1769

    def node_vcpu(self, node):
        return 1.0

    def node_cpu_utilization(self, node):
        return 0.7

    def node_external_bytes(self, node):
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([0.0])


def intensity_fn(region, hour):
    return INTENSITY[region]


def make_evaluator(dag, config=None, data=None, settings=None,
                   scenario=None, seed=0, regions=REGIONS):
    return PlanEvaluator(
        dag=dag,
        config=config or WorkflowConfig(home_region="us-east-1"),
        data=data or FixtureData(),
        regions=regions,
        intensity_fn=intensity_fn,
        carbon_model=CarbonModel(scenario or TransmissionScenario.best_case()),
        cost_model=CostModel(PricingSource()),
        latency_model=TransferLatencyModel(LatencySource()),
        rng=np.random.default_rng(seed),
        settings=settings or SolverSettings(batch_size=40, max_samples=120,
                                            cov_threshold=0.1),
    )


def tiny_dag() -> WorkflowDAG:
    """a -> b: a 2-node space HBSS can exhaust within its alpha budget."""
    dag = WorkflowDAG("tiny")
    for name in ("a", "b"):
        dag.add_node(Node(name=name, function=name))
    dag.add_edge(Edge("a", "b"))
    dag.validate()
    return dag


class TestPlanEvaluator:
    def test_permitted_regions_filter_compliance(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"us-east-1", "us-west-2"})
                )
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        assert set(ev.permitted_regions("b")) == {"us-east-1", "us-west-2"}
        assert set(ev.permitted_regions("a")) == set(REGIONS)

    def test_search_space_size(self, chain_dag):
        ev = make_evaluator(chain_dag)
        assert ev.search_space_size() == 4**3

    def test_no_permitted_region_raises(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "b": FunctionConstraints(allowed_regions=frozenset({"ca-west-1"}))
            },
        )
        with pytest.raises(ValueError, match="no region"):
            make_evaluator(chain_dag, config=config)

    def test_profile_cached(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan = ev.home_plan()
        p1 = ev.profile(plan)
        p2 = ev.profile(DeploymentPlan(dict(plan.assignments)))
        assert p1 is p2
        assert ev.plans_profiled == 1

    def test_tolerance_violated_latency(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            tolerances=Tolerances(latency=0.0),
        )
        ev = make_evaluator(chain_dag, config=config,
                            data=FixtureData(exec_seconds=0.2))
        # Spreading a short chain across the continent blows the
        # zero-tolerance latency budget.
        remote = DeploymentPlan(
            {"a": "us-east-1", "b": "us-west-1", "c": "us-east-1"}
        )
        assert ev.tolerance_violated(remote, hour=0)
        assert not ev.tolerance_violated(ev.home_plan(), hour=0)

    def test_no_tolerances_never_violates(self, chain_dag):
        ev = make_evaluator(chain_dag)
        remote = DeploymentPlan.single_region(chain_dag, "ca-central-1")
        assert not ev.tolerance_violated(remote, hour=0)

    def test_compliance_check(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"}))
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        assert ev.is_plan_compliant(ev.home_plan())
        assert not ev.is_plan_compliant(
            DeploymentPlan.single_region(chain_dag, "ca-central-1")
        )


class TestHBSS:
    def test_finds_low_carbon_region(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(1))
        result = solver.solve_hour(0)
        # With a ~12x intensity gap and tiny payloads, everything should
        # land in ca-central-1.
        assert set(result.best_plan.assignments.values()) == {"ca-central-1"}
        assert result.iterations > 0

    def test_iteration_budget_alpha(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(1))
        result = solver.solve_hour(0)
        alpha = len(chain_dag) * len(REGIONS) * ev.settings.alpha_per_node_region
        assert result.iterations <= alpha

    def test_respects_compliance(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"}))
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        solver = HBSSSolver(ev, np.random.default_rng(2))
        result = solver.solve_hour(0)
        assert result.best_plan.region_of("a") == "us-east-1"
        # The unconstrained nodes still escape to the clean region.
        assert result.best_plan.region_of("b") == "ca-central-1"

    def test_never_worse_than_home(self, diamond_dag):
        ev = make_evaluator(diamond_dag)
        solver = HBSSSolver(ev, np.random.default_rng(3))
        result = solver.solve_hour(0)
        home_metric = ev.metric(ev.home_plan(), 0)
        assert ev.metric(result.best_plan, 0) <= home_metric

    def test_tolerance_keeps_plans_feasible(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            tolerances=Tolerances(latency=0.0),
        )
        ev = make_evaluator(chain_dag, config=config,
                            data=FixtureData(exec_seconds=0.2))
        solver = HBSSSolver(ev, np.random.default_rng(4))
        result = solver.solve_hour(0)
        assert not ev.tolerance_violated(result.best_plan, 0)

    def test_solve_day_produces_hourly_set(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(5))
        plan_set, results = solver.solve_day(hours=[0, 6, 12])
        assert plan_set.hours == (0, 6, 12)
        assert len(results) == 3

    def test_solve_day_empty_hours_rejected(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(5))
        with pytest.raises(ValueError):
            solver.solve_day(hours=[])

    def test_complete_exploration_terminates(self):
        # 2 nodes x 2 regions = 4 plans: the run must stop via complete
        # exploration (Alg. 1 line 9) with every distinct plan memoized,
        # well before the alpha = 2*2*6 = 24 iteration budget.
        ev = make_evaluator(tiny_dag(), regions=("us-east-1", "us-west-1"))
        solver = HBSSSolver(ev, np.random.default_rng(0))
        result = solver.solve_hour(0)
        assert ev.search_space_size() == 4
        assert result.plans_evaluated == 4
        assert result.iterations < 24

    def test_complete_exploration_counts_tolerance_violators(self):
        # Plans that violate QoS tolerances are still *evaluated* and
        # must count toward complete exploration — previously they were
        # never memoized, so line 9 could not fire on a space where any
        # plan violates.
        config = WorkflowConfig(
            home_region="us-east-1", tolerances=Tolerances(latency=0.0)
        )
        ev = make_evaluator(
            tiny_dag(), config=config, data=FixtureData(exec_seconds=0.2),
            regions=("us-east-1", "us-west-1"),
        )
        solver = HBSSSolver(ev, np.random.default_rng(0))
        result = solver.solve_hour(0)
        assert result.plans_evaluated == ev.search_space_size() == 4
        # Cross-continent plans violate the 0% latency budget, yet the
        # run still terminates by exhaustion, not the iteration budget.
        assert result.iterations < 24

    def test_offloaded_nodes_signal(self, chain_dag):
        from repro.core.solver.hbss import SolveResult
        from repro.metrics.montecarlo import WorkflowEstimate

        est = WorkflowEstimate(1, 1, 1, 1, 1, 1, 1, 0, 10)
        res = SolveResult(
            hour=0,
            best_plan=DeploymentPlan(
                {"a": "us-east-1", "b": "us-east-1", "c": "ca-central-1"}
            ),
            best_estimate=est, iterations=1, accepted=1, plans_evaluated=1,
        )
        assert res.offloaded_nodes == ("c",)
        with pytest.deprecated_call():
            assert res.feasible_found == 1


class TestCoarseSolver:
    def test_picks_cleanest_region(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan, _est = CoarseSolver(ev).solve_hour(0)
        assert plan.regions_used == ("ca-central-1",)

    def test_candidate_regions_respect_all_functions(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"})),
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"us-east-1", "ca-central-1"})
                ),
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        solver = CoarseSolver(ev)
        assert solver.candidate_regions() == ("us-east-1",)

    def test_impossible_coarse_raises(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"})),
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"ca-central-1"})
                ),
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        with pytest.raises(SolverError):
            CoarseSolver(ev).solve_hour(0)

    def test_falls_back_home_when_all_violate(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1", tolerances=Tolerances(latency=0.0)
        )
        ev = make_evaluator(chain_dag, config=config,
                            data=FixtureData(exec_seconds=0.05))
        plan, _ = CoarseSolver(ev).solve_hour(0)
        # Every non-home region may violate a 0 % tolerance (region speed
        # spread); home must always be reachable.
        assert plan.covers(chain_dag)

    def test_solve_day(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan_set = CoarseSolver(ev).solve_day(hours=[0, 12])
        assert plan_set.hours == (0, 12)


class TestExhaustiveSolver:
    def test_matches_or_beats_hbss(self, chain_dag):
        ev = make_evaluator(chain_dag)
        exhaustive_plan, exhaustive_est = ExhaustiveSolver(ev).solve_hour(0)
        solver = HBSSSolver(ev, np.random.default_rng(6))
        hbss_result = solver.solve_hour(0)
        assert exhaustive_est.mean_carbon_g <= ev.estimate(
            hbss_result.best_plan, 0
        ).mean_carbon_g * 1.001

    def test_refuses_large_spaces(self, chain_dag):
        ev = make_evaluator(chain_dag)
        with pytest.raises(SolverError, match="exceeding"):
            ExhaustiveSolver(ev, max_plans=3).solve_hour(0)


class TestSolverSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            SolverSettings(batch_size=0)
        with pytest.raises(ValueError):
            SolverSettings(beta=1.5)
        with pytest.raises(ValueError):
            SolverSettings(alpha_per_node_region=0)

    def test_monte_carlo_knob_validation(self):
        with pytest.raises(ValueError, match="cov_threshold"):
            SolverSettings(cov_threshold=0.0)
        with pytest.raises(ValueError, match="cov_threshold"):
            SolverSettings(cov_threshold=-0.1)

    def test_hbss_knob_validation(self):
        with pytest.raises(ValueError, match="gamma "):
            SolverSettings(gamma=-0.5)
        with pytest.raises(ValueError, match="gamma_decay"):
            SolverSettings(gamma_decay=0.0)
        with pytest.raises(ValueError, match="gamma_decay"):
            SolverSettings(gamma_decay=1.01)
        SolverSettings(gamma=0.0, gamma_decay=1.0)  # boundary values OK


class TestSolverStats:
    def test_profile_and_estimate_counters(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan = ev.home_plan()
        ev.estimate(plan, 0)
        assert ev.stats.profiles_built == 1
        assert ev.stats.simulations_run == 1
        assert ev.stats.samples_drawn > 0
        assert ev.stats.estimates_computed == 1
        ev.estimate(plan, 0)  # estimate cache hit
        assert ev.stats.estimate_cache_hits == 1
        ev.estimate(plan, 5)  # new hour: profile cache hit, new estimate
        assert ev.stats.profile_cache_hits >= 1
        assert ev.stats.estimates_computed == 2
        assert ev.stats.simulations_run == 1  # no re-simulation

    def test_hbss_accumulates_wall_time(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(1))
        solver.solve_hour(0)
        assert ev.stats.wall_time_s > 0.0

    def test_shared_stats_object(self, chain_dag):
        stats = SolverStats()
        ev = PlanEvaluator(
            dag=chain_dag,
            config=WorkflowConfig(home_region="us-east-1"),
            data=FixtureData(),
            regions=REGIONS,
            intensity_fn=intensity_fn,
            carbon_model=CarbonModel(TransmissionScenario.best_case()),
            cost_model=CostModel(PricingSource()),
            latency_model=TransferLatencyModel(LatencySource()),
            rng=np.random.default_rng(0),
            settings=SolverSettings(batch_size=40, max_samples=120,
                                    cov_threshold=0.1),
            stats=stats,
        )
        ev.estimate(ev.home_plan(), 0)
        assert stats is ev.stats
        assert stats.simulations_run == 1
        assert "simulations" in stats.summary()
