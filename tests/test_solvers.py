"""Tests for the solver stack: evaluation, HBSS, coarse, exhaustive."""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.core.solver import (
    CoarseSolver,
    ExhaustiveSolver,
    HBSSSolver,
    PlanEvaluator,
    SolverSettings,
    SolverStats,
)
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.model.config import FunctionConstraints, Tolerances, WorkflowConfig
from repro.model.plan import DeploymentPlan

REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")

#: Flat intensities: ca-central-1 overwhelmingly cleanest.
INTENSITY = {
    "us-east-1": 400.0,
    "us-west-1": 375.0,
    "us-west-2": 392.0,
    "ca-central-1": 34.0,
}


class FixtureData:
    def __init__(self, exec_seconds=1.0, edge_bytes=1e5):
        self.exec_seconds = exec_seconds
        self.edge_bytes = edge_bytes

    def execution_time_dist(self, node, region):
        return EmpiricalDistribution(
            [self.exec_seconds * f for f in (0.9, 1.0, 1.1)]
        )

    def edge_probability(self, src, dst):
        return 1.0

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution([self.edge_bytes])

    def node_memory_mb(self, node):
        return 1769

    def node_vcpu(self, node):
        return 1.0

    def node_cpu_utilization(self, node):
        return 0.7

    def node_external_bytes(self, node):
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([0.0])


def intensity_fn(region, hour):
    return INTENSITY[region]


def make_evaluator(dag, config=None, data=None, settings=None,
                   scenario=None, seed=0, regions=REGIONS):
    return PlanEvaluator(
        dag=dag,
        config=config or WorkflowConfig(home_region="us-east-1"),
        data=data or FixtureData(),
        regions=regions,
        intensity_fn=intensity_fn,
        carbon_model=CarbonModel(scenario or TransmissionScenario.best_case()),
        cost_model=CostModel(PricingSource()),
        latency_model=TransferLatencyModel(LatencySource()),
        rng=np.random.default_rng(seed),
        settings=settings or SolverSettings(batch_size=40, max_samples=120,
                                            cov_threshold=0.1),
    )


def tiny_dag() -> WorkflowDAG:
    """a -> b: a 2-node space HBSS can exhaust within its alpha budget."""
    dag = WorkflowDAG("tiny")
    for name in ("a", "b"):
        dag.add_node(Node(name=name, function=name))
    dag.add_edge(Edge("a", "b"))
    dag.validate()
    return dag


class TestPlanEvaluator:
    def test_permitted_regions_filter_compliance(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"us-east-1", "us-west-2"})
                )
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        assert set(ev.permitted_regions("b")) == {"us-east-1", "us-west-2"}
        assert set(ev.permitted_regions("a")) == set(REGIONS)

    def test_search_space_size(self, chain_dag):
        ev = make_evaluator(chain_dag)
        assert ev.search_space_size() == 4**3

    def test_no_permitted_region_raises(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "b": FunctionConstraints(allowed_regions=frozenset({"ca-west-1"}))
            },
        )
        with pytest.raises(ValueError, match="no region"):
            make_evaluator(chain_dag, config=config)

    def test_profile_cached(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan = ev.home_plan()
        p1 = ev.profile(plan)
        p2 = ev.profile(DeploymentPlan(dict(plan.assignments)))
        assert p1 is p2
        assert ev.plans_profiled == 1

    def test_tolerance_violated_latency(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            tolerances=Tolerances(latency=0.0),
        )
        ev = make_evaluator(chain_dag, config=config,
                            data=FixtureData(exec_seconds=0.2))
        # Spreading a short chain across the continent blows the
        # zero-tolerance latency budget.
        remote = DeploymentPlan(
            {"a": "us-east-1", "b": "us-west-1", "c": "us-east-1"}
        )
        assert ev.tolerance_violated(remote, hour=0)
        assert not ev.tolerance_violated(ev.home_plan(), hour=0)

    def test_no_tolerances_never_violates(self, chain_dag):
        ev = make_evaluator(chain_dag)
        remote = DeploymentPlan.single_region(chain_dag, "ca-central-1")
        assert not ev.tolerance_violated(remote, hour=0)

    def test_compliance_check(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"}))
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        assert ev.is_plan_compliant(ev.home_plan())
        assert not ev.is_plan_compliant(
            DeploymentPlan.single_region(chain_dag, "ca-central-1")
        )


class TestHBSS:
    def test_finds_low_carbon_region(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(1))
        result = solver.solve_hour(0)
        # With a ~12x intensity gap and tiny payloads, everything should
        # land in ca-central-1.
        assert set(result.best_plan.assignments.values()) == {"ca-central-1"}
        assert result.iterations > 0

    def test_iteration_budget_alpha(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(1))
        result = solver.solve_hour(0)
        alpha = len(chain_dag) * len(REGIONS) * ev.settings.alpha_per_node_region
        assert result.iterations <= alpha

    def test_respects_compliance(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"}))
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        solver = HBSSSolver(ev, np.random.default_rng(2))
        result = solver.solve_hour(0)
        assert result.best_plan.region_of("a") == "us-east-1"
        # The unconstrained nodes still escape to the clean region.
        assert result.best_plan.region_of("b") == "ca-central-1"

    def test_never_worse_than_home(self, diamond_dag):
        ev = make_evaluator(diamond_dag)
        solver = HBSSSolver(ev, np.random.default_rng(3))
        result = solver.solve_hour(0)
        home_metric = ev.metric(ev.home_plan(), 0)
        assert ev.metric(result.best_plan, 0) <= home_metric

    def test_tolerance_keeps_plans_feasible(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            tolerances=Tolerances(latency=0.0),
        )
        ev = make_evaluator(chain_dag, config=config,
                            data=FixtureData(exec_seconds=0.2))
        solver = HBSSSolver(ev, np.random.default_rng(4))
        result = solver.solve_hour(0)
        assert not ev.tolerance_violated(result.best_plan, 0)

    def test_solve_day_produces_hourly_set(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(5))
        plan_set, results = solver.solve_day(hours=[0, 6, 12])
        assert plan_set.hours == (0, 6, 12)
        assert len(results) == 3

    def test_solve_day_empty_hours_rejected(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(5))
        with pytest.raises(ValueError):
            solver.solve_day(hours=[])

    def test_complete_exploration_terminates(self):
        # 2 nodes x 2 regions = 4 plans: the run must stop via complete
        # exploration (Alg. 1 line 9) with every distinct plan memoized,
        # well before the alpha = 2*2*6 = 24 iteration budget.
        ev = make_evaluator(tiny_dag(), regions=("us-east-1", "us-west-1"))
        solver = HBSSSolver(ev, np.random.default_rng(0))
        result = solver.solve_hour(0)
        assert ev.search_space_size() == 4
        assert result.plans_evaluated == 4
        assert result.iterations < 24

    def test_complete_exploration_counts_tolerance_violators(self):
        # Plans that violate QoS tolerances are still *evaluated* and
        # must count toward complete exploration — previously they were
        # never memoized, so line 9 could not fire on a space where any
        # plan violates.
        config = WorkflowConfig(
            home_region="us-east-1", tolerances=Tolerances(latency=0.0)
        )
        ev = make_evaluator(
            tiny_dag(), config=config, data=FixtureData(exec_seconds=0.2),
            regions=("us-east-1", "us-west-1"),
        )
        # Seed pinned to a stream whose walk covers the space within the
        # budget (the walk is stochastic; most seeds do).
        solver = HBSSSolver(ev, np.random.default_rng(1))
        result = solver.solve_hour(0)
        assert result.plans_evaluated == ev.search_space_size() == 4
        # Cross-continent plans violate the 0% latency budget, yet the
        # run still terminates by exhaustion, not the iteration budget.
        assert result.iterations < 24

    def test_offloaded_nodes_signal(self, chain_dag):
        from repro.core.solver.hbss import SolveResult
        from repro.metrics.montecarlo import WorkflowEstimate

        est = WorkflowEstimate(1, 1, 1, 1, 1, 1, 1, 0, 10)
        res = SolveResult(
            hour=0,
            best_plan=DeploymentPlan(
                {"a": "us-east-1", "b": "us-east-1", "c": "ca-central-1"}
            ),
            best_estimate=est, iterations=1, accepted=1, plans_evaluated=1,
        )
        assert res.offloaded_nodes == ("c",)
        with pytest.deprecated_call():
            assert res.feasible_found == 1


class TestCoarseSolver:
    def test_picks_cleanest_region(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan, _est = CoarseSolver(ev).solve_hour(0)
        assert plan.regions_used == ("ca-central-1",)

    def test_candidate_regions_respect_all_functions(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"})),
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"us-east-1", "ca-central-1"})
                ),
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        solver = CoarseSolver(ev)
        assert solver.candidate_regions() == ("us-east-1",)

    def test_impossible_coarse_raises(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "a": FunctionConstraints(allowed_regions=frozenset({"us-east-1"})),
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"ca-central-1"})
                ),
            },
        )
        ev = make_evaluator(chain_dag, config=config)
        with pytest.raises(SolverError):
            CoarseSolver(ev).solve_hour(0)

    def test_falls_back_home_when_all_violate(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1", tolerances=Tolerances(latency=0.0)
        )
        ev = make_evaluator(chain_dag, config=config,
                            data=FixtureData(exec_seconds=0.05))
        plan, _ = CoarseSolver(ev).solve_hour(0)
        # Every non-home region may violate a 0 % tolerance (region speed
        # spread); home must always be reachable.
        assert plan.covers(chain_dag)

    def test_solve_day(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan_set = CoarseSolver(ev).solve_day(hours=[0, 12])
        assert plan_set.hours == (0, 12)


class TestExhaustiveSolver:
    def test_matches_or_beats_hbss(self, chain_dag):
        ev = make_evaluator(chain_dag)
        exhaustive_plan, exhaustive_est = ExhaustiveSolver(ev).solve_hour(0)
        solver = HBSSSolver(ev, np.random.default_rng(6))
        hbss_result = solver.solve_hour(0)
        assert exhaustive_est.mean_carbon_g <= ev.estimate(
            hbss_result.best_plan, 0
        ).mean_carbon_g * 1.001

    def test_refuses_large_spaces(self, chain_dag):
        ev = make_evaluator(chain_dag)
        with pytest.raises(SolverError, match="exceeding"):
            ExhaustiveSolver(ev, max_plans=3).solve_hour(0)


class TestSolverSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            SolverSettings(batch_size=0)
        with pytest.raises(ValueError):
            SolverSettings(beta=1.5)
        with pytest.raises(ValueError):
            SolverSettings(alpha_per_node_region=0)

    def test_monte_carlo_knob_validation(self):
        with pytest.raises(ValueError, match="cov_threshold"):
            SolverSettings(cov_threshold=0.0)
        with pytest.raises(ValueError, match="cov_threshold"):
            SolverSettings(cov_threshold=-0.1)

    def test_hbss_knob_validation(self):
        with pytest.raises(ValueError, match="gamma "):
            SolverSettings(gamma=-0.5)
        with pytest.raises(ValueError, match="gamma_decay"):
            SolverSettings(gamma_decay=0.0)
        with pytest.raises(ValueError, match="gamma_decay"):
            SolverSettings(gamma_decay=1.01)
        SolverSettings(gamma=0.0, gamma_decay=1.0)  # boundary values OK


class TestSolverStats:
    def test_profile_and_estimate_counters(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plan = ev.home_plan()
        ev.estimate(plan, 0)
        assert ev.stats.profiles_built == 1
        assert ev.stats.simulations_run == 1
        assert ev.stats.samples_drawn > 0
        assert ev.stats.estimates_computed == 1
        ev.estimate(plan, 0)  # estimate cache hit
        assert ev.stats.estimate_cache_hits == 1
        ev.estimate(plan, 5)  # new hour: profile cache hit, new estimate
        assert ev.stats.profile_cache_hits >= 1
        assert ev.stats.estimates_computed == 2
        assert ev.stats.simulations_run == 1  # no re-simulation

    def test_hbss_accumulates_wall_time(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(1))
        solver.solve_hour(0)
        assert ev.stats.wall_time_s > 0.0

    def test_shared_stats_object(self, chain_dag):
        stats = SolverStats()
        ev = PlanEvaluator(
            dag=chain_dag,
            config=WorkflowConfig(home_region="us-east-1"),
            data=FixtureData(),
            regions=REGIONS,
            intensity_fn=intensity_fn,
            carbon_model=CarbonModel(TransmissionScenario.best_case()),
            cost_model=CostModel(PricingSource()),
            latency_model=TransferLatencyModel(LatencySource()),
            rng=np.random.default_rng(0),
            settings=SolverSettings(batch_size=40, max_samples=120,
                                    cov_threshold=0.1),
            stats=stats,
        )
        ev.estimate(ev.home_plan(), 0)
        assert stats is ev.stats
        assert stats.simulations_run == 1
        assert "simulations" in stats.summary()


_COUNTER_FIELDS = (
    "simulations_run", "samples_drawn", "profiles_built",
    "profile_cache_hits", "estimates_computed", "estimate_cache_hits",
)


def _counters(stats):
    """Scheduling-invariant counter totals (wall time excluded)."""
    return {name: getattr(stats, name) for name in _COUNTER_FIELDS}


class TestParallelSolveDay:
    """The tentpole contract: any worker count, identical plan set."""

    def _hbss(self, dag, seed=5, **settings_kw):
        settings = SolverSettings(batch_size=40, max_samples=120,
                                  cov_threshold=0.1, **settings_kw)
        ev = make_evaluator(dag, settings=settings, seed=seed)
        return ev, HBSSSolver(ev, np.random.default_rng(seed))

    def test_hbss_parallel_identical_to_serial(self, chain_dag):
        hours = list(range(6))
        _, serial = self._hbss(chain_dag)
        _, threaded = self._hbss(chain_dag)
        ps_serial, res_serial = serial.solve_day(hours, jobs=1)
        ps_par, res_par = threaded.solve_day(hours, jobs=3)
        assert ps_par.to_dict() == ps_serial.to_dict()
        for a, b in zip(res_serial, res_par):
            assert (a.hour, a.iterations, a.accepted, a.plans_evaluated) == (
                b.hour, b.iterations, b.accepted, b.plans_evaluated
            )
            assert a.best_plan == b.best_plan
            assert a.best_estimate.mean_carbon_g == b.best_estimate.mean_carbon_g

    def test_hbss_parallel_stats_match_serial(self, chain_dag):
        hours = list(range(4))
        ev_serial, serial = self._hbss(chain_dag)
        ev_par, threaded = self._hbss(chain_dag)
        serial.solve_day(hours, jobs=1)
        threaded.solve_day(hours, jobs=4)
        assert _counters(ev_par.stats) == _counters(ev_serial.stats)

    def test_parallel_hours_setting_is_the_default(self, chain_dag):
        # jobs=None defers to SolverSettings.parallel_hours.
        hours = [0, 1, 2]
        _, serial = self._hbss(chain_dag)
        _, threaded = self._hbss(chain_dag, parallel_hours=3)
        ps_serial, _ = serial.solve_day(hours)
        ps_par, _ = threaded.solve_day(hours)
        assert ps_par.to_dict() == ps_serial.to_dict()

    def test_coarse_parallel_identical(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = CoarseSolver(ev)
        ps_serial = solver.solve_day(jobs=1)
        ps_par = solver.solve_day(jobs=4)
        assert ps_par.to_dict() == ps_serial.to_dict()

    def test_exhaustive_parallel_identical(self):
        ev = make_evaluator(tiny_dag())
        solver = ExhaustiveSolver(ev)
        ps_serial = solver.solve_day(hours=[0, 6, 12], jobs=1)
        ps_par = solver.solve_day(hours=[0, 6, 12], jobs=3)
        assert ps_par.to_dict() == ps_serial.to_dict()

    def test_resolve_jobs(self):
        import os as _os

        from repro.core.solver import resolve_jobs

        assert resolve_jobs(None, 1, 24) == 1
        assert resolve_jobs(None, 4, 24) == 4
        assert resolve_jobs(8, 1, 3) == 3      # clamped to task count
        assert resolve_jobs(-2, 1, 24) == 1    # floor of one worker
        cpus = _os.cpu_count() or 1
        assert resolve_jobs(0, 1, 24) == max(1, min(cpus, 24))

    def test_parallel_hours_validation(self):
        with pytest.raises(ValueError):
            SolverSettings(parallel_hours=-1)


class TestWarmStart:
    def test_warm_start_never_worse_than_seed_plan(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(2))
        warm = DeploymentPlan.single_region(chain_dag, "ca-central-1")
        result = solver.solve_hour(0, warm_start_plan=warm)
        assert result.best_estimate.metric(ev.config.priority) <= ev.metric(
            warm, 0
        )

    def test_non_compliant_warm_start_ignored(self, chain_dag):
        config = WorkflowConfig(
            home_region="us-east-1",
            function_constraints={
                "b": FunctionConstraints(
                    allowed_regions=frozenset({"us-east-1", "us-west-2"})
                )
            },
        )
        ev_plain = make_evaluator(chain_dag, config=config)
        ev_warm = make_evaluator(chain_dag, config=config)
        warm = DeploymentPlan.single_region(chain_dag, "ca-central-1")
        assert not ev_warm.is_plan_compliant(warm)
        plain = HBSSSolver(ev_plain, np.random.default_rng(3)).solve_hour(0)
        warmed = HBSSSolver(ev_warm, np.random.default_rng(3)).solve_hour(
            0, warm_start_plan=warm
        )
        # The non-compliant seed is discarded entirely: identical run.
        assert warmed.best_plan == plain.best_plan
        assert warmed.plans_evaluated == plain.plans_evaluated
        assert ev_warm.is_plan_compliant(warmed.best_plan)

    def test_solve_day_accepts_warm_start_set(self, chain_dag):
        from repro.model.plan import HourlyPlanSet

        ev = make_evaluator(chain_dag)
        solver = HBSSSolver(ev, np.random.default_rng(4))
        warm = HourlyPlanSet.daily(
            DeploymentPlan.single_region(chain_dag, "ca-central-1")
        )
        plan_set, results = solver.solve_day([0, 1], warm_start=warm)
        assert set(plan_set.hours) == {0, 1}
        for result in results:
            assert result.best_estimate.metric(
                ev.config.priority
            ) <= ev.metric(warm.plan_for_hour(result.hour), result.hour)


class TestEvaluationCache:
    def _evaluator_with(self, dag, cache, seed=0):
        return PlanEvaluator(
            dag=dag,
            config=WorkflowConfig(home_region="us-east-1"),
            data=FixtureData(),
            regions=REGIONS,
            intensity_fn=intensity_fn,
            carbon_model=CarbonModel(TransmissionScenario.best_case()),
            cost_model=CostModel(PricingSource()),
            latency_model=TransferLatencyModel(LatencySource()),
            rng=np.random.default_rng(seed),
            settings=SolverSettings(batch_size=40, max_samples=120,
                                    cov_threshold=0.1),
            cache=cache,
        )

    def test_cache_survives_evaluator_reconstruction(self, chain_dag):
        from repro.core.solver import EvaluationCache

        cache = EvaluationCache()
        cache.sync(metrics_version=1, forecast_version=None)
        ev1 = self._evaluator_with(chain_dag, cache)
        ev1.estimate(ev1.home_plan(), 0)
        assert ev1.stats.profiles_built == 1
        assert cache.profiles_cached == 1
        # A fresh evaluator over the same cache re-uses the profile.
        ev2 = self._evaluator_with(chain_dag, cache, seed=9)
        ev2.estimate(ev2.home_plan(), 0)
        assert ev2.stats.profiles_built == 0
        assert ev2.stats.simulations_run == 0
        assert ev2.stats.estimate_cache_hits == 1

    def test_sync_invalidates_on_version_change(self, chain_dag):
        from repro.core.solver import EvaluationCache

        cache = EvaluationCache()
        assert cache.sync(1, None) is False  # empty: nothing dropped
        ev = self._evaluator_with(chain_dag, cache)
        ev.estimate(ev.home_plan(), 0)
        assert cache.sync(1, None) is False  # unchanged version
        assert cache.profiles_cached == 1
        assert cache.sync(2, None) is True   # new metrics: drop all
        assert cache.profiles_cached == 0
        assert cache.estimates_cached == 0
        assert cache.invalidations == 1

    def test_plan_digest_keyed(self, chain_dag):
        plan_a = DeploymentPlan.single_region(chain_dag, "us-east-1")
        plan_b = DeploymentPlan.single_region(chain_dag, "us-east-1")
        plan_c = DeploymentPlan.single_region(chain_dag, "ca-central-1")
        assert plan_a.digest() == plan_b.digest()
        assert plan_a.digest() != plan_c.digest()


class TestCoarseCandidateCaching:
    def test_candidate_regions_memoized(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = CoarseSolver(ev)
        first = solver.candidate_regions()
        assert solver.candidate_regions() is first
