"""Tests for the experiment harness (§9.1 methodology)."""

import math

import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.core.solver import SolverSettings
from repro.experiments.harness import (
    FIG7_FINE_REGION_SETS,
    deploy_benchmark,
    geometric_mean,
    run_caribou,
    run_coarse,
    solve_plan_set,
    warm_up,
    weekly_hour_profile,
)
from repro.metrics.carbon import TransmissionScenario

FAST = SolverSettings(batch_size=30, max_samples=60, cov_threshold=0.2,
                      alpha_per_node_region=2)


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_weekly_hour_profile_shape(self):
        cloud = SimulatedCloud(seed=1)
        profile = weekly_hour_profile(cloud, "us-west-1")
        assert profile.shape == (24,)
        trace = cloud.carbon_source.trace("us-west-1")
        assert profile.mean() == pytest.approx(trace[: 7 * 24].mean())

    def test_region_sets_include_paper_combinations(self):
        assert "us-east-1+ca-central-1" in FIG7_FINE_REGION_SETS
        assert FIG7_FINE_REGION_SETS["all"] == (
            "us-east-1", "us-west-1", "us-west-2", "ca-central-1",
        )

    def test_warm_up_runs_home(self):
        cloud = SimulatedCloud(seed=2)
        app = get_app("dna_visualization")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rids = warm_up(executor, app, "small", n=4)
        assert len(rids) == 4
        regions = {e.region for e in cloud.ledger.executions}
        assert regions == {"us-east-1"}


class TestRunCoarse:
    def test_outcome_fields(self):
        app = get_app("dna_visualization")
        out = run_coarse(app, "small", "us-east-1", seed=3, n_invocations=6,
                         days=1)
        assert out.n_invocations == 6
        assert out.mean_service_time_s > 0
        assert out.p95_service_time_s >= out.mean_service_time_s
        assert set(out.per_scenario) == {"best-case", "worst-case"}
        assert out.regions_used == ("us-east-1",)

    def test_remote_coarse_runs_in_target_region(self):
        app = get_app("dna_visualization")
        out = run_coarse(app, "small", "ca-central-1", seed=3,
                         n_invocations=6, days=1)
        assert out.regions_used == ("ca-central-1",)

    def test_clean_region_cuts_exec_carbon(self):
        app = get_app("dna_visualization")
        home = run_coarse(app, "small", "us-east-1", seed=4,
                          n_invocations=8, days=1)
        remote = run_coarse(app, "small", "ca-central-1", seed=4,
                            n_invocations=8, days=1)
        assert (
            remote.per_scenario["best-case"].mean_exec_carbon_g
            < 0.2 * home.per_scenario["best-case"].mean_exec_carbon_g
        )

    def test_compliance_bypassed_for_manual_deployment(self):
        # §9.2 I1: coarse deployment is manual and ignores constraints.
        app = get_app("text2speech_censoring")
        out = run_coarse(app, "small", "ca-central-1", seed=5,
                         n_invocations=4, days=1)
        assert out.regions_used == ("ca-central-1",)


class TestRunCaribou:
    def test_caribou_beats_home_for_compute_heavy(self):
        app = get_app("video_analytics")
        home = run_coarse(app, "small", "us-east-1", seed=6,
                          n_invocations=8, days=2)
        fine = run_caribou(app, "small", ("us-east-1", "ca-central-1"),
                           seed=6, n_invocations=8, warmup=6, days=2,
                           solver_settings=FAST)
        assert fine.carbon("best-case") < home.carbon("best-case")

    def test_region_set_must_include_home(self):
        app = get_app("dna_visualization")
        with pytest.raises(ValueError, match="home region"):
            run_caribou(app, "small", ("ca-central-1",), seed=1)

    def test_compliance_respected_by_solver(self):
        app = get_app("text2speech_censoring")
        out = run_caribou(app, "small", ("us-east-1", "ca-central-1"),
                          seed=7, n_invocations=6, warmup=6, days=1,
                          solver_settings=FAST)
        # The upload stage may never land in Canada.
        for plan in out.plan_set.distinct_plans():
            assert plan.region_of("upload") == "us-east-1"

    def test_exec_to_trans_ratio_finite_with_transfers(self):
        app = get_app("image_processing")
        out = run_caribou(app, "large", ("us-east-1", "ca-central-1"),
                          seed=8, n_invocations=5, warmup=5, days=1,
                          solver_settings=FAST)
        ratio = out.per_scenario["best-case"].exec_to_trans_ratio
        assert math.isfinite(ratio) and ratio > 0


class TestBackendEquivalence:
    """Full harness runs are invariant to the solver backend — with and
    without chaos faults in play."""

    def _outcome_key(self, out):
        return (
            out.plan_set.to_dict(),
            out.mean_service_time_s,
            {name: stats.mean_carbon_g
             for name, stats in out.per_scenario.items()},
            out.regions_used,
        )

    @pytest.mark.parametrize("chaos", [False, True])
    def test_process_backend_matches_serial_run(self, chaos):
        from repro.cloud.faults import FaultPlan
        from repro.core.solver.parallel import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        app = get_app("dna_visualization")
        fault_plan = (
            FaultPlan().with_invocation_failures(0.1) if chaos else None
        )
        runs = {}
        for backend in (None, "process"):
            out = run_caribou(
                app, "small", ("us-east-1", "ca-central-1"), seed=11,
                n_invocations=6, warmup=5, days=1, solver_settings=FAST,
                fault_plan=fault_plan,
                jobs=2 if backend else None, backend=backend,
            )
            runs[backend] = self._outcome_key(out)
        assert runs["process"] == runs[None]


class TestSolvePlanSet:
    def test_plan_set_covers_24_hours(self):
        cloud = SimulatedCloud(seed=9)
        app = get_app("rag_ingestion")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        warm_up(executor, app, "small", n=5)
        plan_set = solve_plan_set(
            deployed, executor, TransmissionScenario.best_case(),
            solver_settings=FAST,
        )
        assert plan_set.hours == tuple(range(24))
        for h in range(24):
            assert plan_set.plan_for_hour(h).covers(deployed.dag)
