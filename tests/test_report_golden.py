"""Golden-report regression tests (mirror of ``test_trace_golden.py``).

A fixed-seed quickstart run must reproduce its committed
:class:`~repro.obs.report.RunReport` JSON *byte for byte* — the report
merges the harness means, per-region ledger pricing, metrics snapshot,
reliability counters, solver counters, and critical-path aggregates, so
this single file pins the whole observable surface of a run.  Any
intentional change shows up as a reviewable diff; regenerate with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_report_golden.py
"""

import json
import os
import pathlib

from repro.apps import get_app
from repro.experiments.harness import run_caribou
from repro.obs.report import REPORT_KEYS, REPORT_SCHEMA, RunReport, build_run_report
from repro.obs.trace import Tracer

GOLDEN = pathlib.Path(__file__).parent / "golden" / "quickstart_report.json"
SEED = 1234
REGIONS = ("us-east-1", "ca-central-1")


def quickstart_report() -> RunReport:
    """The reference scenario: a seeded two-invocation Caribou run of
    the sync-node benchmark over two regions, traced so the report's
    critical-path section is populated."""
    tracer = Tracer()
    outcome = run_caribou(
        get_app("text2speech_censoring"),
        "small",
        REGIONS,
        seed=SEED,
        n_invocations=2,
        tracer=tracer,
    )
    return build_run_report(outcome, trace=tracer)


class TestGoldenReport:
    def test_report_matches_snapshot(self):
        produced = quickstart_report().to_json()
        if os.environ.get("UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(produced, encoding="utf-8")
        assert GOLDEN.exists(), (
            "golden report missing; regenerate with UPDATE_GOLDEN=1"
        )
        expected = GOLDEN.read_text(encoding="utf-8")
        assert produced == expected, (
            "run report drifted from the golden snapshot; if intentional, "
            "regenerate with UPDATE_GOLDEN=1 and review the diff"
        )

    def test_two_builds_byte_identical(self):
        assert quickstart_report().to_json() == quickstart_report().to_json()

    def test_snapshot_is_valid_report(self):
        report = RunReport.from_json(GOLDEN.read_text(encoding="utf-8"))
        doc = report.doc
        assert doc["schema"] == REPORT_SCHEMA
        assert tuple(sorted(doc)) == REPORT_KEYS
        assert doc["run"]["app"] == "text2speech_censoring"
        assert doc["run"]["n_invocations"] == 2
        assert doc["critical_path"]["n_requests"] >= 2
        # Critical-path shares are a partition of end-to-end latency.
        shares = sum(
            entry["share"] for entry in doc["critical_path"]["by_kind"].values()
        )
        assert abs(shares - 1.0) < 1e-9

    def test_snapshot_has_no_wall_clock_values(self):
        """Host-dependent values must never enter the golden document."""
        text = GOLDEN.read_text(encoding="utf-8")
        assert "wall_time" not in text
        doc = json.loads(text)
        assert "wall_time_s" not in (doc.get("solver") or {})

    def test_snapshot_renders_as_markdown(self):
        report = RunReport.from_json(GOLDEN.read_text(encoding="utf-8"))
        md = report.to_markdown()
        assert md.startswith("# Run report")
        for heading in ("## Carbon & cost", "## Critical path", "## Solver"):
            assert heading in md
