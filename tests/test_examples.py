"""The example scripts must stay runnable — they are documentation."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "deploying to the home region" in out
        assert "carbon per invocation" in out
        assert "saved" in out  # it demonstrates an actual saving

    def test_carbon_explorer(self, capsys):
        out = run_example("carbon_explorer.py", capsys)
        assert "weekly average carbon intensity" in out
        assert "ca-central-1" in out
        assert "shifting opportunity" in out

    @pytest.mark.slow
    def test_compliance_constrained_shifting(self, capsys):
        out = run_example("compliance_constrained_shifting.py", capsys)
        assert "(pinned)" in out
        assert "never leaves the US" in out

    def test_all_examples_importable(self):
        # Syntax/import health even for the ones too slow to execute here.
        import ast

        for path in sorted(EXAMPLES.glob("*.py")):
            ast.parse(path.read_text())
