"""Critical-path analysis properties (ISSUE 4 acceptance criteria).

For a traced Text2Speech run — fault-free and under a chaos plan with a
region outage, a network partition, invocation failures, and KV
slowdown — every request's critical-path segments must tile its
end-to-end interval exactly (attributions sum to the virtual latency
within 1e-9), and every sync barrier's reported gating branch must
match the executor's actual join order, re-derived independently by
replaying the recorded annotation arrivals through the pure Eq. 4.1
helpers (``propagate_dead`` / ``sync_condition_met``).
"""

import math

import pytest

from repro.apps import get_app
from repro.cloud.faults import FaultPlan
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.core.executor import (
    annotation_class_edges,
    propagate_dead,
    sync_condition_met,
)
from repro.experiments.harness import deploy_benchmark
from repro.model.plan import DeploymentPlan, HourlyPlanSet
from repro.obs.critical_path import (
    WAIT,
    WORK_KINDS,
    analyze_trace,
    compute_critical_path,
    render_critical_path,
)
from repro.obs.trace import Tracer

SEED = 11
N_REQUESTS = 8


def _chaos_plan() -> FaultPlan:
    return (
        FaultPlan()
        .with_invocation_failures(0.08)
        .with_region_outage(
            "us-west-2", start_s=0.1 * SECONDS_PER_DAY, end_s=0.6 * SECONDS_PER_DAY
        )
        .with_network_partition(
            ("us-east-1",),
            ("ca-central-1",),
            start_s=0.2 * SECONDS_PER_DAY,
            end_s=0.4 * SECONDS_PER_DAY,
        )
        .with_kv_latency(3.0, start_s=0.0, end_s=0.5 * SECONDS_PER_DAY)
    )


def _traced_text2speech(fault_plan):
    """Deploy Text2Speech across two regions, route half the requests
    through a cross-region plan, and keep the executor for join-order
    verification (the harness entry points discard it)."""
    tracer = Tracer()
    cloud = SimulatedCloud(seed=SEED, tracer=tracer, fault_plan=fault_plan)
    app = get_app("text2speech_censoring")
    deployed, executor, utility = deploy_benchmark(app, cloud)
    for spec in deployed.workflow.functions:
        utility.deploy_function(
            deployed, executor, spec, "us-west-2",
            copy_image_from=deployed.config.home_region,
        )
    assignments = dict(
        DeploymentPlan.single_region(deployed.dag, "us-east-1").assignments
    )
    # Put the straggler-feeding branch in another region so join order
    # is exercised across regions, not just at home.
    assignments["text2speech"] = "us-west-2"
    assignments["conversion"] = "us-west-2"
    executor.stage_plan_set(HourlyPlanSet.daily(DeploymentPlan(assignments)))
    rids = []
    step = 0.7 * SECONDS_PER_DAY / N_REQUESTS
    for i in range(N_REQUESTS):
        payload = app.make_input("small")
        cloud.env.schedule(
            i * step, lambda p=payload: rids.append(executor.invoke(p))
        )
    cloud.run_until_idle()
    tracer.finalize()
    return tracer, executor, rids


@pytest.fixture(scope="module", params=["fault_free", "chaos"])
def traced_run(request):
    plan = _chaos_plan() if request.param == "chaos" else None
    return _traced_text2speech(plan)


def _replay_gates(dag, arrivals):
    """Independent re-derivation of each sync node's gating edge from
    the executor's recorded annotation order, using the same pure
    fixed-point helpers the runtime's atomic update applies."""
    annotated = annotation_class_edges(dag)
    topo = dag.topological_order()
    ann = {}
    gates = {}
    for edge, value, _t in arrivals:
        ann[edge] = value
        propagate_dead(dag, annotated, ann, topo)
        for s in dag.sync_nodes:
            if s in gates:
                continue
            if sync_condition_met(dag, ann, s):
                gates[s] = edge
    return gates


class TestCriticalPathProperties:
    def test_segments_tile_request_interval(self, traced_run):
        tracer, _executor, _rids = traced_run
        analysis = analyze_trace(tracer)
        assert analysis.n_requests > 0
        for path in analysis.requests:
            total = math.fsum(seg.duration_s for seg in path.segments)
            assert total == pytest.approx(path.latency_s, abs=1e-9)
            # Tiling: contiguous, ordered, inside the request window.
            cursor = path.t0
            for seg in path.segments:
                assert seg.t0 == pytest.approx(cursor, abs=1e-12)
                assert seg.t1 >= seg.t0
                cursor = seg.t1
            if path.segments:
                assert cursor == pytest.approx(path.t1, abs=1e-12)

    def test_segment_kinds_are_known(self, traced_run):
        tracer, _executor, _rids = traced_run
        for path in analyze_trace(tracer).requests:
            for seg in path.segments:
                assert seg.kind in WORK_KINDS + (WAIT,)

    def test_shares_sum_to_one_for_finished_requests(self, traced_run):
        tracer, _executor, _rids = traced_run
        for path in analyze_trace(tracer).requests:
            if path.latency_s <= 0:
                continue
            assert math.fsum(path.shares().values()) == pytest.approx(
                1.0, abs=1e-9
            )

    def test_sync_gates_match_executor_join_order(self, traced_run):
        tracer, executor, rids = traced_run
        dag = executor.deployed.dag
        checked = 0
        for rid in rids:
            arrivals = executor.join_order(rid)
            expected = _replay_gates(dag, arrivals)
            path = compute_critical_path(tracer, rid)
            reported = {g.sync_node: g.gate_edge for g in path.sync_gates}
            assert reported == expected
            checked += len(reported)
        # The workload must actually exercise the join protocol.
        assert checked > 0

    def test_gate_arrivals_are_ordered_and_bounded(self, traced_run):
        tracer, _executor, _rids = traced_run
        for path in analyze_trace(tracer).requests:
            for gate in path.sync_gates:
                for edge, t in gate.arrivals.items():
                    assert "->" in edge
                    assert t <= gate.t + 1e-9
                assert gate.straggle_s >= 0.0
                if gate.gate_edge in gate.arrivals:
                    assert gate.arrivals[gate.gate_edge] == pytest.approx(
                        max(gate.arrivals.values())
                    )

    def test_completed_requests_end_with_terminal_invocation(self, traced_run):
        tracer, executor, rids = traced_run
        dag = executor.deployed.dag
        terminal = {n for n in dag.node_names if not dag.out_edges(n)}
        for rid in rids:
            if executor.request_status(rid) != "completed":
                continue
            path = compute_critical_path(tracer, rid)
            last_work = [s for s in path.segments if s.kind == "invocation"]
            assert last_work, f"completed request {rid} has no invocation"
            assert last_work[-1].node in terminal


class TestAnalysisDeterminism:
    def test_same_trace_same_analysis(self, traced_run):
        tracer, _executor, _rids = traced_run
        a = analyze_trace(tracer).aggregate()
        b = analyze_trace(list(tracer.spans)).aggregate()
        assert a == b

    def test_jsonl_round_trip_preserves_analysis(self, traced_run):
        from repro.obs.render import load_jsonl

        tracer, _executor, _rids = traced_run
        reloaded = load_jsonl(tracer.to_jsonl())
        assert analyze_trace(reloaded).aggregate() == analyze_trace(
            tracer
        ).aggregate()

    def test_render_is_stable(self, traced_run):
        tracer, _executor, rids = traced_run
        path = compute_critical_path(tracer, rids[0])
        assert render_critical_path(path) == render_critical_path(path)
        assert path.request_id in render_critical_path(path)


class TestEdgeCases:
    def test_unknown_request_raises(self, traced_run):
        tracer, _executor, _rids = traced_run
        with pytest.raises(KeyError):
            compute_critical_path(tracer, "no-such-request")

    def test_empty_trace_analyzes_to_nothing(self):
        analysis = analyze_trace([])
        assert analysis.n_requests == 0
        agg = analysis.aggregate()
        assert agg["n_requests"] == 0
        assert agg["by_kind"] == {}
