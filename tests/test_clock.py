"""Tests for the virtual clock."""

import datetime

import pytest

from repro.common.clock import (
    DEFAULT_EPOCH,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    VirtualClock,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=100.0).now() == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_advance_zero_is_noop(self):
        clock = VirtualClock(start=3.0)
        clock.advance(0.0)
        assert clock.now() == 3.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_datetime_maps_epoch(self):
        clock = VirtualClock()
        assert clock.datetime() == DEFAULT_EPOCH
        clock.advance(SECONDS_PER_DAY)
        assert clock.datetime() == DEFAULT_EPOCH + datetime.timedelta(days=1)

    def test_default_epoch_is_evaluation_window_start(self):
        # §9.1: carbon data from 2023-10-15.
        assert DEFAULT_EPOCH.year == 2023
        assert DEFAULT_EPOCH.month == 10
        assert DEFAULT_EPOCH.day == 15

    def test_hour_of_day(self):
        clock = VirtualClock()
        assert clock.hour_of_day() == 0
        clock.advance(13.5 * SECONDS_PER_HOUR)
        assert clock.hour_of_day() == 13

    def test_hour_index_monotonic(self):
        clock = VirtualClock()
        clock.advance(25 * SECONDS_PER_HOUR)
        assert clock.hour_index() == 25

    def test_day_index(self):
        clock = VirtualClock()
        clock.advance(3.7 * SECONDS_PER_DAY)
        assert clock.day_index() == 3

    def test_observers_called_on_advance(self):
        clock = VirtualClock()
        seen = []
        clock.subscribe(seen.append)
        clock.advance(1.0)
        clock.advance(2.0)
        assert seen == [1.0, 3.0]

    def test_unsubscribe_stops_notifications(self):
        clock = VirtualClock()
        seen = []
        clock.subscribe(seen.append)
        clock.unsubscribe(seen.append)
        clock.advance(1.0)
        assert seen == []
