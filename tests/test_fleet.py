"""Tests for fleet-level management of multiple workflows."""

import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.deployer import DeploymentUtility
from repro.core.fleet import FleetManager
from repro.core.solver import SolverSettings
from repro.core.trigger import TriggerSettings
from repro.metrics.carbon import TransmissionScenario

FAST = SolverSettings(batch_size=30, max_samples=60, cov_threshold=0.2,
                      alpha_per_node_region=2)


@pytest.fixture
def fleet():
    cloud = SimulatedCloud(seed=90)
    utility = DeploymentUtility(cloud)
    manager = FleetManager(
        cloud, utility, TransmissionScenario.best_case(),
        solver_settings=FAST,
        trigger_settings=TriggerSettings(
            min_check_period_s=2 * SECONDS_PER_HOUR,
            max_check_period_s=12 * SECONDS_PER_HOUR,
        ),
        use_forecast=False,
    )
    entries = {}
    for app_name in ("dna_visualization", "rag_ingestion"):
        app = get_app(app_name)
        deployed, executor = utility.deploy(
            app.build_workflow(),
            # fresh config per workflow
            __import__("repro.apps.base", fromlist=["default_config"])
            .default_config(benchmarking_fraction=0.0),
        )
        manager.register(deployed, executor)
        entries[app_name] = (app, deployed, executor)
    return cloud, manager, entries


class TestRegistry:
    def test_workflows_listed(self, fleet):
        _cloud, manager, _entries = fleet
        assert set(manager.workflows) == {"dna_visualization", "rag_ingestion"}

    def test_duplicate_registration_rejected(self, fleet):
        cloud, manager, entries = fleet
        _app, deployed, executor = entries["dna_visualization"]
        with pytest.raises(ValueError, match="already managed"):
            manager.register(deployed, executor)

    def test_manager_lookup(self, fleet):
        _cloud, manager, _entries = fleet
        assert manager.manager_for("rag_ingestion") is not None
        with pytest.raises(KeyError):
            manager.manager_for("ghost")

    def test_unregister(self, fleet):
        _cloud, manager, _entries = fleet
        manager.unregister("rag_ingestion")
        assert manager.workflows == ("dna_visualization",)


class TestOperation:
    def test_check_all_produces_one_report_each(self, fleet):
        cloud, manager, entries = fleet
        reports = manager.check_all()
        assert set(reports) == set(manager.workflows)
        for report in reports.values():
            assert report.next_check_delay_s > 0

    def test_independent_cadences(self, fleet):
        cloud, manager, entries = fleet
        # Only one workflow receives traffic.
        app, _deployed, executor = entries["rag_ingestion"]
        for i in range(10):
            cloud.env.schedule(
                i * 60.0, lambda: executor.invoke(app.make_input("small"),
                                                  force_home=True)
            )
        cloud.run_until_idle()
        reports = manager.check_all()
        busy = reports["rag_ingestion"]
        idle = reports["dna_visualization"]
        assert busy.invocations_in_period == 10
        assert idle.invocations_in_period == 0
        # The busy workflow is checked at least as often as the idle one.
        assert busy.next_check_delay_s <= idle.next_check_delay_s

    def test_run_for_drives_both_loops(self, fleet):
        cloud, manager, entries = fleet
        for name, (app, _d, executor) in entries.items():
            for i in range(6):
                cloud.env.schedule(
                    i * 600.0,
                    lambda a=app, e=executor: e.invoke(a.make_input("small"),
                                                       force_home=True),
                )
        manager.run_for(SECONDS_PER_DAY)
        cloud.run_until_idle()
        for name, checks, _solves, _tokens in manager.summary():
            assert checks >= 2, name

    def test_staggered_first_checks(self, fleet):
        cloud, manager, entries = fleet
        manager.run_for(4 * SECONDS_PER_HOUR, stagger_s=120.0)
        cloud.run_until_idle()
        first_times = [
            m.reports[0].time_s
            for m in (manager.manager_for(n) for n in manager.workflows)
        ]
        assert len(set(round(t, 3) for t in first_times)) == len(first_times)


def _build_fleet(n, seed=91, app_name="dna_visualization", **manager_kwargs):
    """A fleet of ``n`` uniquified copies of one app under one manager."""
    from repro.apps.base import default_config

    cloud = SimulatedCloud(seed=seed)
    utility = DeploymentUtility(cloud)
    manager = FleetManager(
        cloud, utility, TransmissionScenario.best_case(),
        solver_settings=FAST, use_forecast=False,
        use_token_bucket=False, fixed_granularity=1,
        **manager_kwargs,
    )
    app = get_app(app_name)
    executors = []
    for i in range(n):
        workflow = app.build_workflow()
        workflow.name = f"{workflow.name}-{i:03d}"
        deployed, executor = utility.deploy(
            workflow, default_config(benchmarking_fraction=0.0)
        )
        manager.register(deployed, executor)
        executors.append(executor)
    return cloud, manager, app, executors


class TestFleetScale:
    """Hundred-workflow sweeps: the stagger-wrap regression and one
    shared-cache ``check_all`` cycle across the whole fleet."""

    def test_stagger_wraps_so_every_workflow_is_checked(self):
        # Regression: a raw ``index * stagger_s`` first-check offset put
        # workflow #24 onward past the one-day horizon (24 * 1h = the
        # full day), so most of a 100-workflow fleet was never checked.
        cloud, manager, _app, _executors = _build_fleet(
            100,
            trigger_settings=TriggerSettings(
                min_check_period_s=SECONDS_PER_DAY,
                max_check_period_s=SECONDS_PER_DAY,
            ),
        )
        manager.run_for(SECONDS_PER_DAY, stagger_s=SECONDS_PER_HOUR)
        cloud.run_until_idle()
        unchecked = [
            name for name in manager.workflows
            if not manager.manager_for(name).reports
        ]
        assert unchecked == []
        first_times = [
            manager.manager_for(name).reports[0].time_s
            for name in manager.workflows
        ]
        assert max(first_times) < SECONDS_PER_DAY
        # The wrap folds offsets onto a 24-slot cycle, four workflows
        # per slot — not 100 distinct offsets, and never a pile-up of
        # the whole tail at the horizon.
        assert len(set(first_times)) == 24

    def test_shared_cache_sweep_solves_whole_fleet(self):
        n = 100
        cloud, manager, app, executors = _build_fleet(n, seed=92)
        # A manager only solves for workflows with observed traffic.
        for executor in executors:
            for _ in range(2):
                executor.invoke(app.make_input("small"), force_home=True)
            cloud.run_until_idle()
        reports = manager.check_all()
        assert len(reports) == n
        assert all(r.solved for r in reports.values())
        fleet = manager.fleet_report()
        assert fleet["workflows"] == n
        assert fleet["checks"] == n
        assert fleet["solves"] == n
        assert fleet["invocations_observed"] == 2 * n
        # One evaluation-cache scope per workflow, all behind the single
        # shared accounting surface.
        assert manager.evaluation_cache.scopes == n
        assert fleet["cache_scopes"] == n
        assert fleet["cache_estimates"] > 0
        # Unregistering drops exactly that workflow's scope.
        victim = manager.workflows[0]
        manager.unregister(victim)
        assert manager.evaluation_cache.scopes == n - 1


class TestPerWorkflowReport:
    def test_fleet_report_breaks_down_per_workflow(self, fleet):
        cloud, manager, entries = fleet
        app, _deployed, executor = entries["rag_ingestion"]
        for _ in range(3):
            executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        manager.check_all()
        report = manager.fleet_report()
        per_wf = report["per_workflow"]
        assert set(per_wf) == {"dna_visualization", "rag_ingestion"}
        busy = per_wf["rag_ingestion"]
        idle = per_wf["dna_visualization"]
        assert busy["invocations_observed"] == 3
        assert idle["invocations_observed"] == 0
        assert busy["checks"] == idle["checks"] == 1
        for entry in per_wf.values():
            assert set(entry) == {
                "checks", "invocations_observed", "migrations", "solves",
                "tokens_g",
            }

    def test_per_workflow_sums_match_totals(self, fleet):
        cloud, manager, entries = fleet
        for name, (app, _d, executor) in entries.items():
            executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        manager.check_all()
        manager.check_all()
        report = manager.fleet_report()
        per_wf = report["per_workflow"]
        for key in ("checks", "invocations_observed", "migrations", "solves"):
            assert sum(e[key] for e in per_wf.values()) == report[key], key

    def test_per_workflow_iteration_order_is_sorted(self, fleet):
        _cloud, manager, _entries = fleet
        names = list(manager.fleet_report()["per_workflow"])
        assert names == sorted(names)


class TestUnregisterLifecycle:
    """Unregistering must actually stop the control loop.

    Regression: ``run_for`` used to discard its pending event handle,
    so ``unregister`` dropped the cache scope while the self-scheduled
    check chain kept firing against the orphaned manager forever.
    """

    def test_unregister_unknown_workflow_raises(self, fleet):
        _cloud, manager, _entries = fleet
        with pytest.raises(KeyError, match="ghost"):
            manager.unregister("ghost")

    def test_unregister_mid_run_stops_check_chain(self):
        cloud, manager, _app, _executors = _build_fleet(
            2,
            trigger_settings=TriggerSettings(
                min_check_period_s=2 * SECONDS_PER_HOUR,
                max_check_period_s=2 * SECONDS_PER_HOUR,
            ),
        )
        victim, survivor = manager.workflows
        manager.run_for(SECONDS_PER_DAY, stagger_s=60.0)
        cloud.env.run(until=5 * SECONDS_PER_HOUR)

        victim_manager = manager.manager_for(victim)
        checks_before = len(victim_manager.reports)
        assert checks_before >= 2  # the chain was live before unregistering
        scopes_before = manager.evaluation_cache.scopes

        manager.unregister(victim)
        assert manager.evaluation_cache.scopes == scopes_before - 1

        cloud.run_until_idle()
        # No check fired for the victim after unregistration...
        assert len(victim_manager.reports) == checks_before
        # ...no scope reappeared for it...
        assert manager.evaluation_cache.scopes == scopes_before - 1
        # ...while the survivor's chain ran on to the horizon.
        assert len(manager.manager_for(survivor).reports) > checks_before

    def test_stop_is_idempotent_and_reports_whether_armed(self, fleet):
        cloud, manager, _entries = fleet
        dm = manager.manager_for("rag_ingestion")
        assert dm.stop() is False  # nothing scheduled yet
        dm.run_for(SECONDS_PER_DAY)
        assert dm.stop() is True
        assert dm.stop() is False  # already cancelled
        cloud.run_until_idle()
        assert dm.reports == []
