"""Tests for cross-plan batched evaluation and the process solver backend.

The contracts under test:

* ``MonteCarloEstimator.estimate_profiles`` is *bit-identical* to the
  per-plan ``estimate_profile`` loop (and to the ``vectorized=False``
  scalar reference) — same doubles, same key order, same sample counts —
  even when plans converge at different sample counts.
* Every solver produces the same plan set with batched evaluation on or
  off, and with thread, process, or serial hour fan-out.
* The PR 6 bugfix regressions: estimator knob guards, the
  lexicographic ``offloaded_nodes`` modal tie-break, and the
  ``client_region`` warning.
"""

import warnings

import numpy as np
import pytest

from repro.core.solver import (
    CoarseSolver,
    ExhaustiveSolver,
    HBSSSolver,
    PlanEvaluator,
    SolverSettings,
)
from repro.core.solver.hbss import SolveResult
from repro.core.solver.parallel import fork_available, process_map
from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.montecarlo import MonteCarloEstimator
from repro.model.config import WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.model.plan import DeploymentPlan

REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")

INTENSITY = {
    "us-east-1": 400.0,
    "us-west-1": 375.0,
    "us-west-2": 392.0,
    "ca-central-1": 34.0,
}


class FixtureData:
    """Controllable workflow model data (same shape as the suite's)."""

    def __init__(self, exec_seconds=1.0, edge_bytes=1e6, cond_prob=0.5,
                 spread=(0.9, 1.0, 1.1)):
        self.exec_seconds = exec_seconds
        self.edge_bytes = edge_bytes
        self.cond_prob = cond_prob
        self.spread = spread

    def execution_time_dist(self, node, region):
        return EmpiricalDistribution(
            [self.exec_seconds * f for f in self.spread]
        )

    def edge_probability(self, src, dst):
        return self.cond_prob

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution([self.edge_bytes])

    def node_memory_mb(self, node):
        return 1769

    def node_vcpu(self, node):
        return 1.0

    def node_cpu_utilization(self, node):
        return 0.7

    def node_external_bytes(self, node):
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([1e5])


def intensity_fn(region, hour):
    return INTENSITY[region]


def make_estimator(dag, data=None, seed=0, client_region="us-east-1",
                   **kwargs):
    return MonteCarloEstimator(
        dag,
        data or FixtureData(),
        CarbonModel(TransmissionScenario.best_case()),
        CostModel(PricingSource()),
        TransferLatencyModel(LatencySource()),
        np.random.default_rng(seed),
        client_region=client_region,
        **kwargs,
    )


def make_evaluator(dag, settings=None, seed=0):
    return PlanEvaluator(
        dag=dag,
        config=WorkflowConfig(home_region="us-east-1"),
        data=FixtureData(),
        regions=REGIONS,
        intensity_fn=intensity_fn,
        carbon_model=CarbonModel(TransmissionScenario.best_case()),
        cost_model=CostModel(PricingSource()),
        latency_model=TransferLatencyModel(LatencySource()),
        rng=np.random.default_rng(seed),
        settings=settings or SolverSettings(batch_size=40, max_samples=120,
                                            cov_threshold=0.1),
    )


def tiny_dag() -> WorkflowDAG:
    """a -> b: small enough for the exhaustive solver."""
    dag = WorkflowDAG("tiny")
    for name in ("a", "b"):
        dag.add_node(Node(name=name, function=name))
    dag.add_edge(Edge("a", "b"))
    dag.validate()
    return dag


def some_plans(dag, n=6):
    """A deterministic mix of single-region and mixed plans."""
    nodes = dag.node_names
    plans = [DeploymentPlan.single_region(dag, r) for r in REGIONS[:3]]
    for k in range(n - len(plans)):
        assignments = {
            node: REGIONS[(i + k) % len(REGIONS)]
            for i, node in enumerate(nodes)
        }
        plans.append(DeploymentPlan(assignments))
    return plans[:n]


def assert_profiles_identical(a, b):
    """Bit-identity, including dict key order (iteration determinism)."""
    assert a.n_samples == b.n_samples
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.costs, b.costs)
    assert list(a.energy_by_region) == list(b.energy_by_region)
    for region in a.energy_by_region:
        np.testing.assert_array_equal(
            a.energy_by_region[region], b.energy_by_region[region]
        )
    assert list(a.bytes_by_route) == list(b.bytes_by_route)
    for route in a.bytes_by_route:
        np.testing.assert_array_equal(
            a.bytes_by_route[route], b.bytes_by_route[route]
        )


class TestEstimateProfilesBitIdentity:
    """The tentpole contract: one stacked kernel, the same doubles."""

    @pytest.mark.parametrize("dag_name", ["chain_dag", "diamond_dag"])
    def test_batched_matches_solo(self, dag_name, request):
        dag = request.getfixturevalue(dag_name)
        plans = some_plans(dag)
        batched = make_estimator(dag).estimate_profiles(plans)
        solo_est = make_estimator(dag)
        for plan, profile in zip(plans, batched):
            assert_profiles_identical(
                profile, solo_est.estimate_profile(plan)
            )

    def test_batched_matches_scalar_reference(self, diamond_dag):
        plans = some_plans(diamond_dag)
        batched = make_estimator(diamond_dag).estimate_profiles(plans)
        scalar_est = make_estimator(diamond_dag, vectorized=False)
        scalar = scalar_est.estimate_profiles(plans)
        for a, b in zip(batched, scalar):
            assert_profiles_identical(a, b)

    def test_staggered_convergence_stays_identical(self, diamond_dag):
        # A bimodal conditional makes convergence plan-dependent: plans
        # must leave the lockstep wave at different sample counts
        # without perturbing the ones still drawing.
        data = FixtureData(cond_prob=0.5, exec_seconds=5.0)
        kwargs = dict(batch_size=20, max_samples=400, cov_threshold=0.05)
        plans = some_plans(diamond_dag, n=8)
        batched = make_estimator(diamond_dag, data, **kwargs)
        profiles = batched.estimate_profiles(plans)
        counts = {p.n_samples for p in profiles}
        assert len(counts) > 1, "fixture no longer staggers convergence"
        solo = make_estimator(diamond_dag, data, **kwargs)
        for plan, profile in zip(plans, profiles):
            assert_profiles_identical(profile, solo.estimate_profile(plan))

    def test_duplicate_plans_share_one_profile(self, chain_dag):
        plan = DeploymentPlan.single_region(chain_dag, "us-west-2")
        other = DeploymentPlan.single_region(chain_dag, "us-east-1")
        profiles = make_estimator(chain_dag).estimate_profiles(
            [plan, other, DeploymentPlan(dict(plan.assignments))]
        )
        assert profiles[0] is profiles[2]
        assert profiles[0] is not profiles[1]

    def test_empty_and_single(self, chain_dag):
        est = make_estimator(chain_dag)
        assert est.estimate_profiles([]) == []
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        (profile,) = est.estimate_profiles([plan])
        assert_profiles_identical(
            profile, make_estimator(chain_dag).estimate_profile(plan)
        )


class TestEstimatorGuards:
    """PR 6 bugfix: the stopping-rule knobs validate their domain."""

    def test_max_samples_nonpositive_raises(self, chain_dag):
        with pytest.raises(ValueError, match="max_samples"):
            make_estimator(chain_dag, max_samples=0)
        with pytest.raises(ValueError, match="max_samples"):
            make_estimator(chain_dag, max_samples=-5)

    def test_batch_size_nonpositive_raises(self, chain_dag):
        with pytest.raises(ValueError, match="batch_size"):
            make_estimator(chain_dag, batch_size=0)

    def test_batch_larger_than_max_caps_exactly(self, chain_dag):
        # Pre-fix, a batch overshooting max_samples drew the full batch;
        # the cap must now be exact, not "first batch past the post".
        est = make_estimator(chain_dag, batch_size=64, max_samples=10,
                             cov_threshold=1e-12)
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        assert est.estimate_profile(plan).n_samples == 10

    def test_non_divisible_batch_caps_exactly(self, chain_dag):
        est = make_estimator(chain_dag, batch_size=30, max_samples=70,
                             cov_threshold=1e-12)
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        assert est.estimate_profile(plan).n_samples == 70


class TestClientRegionWarning:
    """PR 6 bugfix: a missing client region silently priced the
    shifted-start input transfer as free; now it warns."""

    def test_warns_without_client_region(self, chain_dag):
        with pytest.warns(UserWarning, match="client_region"):
            make_estimator(chain_dag, client_region=None)

    def test_no_warning_with_client_region(self, chain_dag):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_estimator(chain_dag, client_region="us-east-1")

    def test_evaluator_always_threads_home_region(self, chain_dag):
        # PlanEvaluator must never build the silent-fallback estimator:
        # when no client region is given it uses the workflow's home.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_evaluator(chain_dag)


class TestOffloadedNodesTieBreak:
    """PR 6 bugfix: modal-count ties resolved lexicographically, not by
    set-iteration order (which follows PYTHONHASHSEED)."""

    def _result(self, assignments):
        return SolveResult(
            hour=0,
            best_plan=DeploymentPlan(assignments),
            best_estimate=None,
            iterations=1,
            accepted=1,
            plans_evaluated=1,
        )

    def test_two_way_tie_is_lexicographic(self):
        result = self._result({"a": "us-west-2", "b": "ca-central-1"})
        # Both regions host one node: ca-central-1 wins the tie, so the
        # us-west-2 node is the offloaded one — regardless of hash seed.
        assert result.offloaded_nodes == ("a",)

    def test_majority_still_wins_over_lexicographic(self):
        result = self._result(
            {"a": "us-west-2", "b": "us-west-2", "c": "ca-central-1"}
        )
        assert result.offloaded_nodes == ("c",)


def _hbss(dag, seed=5, **settings_kw):
    settings = SolverSettings(batch_size=40, max_samples=120,
                              cov_threshold=0.1, **settings_kw)
    ev = make_evaluator(dag, settings=settings, seed=seed)
    return ev, HBSSSolver(ev, np.random.default_rng(seed))


class TestBatchedSolverEquivalence:
    """batched_evaluation=False is the scalar reference: every solver
    must produce the identical plan set either way."""

    @pytest.mark.parametrize("wave_size", [1, 3])
    def test_hbss_batched_matches_scalar(self, chain_dag, wave_size):
        hours = list(range(4))
        _, batched = _hbss(chain_dag, wave_size=wave_size)
        _, scalar = _hbss(chain_dag, wave_size=wave_size,
                          batched_evaluation=False)
        ps_b, res_b = batched.solve_day(hours)
        ps_s, res_s = scalar.solve_day(hours)
        assert ps_b.to_dict() == ps_s.to_dict()
        for a, b in zip(res_b, res_s):
            assert a.best_estimate.mean_carbon_g == b.best_estimate.mean_carbon_g

    def test_hbss_wave_one_matches_default(self, chain_dag):
        # wave_size=1 (the default) IS the paper's serial trajectory;
        # spelling it explicitly must not change a single draw.
        hours = list(range(3))
        _, default = _hbss(chain_dag)
        _, explicit = _hbss(chain_dag, wave_size=1)
        assert default.solve_day(hours)[0].to_dict() == \
            explicit.solve_day(hours)[0].to_dict()

    def test_coarse_batched_matches_scalar(self, chain_dag):
        plan_sets = {}
        for batched in (True, False):
            settings = SolverSettings(batch_size=40, max_samples=120,
                                      cov_threshold=0.1,
                                      batched_evaluation=batched)
            ev = make_evaluator(chain_dag, settings=settings)
            plan_sets[batched] = CoarseSolver(ev).solve_day().to_dict()
        assert plan_sets[True] == plan_sets[False]

    def test_exhaustive_batched_matches_scalar(self):
        plan_sets = {}
        for batched in (True, False):
            settings = SolverSettings(batch_size=40, max_samples=120,
                                      cov_threshold=0.1,
                                      batched_evaluation=batched)
            ev = make_evaluator(tiny_dag(), settings=settings)
            plan_sets[batched] = (
                ExhaustiveSolver(ev).solve_day(hours=[0, 12]).to_dict()
            )
        assert plan_sets[True] == plan_sets[False]

    def test_prefetch_counts_as_built_profiles(self, chain_dag):
        ev = make_evaluator(chain_dag)
        plans = some_plans(chain_dag, n=4)
        built = ev.prefetch_profiles(plans)
        assert built == len({p.digest() for p in plans})
        assert ev.prefetch_profiles(plans) == 0  # all cached now


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


class TestProcessBackend:
    """The process pool honours the same determinism contract as the
    thread pool, plus the RNG merge-back that keeps later serial solves
    on the same stream."""

    @needs_fork
    def test_hbss_process_identical_to_serial(self, chain_dag):
        hours = list(range(4))
        _, serial = _hbss(chain_dag)
        _, forked = _hbss(chain_dag)
        ps_serial, res_serial = serial.solve_day(hours, jobs=1)
        ps_proc, res_proc = forked.solve_day(hours, jobs=2,
                                             backend="process")
        assert ps_proc.to_dict() == ps_serial.to_dict()
        for a, b in zip(res_serial, res_proc):
            assert (a.hour, a.iterations, a.accepted, a.plans_evaluated) == (
                b.hour, b.iterations, b.accepted, b.plans_evaluated
            )
            assert a.best_estimate.mean_carbon_g == b.best_estimate.mean_carbon_g

    @needs_fork
    def test_hbss_rng_streams_merged_back(self, chain_dag):
        # A serial solve AFTER a process solve must match a serial solve
        # after a serial solve: worker RNG end-states are merged back.
        def double_solve(backend):
            rngs = {}

            def factory(hour):
                if hour not in rngs:
                    rngs[hour] = np.random.default_rng(1000 + hour)
                return rngs[hour]

            ev = make_evaluator(chain_dag, seed=5)
            solver = HBSSSolver(ev, np.random.default_rng(5),
                                rng_factory=factory)
            kwargs = {"jobs": 2, "backend": backend} if backend else {"jobs": 1}
            solver.solve_day([0, 1], **kwargs)
            return solver.solve_day([0, 1], jobs=1)[0].to_dict()

        assert double_solve("process") == double_solve(None)

    @needs_fork
    def test_coarse_process_identical(self, chain_dag):
        ev = make_evaluator(chain_dag)
        solver = CoarseSolver(ev)
        assert solver.solve_day(jobs=2, backend="process").to_dict() == \
            solver.solve_day(jobs=1).to_dict()

    @needs_fork
    def test_exhaustive_process_identical(self):
        ev = make_evaluator(tiny_dag())
        solver = ExhaustiveSolver(ev)
        assert (
            solver.solve_day(hours=[0, 6, 12], jobs=2,
                             backend="process").to_dict()
            == solver.solve_day(hours=[0, 6, 12], jobs=1).to_dict()
        )

    @needs_fork
    def test_settings_backend_is_the_default(self, chain_dag):
        _, serial = _hbss(chain_dag)
        _, forked = _hbss(chain_dag, parallel_backend="process",
                          parallel_hours=2)
        hours = [0, 1, 2]
        assert forked.solve_day(hours)[0].to_dict() == \
            serial.solve_day(hours, jobs=1)[0].to_dict()

    def test_bogus_backend_rejected(self, chain_dag):
        _, solver = _hbss(chain_dag)
        with pytest.raises(ValueError, match="backend"):
            solver.solve_day([0], backend="greenlet")
        with pytest.raises(ValueError, match="parallel_backend"):
            SolverSettings(parallel_backend="greenlet")
        with pytest.raises(ValueError, match="wave_size"):
            SolverSettings(wave_size=0)

    @needs_fork
    def test_process_map_basic(self):
        assert process_map(_square, [1, 2, 3], 2) == [1, 4, 9]
        assert process_map(_square, [], 2) == []


def _square(x):
    return x * x
