"""Tests for the carbon (Eq. 7.1-7.5) and cost models."""

import pytest

from repro.data.pricing import PricingSource
from repro.metrics.carbon import (
    EF_BEST_CASE,
    EF_WORST_CASE,
    P_MAX_KW,
    P_MEM_KW_PER_GB,
    P_MIN_KW,
    PUE,
    CarbonModel,
    TransmissionScenario,
)
from repro.metrics.cost import CostModel


@pytest.fixture
def model():
    return CarbonModel(TransmissionScenario.best_case())


class TestScenarios:
    def test_best_case_constants(self):
        s = TransmissionScenario.best_case()
        # §7.1: best case 0.001 kWh/GB for any transmission.
        assert s.ef_inter == EF_BEST_CASE == 0.001
        assert s.ef_intra == 0.001

    def test_worst_case_constants(self):
        s = TransmissionScenario.worst_case()
        # §7.1: worst case 0.005 inter- and 0 intra-region.
        assert s.ef_inter == EF_WORST_CASE == 0.005
        assert s.ef_intra == 0.0

    def test_fig9_scenarios(self):
        equal = TransmissionScenario.equal(0.01)
        assert equal.ef_inter == equal.ef_intra == 0.01
        free = TransmissionScenario.free_intra(0.01)
        assert free.ef_inter == 0.01 and free.ef_intra == 0.0

    def test_negative_ef_rejected(self):
        with pytest.raises(ValueError):
            TransmissionScenario(ef_inter=-1.0, ef_intra=0.0)


class TestExecutionCarbon:
    def test_memory_energy_eq72(self, model):
        # E_mem = 3.725e-4 kW/GB * (mem/1024) * t/3600
        e = model.memory_energy_kwh(memory_mb=2048, duration_s=3600)
        assert e == pytest.approx(P_MEM_KW_PER_GB * 2.0)

    def test_vcpu_power_eq73_bounds(self, model):
        idle = model.vcpu_power_kw(cpu_total_time_s=0.0, duration_s=10, n_vcpu=1)
        full = model.vcpu_power_kw(cpu_total_time_s=10.0, duration_s=10, n_vcpu=1)
        assert idle == pytest.approx(P_MIN_KW)  # 7.5e-4 kW idle
        assert full == pytest.approx(P_MAX_KW)  # 3.5e-3 kW at 100 %

    def test_vcpu_power_linear_at_half(self, model):
        half = model.vcpu_power_kw(cpu_total_time_s=5.0, duration_s=10, n_vcpu=1)
        assert half == pytest.approx((P_MIN_KW + P_MAX_KW) / 2)

    def test_utilisation_clamped(self, model):
        over = model.vcpu_power_kw(cpu_total_time_s=100.0, duration_s=10, n_vcpu=1)
        assert over == pytest.approx(P_MAX_KW)

    def test_execution_carbon_eq71(self, model):
        # One vCPU at full utilisation, 1769 MB, one hour, I = 400.
        carbon = model.execution_carbon_g(
            grid_intensity=400.0, duration_s=3600.0, memory_mb=1769,
            n_vcpu=1.0, cpu_total_time_s=3600.0,
        )
        expected_energy = P_MAX_KW + P_MEM_KW_PER_GB * (1769 / 1024)
        assert carbon == pytest.approx(400.0 * expected_energy * PUE)

    def test_pue_is_aws_average(self, model):
        assert model.pue == pytest.approx(1.11)

    def test_zero_duration_rejected(self, model):
        with pytest.raises(ValueError):
            model.vcpu_power_kw(1.0, 0.0, 1.0)

    def test_invalid_pue_rejected(self):
        with pytest.raises(ValueError):
            CarbonModel(TransmissionScenario.best_case(), pue=0.9)


class TestTransmissionCarbon:
    def test_eq75(self, model):
        # Carbon = I_route * EF * S(GB)
        carbon = model.transmission_carbon_g(
            route_intensity=300.0, size_bytes=1024**3, intra_region=False
        )
        assert carbon == pytest.approx(300.0 * 0.001 * 1.0)

    def test_worst_case_intra_free(self):
        model = CarbonModel(TransmissionScenario.worst_case())
        assert model.transmission_carbon_g(300.0, 1024**3, intra_region=True) == 0.0
        assert model.transmission_carbon_g(300.0, 1024**3, intra_region=False) == (
            pytest.approx(300.0 * 0.005)
        )

    def test_negative_size_rejected(self, model):
        with pytest.raises(ValueError):
            model.transmission_carbon_g(300.0, -1.0, False)

    def test_with_scenario_repricing(self, model):
        worst = model.with_scenario(TransmissionScenario.worst_case())
        assert worst.scenario.name == "worst-case"
        assert worst.pue == model.pue


class TestCostModel:
    @pytest.fixture
    def cost(self):
        return CostModel(PricingSource())

    def test_execution_cost_gb_seconds(self, cost):
        # 1 GB for 10 s at us-east-1 rates + invocation fee.
        c = cost.execution_cost("us-east-1", duration_s=10.0, memory_mb=1024)
        assert c == pytest.approx(10 * 1.66667e-5 + 2e-7)

    def test_execution_cost_regional_multiplier(self, cost):
        east = cost.execution_cost("us-east-1", 10.0, 1024)
        west1 = cost.execution_cost("us-west-1", 10.0, 1024)
        assert west1 > east

    def test_intra_region_transfer_free(self, cost):
        assert cost.transmission_cost("us-east-1", "us-east-1", 1024**3) == 0.0

    def test_egress_per_gb(self, cost):
        c = cost.transmission_cost("us-east-1", "ca-central-1", 2 * 1024**3)
        assert c == pytest.approx(0.18)

    def test_messaging_and_kv(self, cost):
        assert cost.messaging_cost("us-east-1", 2) == pytest.approx(1e-6)
        assert cost.kv_cost("us-east-1", n_reads=4, n_writes=2) == pytest.approx(
            4 * 0.25e-6 + 2 * 1.25e-6
        )

    def test_validation(self, cost):
        with pytest.raises(ValueError):
            cost.execution_cost("us-east-1", -1.0, 1024)
        with pytest.raises(ValueError):
            cost.transmission_cost("us-east-1", "us-west-1", -5)
        with pytest.raises(ValueError):
            cost.messaging_cost("us-east-1", -1)
        with pytest.raises(ValueError):
            cost.kv_cost("us-east-1", n_reads=-1)
