"""Tests for the token-bucket solve trigger (§5.2)."""

import pytest

from repro.core.trigger import EarnReport, TokenBucket


@pytest.fixture
def bucket():
    return TokenBucket(n_nodes=7, n_regions=4)


class TestSolveCost:
    def test_scales_with_complexity(self):
        small = TokenBucket(n_nodes=1, n_regions=4).solve_cost_g(400.0)
        big = TokenBucket(n_nodes=10, n_regions=4).solve_cost_g(400.0)
        assert big == pytest.approx(10 * small)

    def test_scales_with_granularity(self, bucket):
        hourly = bucket.solve_cost_g(400.0, granularity_hours=24)
        daily = bucket.solve_cost_g(400.0, granularity_hours=1)
        assert hourly == pytest.approx(24 * daily)

    def test_scales_with_framework_intensity(self, bucket):
        # Solving from a clean framework region is cheaper (§5.2).
        assert bucket.solve_cost_g(34.0) < bucket.solve_cost_g(400.0) / 10

    def test_calibrated_to_paper_anchor(self):
        # §9.7: ~534 s for 24 hourly solves of Text2Speech (5 nodes, 4
        # regions + framework machinery) -> per-node-region ~0.8 s.
        bucket = TokenBucket(n_nodes=7, n_regions=4)
        seconds = (
            bucket.settings.solve_seconds_per_node_region * 7 * 4 * 24
        )
        assert 300 < seconds < 800

    def test_invalid_args(self, bucket):
        with pytest.raises(ValueError):
            bucket.solve_cost_g(400.0, granularity_hours=0)
        with pytest.raises(ValueError):
            TokenBucket(n_nodes=0, n_regions=4)


class TestEarning:
    def test_earn_proportional_to_traffic(self, bucket):
        report = bucket.earn(
            invocations=1000, avg_runtime_s=5.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
        )
        assert isinstance(report, EarnReport)
        assert report.earned_g > 0
        double = TokenBucket(n_nodes=7, n_regions=4)
        report2 = double.earn(
            invocations=2000, avg_runtime_s=5.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
        )
        assert report2.earned_g == pytest.approx(2 * report.earned_g)

    def test_no_differential_no_tokens(self, bucket):
        report = bucket.earn(
            invocations=1000, avg_runtime_s=5.0, avg_memory_mb=1769,
            home_intensity=34.0, best_intensity=400.0, period_s=3600.0,
        )
        assert report.earned_g == 0.0

    def test_realized_savings_add(self, bucket):
        base = bucket.earn(
            invocations=10, avg_runtime_s=1.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
        )
        bucket2 = TokenBucket(n_nodes=7, n_regions=4)
        extra = bucket2.earn(
            invocations=10, avg_runtime_s=1.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
            realized_saving_g=5.0,
        )
        assert extra.earned_g == pytest.approx(base.earned_g + 5.0)

    def test_capacity_cap(self, bucket):
        bucket.earn(
            invocations=10**9, avg_runtime_s=100.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
        )
        assert bucket.tokens_g == pytest.approx(bucket.capacity_g)

    def test_invalid_earn_args(self, bucket):
        with pytest.raises(ValueError):
            bucket.earn(-1, 1.0, 1769, 400.0, 34.0, 3600.0)
        with pytest.raises(ValueError):
            bucket.earn(1, 1.0, 1769, 400.0, 34.0, 0.0)


class TestDecisions:
    def fill(self, bucket, target_g):
        bucket.tokens_g = target_g

    def test_granularity_ladder(self, bucket):
        # §5.2: hourly when rich, daily when tight, none when broke.
        hourly_cost = bucket.solve_cost_g(400.0, 24)
        daily_cost = bucket.solve_cost_g(400.0, 1)
        self.fill(bucket, hourly_cost * 1.1)
        assert bucket.affordable_granularity(400.0) == 24
        self.fill(bucket, daily_cost * 1.5)
        assert bucket.affordable_granularity(400.0) == 1
        self.fill(bucket, daily_cost * 0.5)
        assert bucket.affordable_granularity(400.0) is None

    def test_consume_deducts(self, bucket):
        cost = bucket.solve_cost_g(400.0, 24)
        self.fill(bucket, cost * 2)
        spent = bucket.consume(400.0, 24)
        assert spent == pytest.approx(cost)
        assert bucket.tokens_g == pytest.approx(cost)

    def test_consume_insufficient_raises(self, bucket):
        with pytest.raises(ValueError, match="insufficient"):
            bucket.consume(400.0, 24)


class TestCheckCadence:
    def test_full_bucket_checks_fast(self, bucket):
        bucket.tokens_g = bucket.solve_cost_g(400.0, 24) * 2
        assert bucket.next_check_delay_s(400.0) == pytest.approx(
            bucket.settings.min_check_period_s
        )

    def test_no_earn_rate_checks_slow(self, bucket):
        assert bucket.next_check_delay_s(400.0) == pytest.approx(
            bucket.settings.max_check_period_s
        )

    def test_cadence_tracks_invocation_rate(self):
        # §5.2: busier workflows are checked more often.
        slow = TokenBucket(n_nodes=7, n_regions=4)
        fast = TokenBucket(n_nodes=7, n_regions=4)
        for bucket, invocations in ((slow, 10), (fast, 100000)):
            bucket.earn(
                invocations=invocations, avg_runtime_s=5.0,
                avg_memory_mb=1769, home_intensity=400.0,
                best_intensity=34.0, period_s=3600.0,
            )
        assert fast.next_check_delay_s(400.0) <= slow.next_check_delay_s(400.0)

    def test_delay_bounded(self, bucket):
        bucket.earn(
            invocations=50, avg_runtime_s=1.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
        )
        delay = bucket.next_check_delay_s(400.0)
        s = bucket.settings
        assert s.min_check_period_s <= delay <= s.max_check_period_s


class TestCadenceContract:
    """Regression coverage for the trigger/manager loop (§5.2)."""

    def _earning_bucket(self):
        bucket = TokenBucket(n_nodes=7, n_regions=4)
        bucket.earn(
            invocations=500, avg_runtime_s=2.0, avg_memory_mb=1769,
            home_intensity=400.0, best_intensity=34.0, period_s=3600.0,
        )
        return bucket

    def test_delay_always_within_bounds(self):
        bucket = self._earning_bucket()
        s = bucket.settings
        cost = bucket.solve_cost_g(400.0, 24)
        for fill in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5):
            bucket.tokens_g = min(cost * fill, bucket.capacity_g)
            delay = bucket.next_check_delay_s(400.0)
            assert s.min_check_period_s <= delay <= s.max_check_period_s

    def test_delay_monotone_in_deficit(self):
        # With a fixed earn rate, a larger deficit can only push the
        # next check further out, never closer.
        bucket = self._earning_bucket()
        cost = bucket.solve_cost_g(400.0, 24)
        delays = []
        for fill in (1.0, 0.75, 0.5, 0.25, 0.0):  # growing deficit
            bucket.tokens_g = cost * fill
            delays.append(bucket.next_check_delay_s(400.0))
        assert delays == sorted(delays)

    def test_no_deficit_checks_at_min_period(self):
        bucket = self._earning_bucket()
        bucket.tokens_g = bucket.solve_cost_g(400.0, 24)
        assert bucket.next_check_delay_s(400.0) == pytest.approx(
            bucket.settings.min_check_period_s
        )

    def test_consume_unaffordable_daily_granularity_raises(self):
        bucket = TokenBucket(n_nodes=7, n_regions=4)
        bucket.tokens_g = bucket.solve_cost_g(400.0, 1) * 0.5
        with pytest.raises(ValueError, match="insufficient"):
            bucket.consume(400.0, 1)

    def test_consume_returns_cost_actually_charged(self):
        bucket = TokenBucket(n_nodes=7, n_regions=4)
        daily = bucket.solve_cost_g(400.0, 1)
        bucket.tokens_g = daily * 1.5
        charged = bucket.consume(400.0, 1)
        assert charged == pytest.approx(daily)
        assert charged < bucket.solve_cost_g(400.0, 24)
