"""Tests for the extensions: temporal shifting and embodied accounting."""

import numpy as np
import pytest

from repro.apps import get_app
from repro.cloud.ledger import ExecutionRecord
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_HOUR
from repro.core.temporal import TemporalPolicy, TemporalShifter
from repro.experiments.harness import deploy_benchmark
from repro.metrics.embodied import (
    EmbodiedCarbonModel,
    ranking_invariant_under_embodied,
)


def v_shaped_overrides(trough_hour=3, low=50.0, high=500.0):
    """A carbon day with an unmistakable trough at ``trough_hour``."""
    day = [high] * 24
    day[trough_hour] = low
    week = day * 7
    return {z: list(week) for z in
            ("US-PJM", "US-CAISO", "US-BPA", "CA-QC", "CA-AB")}


@pytest.fixture
def shifter_setup():
    cloud = SimulatedCloud(
        seed=60, carbon_overrides=v_shaped_overrides(),
        regions=("us-east-1",),
    )
    app = get_app("dna_visualization")
    deployed, executor, _ = deploy_benchmark(app, cloud)
    return cloud, app, executor, TemporalShifter(executor)


class TestTemporalPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalPolicy(max_delay_s=-1)
        with pytest.raises(ValueError):
            TemporalPolicy(max_delay_s=10, slot_s=0)


class TestTemporalShifter:
    def test_no_policy_runs_immediately(self, shifter_setup):
        cloud, app, executor, shifter = shifter_setup
        decision = shifter.submit(app.make_input("small"))
        assert decision.delay_s == 0.0
        cloud.run_until_idle()
        assert cloud.ledger.executions  # it ran

    def test_zero_tolerance_runs_immediately(self, shifter_setup):
        cloud, app, executor, shifter = shifter_setup
        decision = shifter.submit(
            app.make_input("small"), TemporalPolicy(max_delay_s=0)
        )
        assert decision.delay_s == 0.0

    def test_waits_for_the_trough(self, shifter_setup):
        cloud, app, executor, shifter = shifter_setup
        # Now = hour 0 (intensity 500); trough at hour 3 (50); deadline
        # allows reaching it.
        decision = shifter.submit(
            app.make_input("small"),
            TemporalPolicy(max_delay_s=5 * SECONDS_PER_HOUR),
        )
        assert decision.scheduled_at_s == pytest.approx(3 * SECONDS_PER_HOUR)
        assert decision.chosen_intensity == pytest.approx(50.0)
        cloud.run_until_idle()
        exec_start = cloud.ledger.executions[0].start_s
        assert exec_start >= 3 * SECONDS_PER_HOUR

    def test_never_exceeds_deadline(self, shifter_setup):
        cloud, app, executor, shifter = shifter_setup
        decision = shifter.submit(
            app.make_input("small"),
            TemporalPolicy(max_delay_s=2 * SECONDS_PER_HOUR),
        )
        # Trough (hour 3) is out of reach: stays within [now, +2 h].
        assert decision.delay_s <= 2 * SECONDS_PER_HOUR
        cloud.run_until_idle()

    def test_flat_carbon_runs_immediately(self):
        flat = {z: [300.0] * (24 * 7) for z in
                ("US-PJM", "US-CAISO", "US-BPA", "CA-QC", "CA-AB")}
        cloud = SimulatedCloud(seed=61, carbon_overrides=flat,
                               regions=("us-east-1",))
        app = get_app("dna_visualization")
        _deployed, executor, _ = deploy_benchmark(app, cloud)
        shifter = TemporalShifter(executor)
        decision = shifter.submit(
            app.make_input("small"),
            TemporalPolicy(max_delay_s=6 * SECONDS_PER_HOUR),
        )
        assert decision.delay_s == 0.0  # earliest slot wins ties

    def test_improvement_reported(self, shifter_setup):
        cloud, app, executor, shifter = shifter_setup
        shifter.submit(app.make_input("small"),
                       TemporalPolicy(max_delay_s=5 * SECONDS_PER_HOUR))
        assert shifter.mean_intensity_improvement() > 0.8  # 500 -> 50

    def test_joint_with_geo_plan(self):
        """A slot scores by the plan in force: offloading hours win."""
        from repro.model.plan import DeploymentPlan, HourlyPlanSet

        overrides = v_shaped_overrides()
        # Make ca-central-1 flat-low so only geo matters.
        overrides["CA-QC"] = [20.0] * (24 * 7)
        cloud = SimulatedCloud(seed=62, carbon_overrides=overrides)
        app = get_app("dna_visualization")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        spec = deployed.workflow.function("visualize")
        utility.deploy_function(deployed, executor, spec, "ca-central-1",
                                copy_image_from="us-east-1")
        # Plan: home except hour 2, which offloads to the clean region.
        home = DeploymentPlan.single_region(deployed.dag, "us-east-1")
        away = DeploymentPlan.single_region(deployed.dag, "ca-central-1")
        executor.stage_plan_set(HourlyPlanSet({0: home, 2: away, 3: home}))
        shifter = TemporalShifter(executor)
        decision = shifter.submit(
            app.make_input("small"),
            TemporalPolicy(max_delay_s=2.5 * SECONDS_PER_HOUR),
        )
        # Hour 2 (intensity 20 via the plan) beats waiting for hour 3's
        # home trough (50) and beats now (500).
        assert decision.scheduled_at_s == pytest.approx(2 * SECONDS_PER_HOUR)
        assert decision.chosen_intensity == pytest.approx(20.0)


class TestEmbodiedModel:
    def make_record(self, duration=3600.0, memory=1769, n_vcpu=1.0):
        return ExecutionRecord(
            workflow="wf", node="n", function="n", region="us-east-1",
            request_id="r", start_s=0.0, duration_s=duration,
            memory_mb=memory, n_vcpu=n_vcpu, cpu_total_time_s=duration,
            cold_start=False, payload_bytes=0, output_bytes=0,
        )

    def test_embodied_scales_with_resources(self):
        model = EmbodiedCarbonModel()
        one = model.record_embodied_g(self.make_record())
        double_time = model.record_embodied_g(self.make_record(duration=7200))
        assert double_time == pytest.approx(2 * one)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EmbodiedCarbonModel().execution_embodied_g(-1.0, 1769, 1.0)

    def test_total(self):
        model = EmbodiedCarbonModel()
        records = [self.make_record(), self.make_record()]
        assert model.total_embodied_g(records) == pytest.approx(
            2 * model.record_embodied_g(records[0])
        )

    def test_ranking_invariance_same_resources(self):
        # The §7.1 argument: equal embodied per unit of resource cannot
        # reorder plans that consume the same resources.
        operational = [10.0, 2.0, 5.0, 7.0]
        resources = [(3.0, 5.0)] * 4
        assert ranking_invariant_under_embodied(operational, resources)

    def test_ranking_can_change_with_different_resources(self):
        # Sanity: the invariance claim is about equal resource use; with
        # wildly different resource footprints the order can flip, which
        # is exactly why the paper scopes the argument to placement
        # decisions of the same workload.
        operational = [10.0, 9.0]
        resources = [(0.0, 0.0), (1000.0, 1000.0)]
        assert not ranking_invariant_under_embodied(operational, resources)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ranking_invariant_under_embodied([1.0], [])
