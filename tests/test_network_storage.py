"""Tests for the network model and object storage."""

import pytest

from repro.cloud.storage import ObjectNotFound
from repro.common.errors import CaribouError
from repro.common.units import mb


class TestNetwork:
    def test_latency_grows_with_size(self, cloud):
        small = cloud.network.transfer_latency("us-east-1", "us-west-1", 1e3, jitter=False)
        big = cloud.network.transfer_latency("us-east-1", "us-west-1", 1e8, jitter=False)
        assert big > small

    def test_intra_region_faster_than_inter(self, cloud):
        intra = cloud.network.transfer_latency("us-east-1", "us-east-1", mb(10), jitter=False)
        inter = cloud.network.transfer_latency("us-east-1", "us-west-1", mb(10), jitter=False)
        assert intra < inter

    def test_zero_size_transfer_is_propagation_only(self, cloud):
        latency = cloud.network.transfer_latency("us-east-1", "us-west-2", 0.0, jitter=False)
        assert latency == pytest.approx(
            cloud.latency_source.one_way("us-east-1", "us-west-2")
        )

    def test_negative_size_rejected(self, cloud):
        with pytest.raises(ValueError):
            cloud.network.transfer_latency("us-east-1", "us-west-1", -1.0)

    def test_transfer_recorded_in_ledger(self, cloud):
        cloud.network.transfer(
            "us-east-1", "ca-central-1", mb(1), workflow="wf",
            request_id="r1", kind="data", edge="a->b",
        )
        records = cloud.ledger.transmissions_for("wf")
        assert len(records) == 1
        rec = records[0]
        assert rec.src_region == "us-east-1"
        assert rec.dst_region == "ca-central-1"
        assert rec.size_bytes == mb(1)
        assert rec.edge == "a->b"
        assert not rec.intra_region

    def test_jitter_is_bounded_below(self, cloud):
        # Even extreme jitter draws cannot make latency non-positive.
        for _ in range(200):
            latency = cloud.network.transfer_latency("us-east-1", "us-east-1", 0.0)
            assert latency > 0


class TestObjectStore:
    def test_put_get_roundtrip(self, cloud):
        cloud.storage.create_bucket("inputs", "us-east-1")
        cloud.storage.put_object("inputs", "f.txt", 1024, content="hello")
        obj, _latency = cloud.storage.get_object("inputs", "f.txt")
        assert obj.content == "hello"
        assert obj.size_bytes == 1024

    def test_bucket_region_pinned(self, cloud):
        cloud.storage.create_bucket("b", "ca-central-1")
        assert cloud.storage.bucket_region("b") == "ca-central-1"
        with pytest.raises(CaribouError):
            cloud.storage.create_bucket("b", "us-east-1")

    def test_recreate_same_region_idempotent(self, cloud):
        cloud.storage.create_bucket("b", "us-east-1")
        cloud.storage.create_bucket("b", "us-east-1")  # no error

    def test_missing_object(self, cloud):
        cloud.storage.create_bucket("b", "us-east-1")
        with pytest.raises(ObjectNotFound):
            cloud.storage.get_object("b", "nope")

    def test_missing_bucket(self, cloud):
        with pytest.raises(ObjectNotFound):
            cloud.storage.get_object("ghost", "k")

    def test_cross_region_get_billed_from_bucket(self, cloud):
        cloud.storage.create_bucket("b", "us-east-1")
        cloud.storage.put_object("b", "k", mb(5), workflow="wf")
        cloud.ledger.transmissions.clear()
        cloud.storage.get_object("b", "k", caller_region="us-west-1", workflow="wf")
        rec = cloud.ledger.transmissions_for("wf")[0]
        assert rec.src_region == "us-east-1"  # sender pays egress
        assert rec.dst_region == "us-west-1"

    def test_head_and_list(self, cloud):
        cloud.storage.create_bucket("b", "us-east-1")
        cloud.storage.put_object("b", "k1", 10)
        cloud.storage.put_object("b", "k2", 20)
        assert cloud.storage.head_object("b", "k2").size_bytes == 20
        assert set(cloud.storage.list_objects("b")) == {"k1", "k2"}


class TestRegistryAndIam:
    def test_push_and_copy(self, cloud):
        cloud.registry.push("us-east-1", "wf/fn", "1.0", mb(250))
        latency = cloud.registry.copy_image("wf/fn", "1.0", "us-east-1", "ca-central-1")
        assert latency > 0
        assert cloud.registry.exists("ca-central-1", "wf/fn", "1.0")

    def test_copy_idempotent(self, cloud):
        cloud.registry.push("us-east-1", "wf/fn", "1.0", mb(250))
        cloud.registry.copy_image("wf/fn", "1.0", "us-east-1", "us-west-1")
        # Second copy skips identical layers: no transfer, zero latency.
        before = len(cloud.ledger.transmissions)
        assert cloud.registry.copy_image("wf/fn", "1.0", "us-east-1", "us-west-1") == 0.0
        assert len(cloud.ledger.transmissions) == before

    def test_copy_missing_image_fails(self, cloud):
        from repro.common.errors import DeploymentError

        with pytest.raises(DeploymentError):
            cloud.registry.copy_image("ghost", "1.0", "us-east-1", "us-west-1")

    def test_image_transfer_is_image_kind(self, cloud):
        cloud.registry.push("us-east-1", "wf/fn", "1.0", mb(100), )
        cloud.registry.copy_image("wf/fn", "1.0", "us-east-1", "us-west-2", workflow="wf")
        recs = [r for r in cloud.ledger.transmissions_for("wf") if r.kind == "image"]
        assert len(recs) == 1
        assert recs[0].size_bytes == mb(100)

    def test_invalid_image_size(self, cloud):
        with pytest.raises(ValueError):
            cloud.registry.push("us-east-1", "x", "1", 0)

    def test_iam_roles(self, cloud):
        cloud.iam.create_role("wf-fn-us-east-1", {"allow": "*"})
        assert cloud.iam.role_exists("wf-fn-us-east-1")
        assert cloud.iam.get_policy("wf-fn-us-east-1") == {"allow": "*"}
        cloud.iam.delete_role("wf-fn-us-east-1")
        assert not cloud.iam.role_exists("wf-fn-us-east-1")

    def test_missing_role_policy_raises(self, cloud):
        from repro.common.errors import DeploymentError

        with pytest.raises(DeploymentError):
            cloud.iam.get_policy("ghost")
