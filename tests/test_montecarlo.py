"""Tests for the Monte-Carlo end-to-end estimator (§7.1)."""

import numpy as np
import pytest

from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.montecarlo import MonteCarloEstimator
from repro.model.plan import DeploymentPlan


class FixtureData:
    """Hand-built WorkflowModelData with controllable behaviour."""

    def __init__(self, exec_seconds=1.0, edge_bytes=1e6, cond_prob=0.5,
                 slow_region=None):
        self.exec_seconds = exec_seconds
        self.edge_bytes = edge_bytes
        self.cond_prob = cond_prob
        self.slow_region = slow_region

    def execution_time_dist(self, node, region):
        base = self.exec_seconds
        if region == self.slow_region:
            base *= 3.0
        return EmpiricalDistribution([base, base * 1.1, base * 0.9])

    def edge_probability(self, src, dst):
        return self.cond_prob

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution([self.edge_bytes])

    def node_memory_mb(self, node):
        return 1769

    def node_vcpu(self, node):
        return 1.0

    def node_cpu_utilization(self, node):
        return 0.7

    def node_external_bytes(self, node):
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([0.0])


def make_estimator(dag, data=None, scenario=None, seed=0, **kwargs):
    return MonteCarloEstimator(
        dag,
        data or FixtureData(),
        CarbonModel(scenario or TransmissionScenario.best_case()),
        CostModel(PricingSource()),
        TransferLatencyModel(LatencySource()),
        np.random.default_rng(seed),
        **kwargs,
    )


class TestStoppingRule:
    def test_batch_multiple_samples(self, chain_dag):
        est = make_estimator(chain_dag, batch_size=50, max_samples=500)
        result = est.estimate(DeploymentPlan.single_region(chain_dag, "us-east-1"),
                              lambda r: 400.0)
        assert result.n_samples % 50 == 0
        assert result.n_samples <= 500

    def test_max_samples_cap(self, diamond_dag):
        # A wildly bimodal conditional keeps the estimator uncertain.
        est = make_estimator(
            diamond_dag, FixtureData(cond_prob=0.5, exec_seconds=10.0),
            batch_size=200, max_samples=600, cov_threshold=1e-9,
        )
        result = est.estimate(
            DeploymentPlan.single_region(diamond_dag, "us-east-1"),
            lambda r: 400.0,
        )
        assert result.n_samples == 600

    def test_plan_must_cover_dag(self, chain_dag):
        est = make_estimator(chain_dag)
        with pytest.raises(ValueError, match="cover"):
            est.estimate(DeploymentPlan({"a": "us-east-1"}), lambda r: 1.0)


class TestEstimates:
    def test_chain_latency_is_sum_plus_transfers(self, chain_dag):
        est = make_estimator(chain_dag, FixtureData(exec_seconds=1.0,
                                                    edge_bytes=0.0))
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        result = est.estimate(plan, lambda r: 400.0)
        # Three 1 s stages + two tiny intra-region hops.
        assert 2.8 < result.mean_latency_s < 3.6

    def test_cross_region_raises_latency(self, chain_dag):
        est = make_estimator(chain_dag)
        same = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"), lambda r: 400.0
        )
        est2 = make_estimator(chain_dag)
        spread = est2.estimate(
            DeploymentPlan({"a": "us-east-1", "b": "us-west-1", "c": "us-east-1"}),
            lambda r: 400.0,
        )
        assert spread.mean_latency_s > same.mean_latency_s

    def test_carbon_scales_with_intensity(self, chain_dag):
        est = make_estimator(chain_dag)
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        profile = est.estimate_profile(plan)
        high = profile.estimate_at(lambda r: 400.0)
        low = profile.estimate_at(lambda r: 40.0)
        assert high.mean_carbon_g == pytest.approx(10 * low.mean_carbon_g, rel=1e-6)

    def test_low_carbon_region_wins_execution_carbon(self, chain_dag):
        est = make_estimator(chain_dag, FixtureData(edge_bytes=1e3))
        intensities = {"us-east-1": 400.0, "ca-central-1": 34.0}
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"),
            lambda r: intensities[r],
        )
        est2 = make_estimator(chain_dag, FixtureData(edge_bytes=1e3))
        remote = est2.estimate(
            DeploymentPlan.single_region(chain_dag, "ca-central-1"),
            lambda r: intensities[r],
        )
        assert remote.mean_carbon_g < 0.2 * home.mean_carbon_g

    def test_transmission_heavy_offload_not_worth_it_worst_case(self, chain_dag):
        # Worst-case scenario: intra free, inter expensive -> moving a
        # data-heavy chain across regions adds transmission carbon.
        data = FixtureData(exec_seconds=0.05, edge_bytes=50e6)
        est = make_estimator(chain_dag, data,
                             scenario=TransmissionScenario.worst_case())
        intensities = {"us-east-1": 400.0, "us-west-1": 380.0}
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"),
            lambda r: intensities[r],
        )
        est2 = make_estimator(chain_dag, data,
                              scenario=TransmissionScenario.worst_case())
        split = est2.estimate(
            DeploymentPlan({"a": "us-east-1", "b": "us-west-1", "c": "us-east-1"}),
            lambda r: intensities[r],
        )
        assert split.mean_carbon_g > home.mean_carbon_g

    def test_conditional_edges_reduce_work(self, diamond_dag):
        never = make_estimator(diamond_dag, FixtureData(cond_prob=0.0))
        always = make_estimator(diamond_dag, FixtureData(cond_prob=1.0))
        plan = DeploymentPlan.single_region(diamond_dag, "us-east-1")
        e_never = never.estimate(plan, lambda r: 400.0)
        e_always = always.estimate(plan, lambda r: 400.0)
        # Skipping node c removes its execution carbon.
        assert e_never.mean_carbon_g < e_always.mean_carbon_g

    def test_external_data_follows_node(self, chain_dag):
        class ExtData(FixtureData):
            def node_external_bytes(self, node):
                if node == "b":
                    return "us-east-1", 10e6
                return None, 0.0

        # Worst-case accounting: intra-region transfers are free, so the
        # pinned-data penalty only appears once the node moves away.
        worst = TransmissionScenario.worst_case()
        est = make_estimator(chain_dag, ExtData(edge_bytes=1e3), scenario=worst)
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"), lambda r: 400.0
        )
        est2 = make_estimator(chain_dag, ExtData(edge_bytes=1e3), scenario=worst)
        moved = est2.estimate(
            DeploymentPlan({"a": "us-east-1", "b": "ca-central-1", "c": "us-east-1"}),
            lambda r: 400.0,
        )
        # Node b moved away from its pinned data: more transmission carbon.
        assert moved.mean_trans_carbon_g > home.mean_trans_carbon_g

    def test_metric_selector(self, chain_dag):
        est = make_estimator(chain_dag)
        result = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"), lambda r: 400.0
        )
        assert result.metric("carbon") == result.mean_carbon_g
        assert result.metric("cost") == result.mean_cost_usd
        assert result.metric("latency") == result.mean_latency_s
        with pytest.raises(ValueError):
            result.metric("vibes")

    def test_sync_node_data_relays_through_kv_region(self, diamond_dag):
        est = make_estimator(
            diamond_dag, FixtureData(cond_prob=1.0, edge_bytes=20e6),
            kv_region="us-east-1",
        )
        plan = DeploymentPlan(
            {"a": "us-east-1", "b": "us-west-1", "c": "us-east-1", "d": "us-west-1"}
        )
        profile = est.estimate_profile(plan)
        # Fan-in data from b (us-west-1) must hop through the KV region.
        routes = set()
        for sample in profile.route_bytes:
            routes.update(sample.keys())
        assert ("us-west-1", "us-east-1") in routes  # b -> KV
        assert ("us-east-1", "us-west-1") in routes  # KV -> d


class TestPlanProfile:
    def test_profile_repricing_matches_direct_estimate(self, diamond_dag):
        plan = DeploymentPlan.single_region(diamond_dag, "us-east-1")
        est = make_estimator(diamond_dag, seed=7)
        profile = est.estimate_profile(plan)
        at_400 = profile.estimate_at(lambda r: 400.0)
        at_34 = profile.estimate_at(lambda r: 34.0)
        # Latency/cost are hour-independent; carbon scales exactly.
        assert at_400.mean_latency_s == at_34.mean_latency_s
        assert at_400.mean_cost_usd == at_34.mean_cost_usd
        assert at_400.mean_exec_carbon_g == pytest.approx(
            at_34.mean_exec_carbon_g * 400 / 34, rel=1e-9
        )

    def test_carbon_samples_shape(self, chain_dag):
        est = make_estimator(chain_dag)
        profile = est.estimate_profile(
            DeploymentPlan.single_region(chain_dag, "us-east-1")
        )
        samples = profile.carbon_samples(lambda r: 100.0)
        assert len(samples) == profile.n_samples
        assert np.all(samples > 0)
