"""Tests for the Monte-Carlo end-to-end estimator (§7.1)."""

import numpy as np
import pytest

from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.montecarlo import MonteCarloEstimator
from repro.model.plan import DeploymentPlan


class FixtureData:
    """Hand-built WorkflowModelData with controllable behaviour."""

    def __init__(self, exec_seconds=1.0, edge_bytes=1e6, cond_prob=0.5,
                 slow_region=None):
        self.exec_seconds = exec_seconds
        self.edge_bytes = edge_bytes
        self.cond_prob = cond_prob
        self.slow_region = slow_region

    def execution_time_dist(self, node, region):
        base = self.exec_seconds
        if region == self.slow_region:
            base *= 3.0
        return EmpiricalDistribution([base, base * 1.1, base * 0.9])

    def edge_probability(self, src, dst):
        return self.cond_prob

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution([self.edge_bytes])

    def node_memory_mb(self, node):
        return 1769

    def node_vcpu(self, node):
        return 1.0

    def node_cpu_utilization(self, node):
        return 0.7

    def node_external_bytes(self, node):
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([0.0])


def make_estimator(dag, data=None, scenario=None, seed=0, **kwargs):
    return MonteCarloEstimator(
        dag,
        data or FixtureData(),
        CarbonModel(scenario or TransmissionScenario.best_case()),
        CostModel(PricingSource()),
        TransferLatencyModel(LatencySource()),
        np.random.default_rng(seed),
        **kwargs,
    )


class TestStoppingRule:
    def test_batch_multiple_samples(self, chain_dag):
        est = make_estimator(chain_dag, batch_size=50, max_samples=500)
        result = est.estimate(DeploymentPlan.single_region(chain_dag, "us-east-1"),
                              lambda r: 400.0)
        assert result.n_samples % 50 == 0
        assert result.n_samples <= 500

    def test_max_samples_cap(self, diamond_dag):
        # A wildly bimodal conditional keeps the estimator uncertain.
        est = make_estimator(
            diamond_dag, FixtureData(cond_prob=0.5, exec_seconds=10.0),
            batch_size=200, max_samples=600, cov_threshold=1e-9,
        )
        result = est.estimate(
            DeploymentPlan.single_region(diamond_dag, "us-east-1"),
            lambda r: 400.0,
        )
        assert result.n_samples == 600

    def test_plan_must_cover_dag(self, chain_dag):
        est = make_estimator(chain_dag)
        with pytest.raises(ValueError, match="cover"):
            est.estimate(DeploymentPlan({"a": "us-east-1"}), lambda r: 1.0)


class TestEstimates:
    def test_chain_latency_is_sum_plus_transfers(self, chain_dag):
        est = make_estimator(chain_dag, FixtureData(exec_seconds=1.0,
                                                    edge_bytes=0.0))
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        result = est.estimate(plan, lambda r: 400.0)
        # Three 1 s stages + two tiny intra-region hops.
        assert 2.8 < result.mean_latency_s < 3.6

    def test_cross_region_raises_latency(self, chain_dag):
        est = make_estimator(chain_dag)
        same = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"), lambda r: 400.0
        )
        est2 = make_estimator(chain_dag)
        spread = est2.estimate(
            DeploymentPlan({"a": "us-east-1", "b": "us-west-1", "c": "us-east-1"}),
            lambda r: 400.0,
        )
        assert spread.mean_latency_s > same.mean_latency_s

    def test_carbon_scales_with_intensity(self, chain_dag):
        est = make_estimator(chain_dag)
        plan = DeploymentPlan.single_region(chain_dag, "us-east-1")
        profile = est.estimate_profile(plan)
        high = profile.estimate_at(lambda r: 400.0)
        low = profile.estimate_at(lambda r: 40.0)
        assert high.mean_carbon_g == pytest.approx(10 * low.mean_carbon_g, rel=1e-6)

    def test_low_carbon_region_wins_execution_carbon(self, chain_dag):
        est = make_estimator(chain_dag, FixtureData(edge_bytes=1e3))
        intensities = {"us-east-1": 400.0, "ca-central-1": 34.0}
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"),
            lambda r: intensities[r],
        )
        est2 = make_estimator(chain_dag, FixtureData(edge_bytes=1e3))
        remote = est2.estimate(
            DeploymentPlan.single_region(chain_dag, "ca-central-1"),
            lambda r: intensities[r],
        )
        assert remote.mean_carbon_g < 0.2 * home.mean_carbon_g

    def test_transmission_heavy_offload_not_worth_it_worst_case(self, chain_dag):
        # Worst-case scenario: intra free, inter expensive -> moving a
        # data-heavy chain across regions adds transmission carbon.
        data = FixtureData(exec_seconds=0.05, edge_bytes=50e6)
        est = make_estimator(chain_dag, data,
                             scenario=TransmissionScenario.worst_case())
        intensities = {"us-east-1": 400.0, "us-west-1": 380.0}
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"),
            lambda r: intensities[r],
        )
        est2 = make_estimator(chain_dag, data,
                              scenario=TransmissionScenario.worst_case())
        split = est2.estimate(
            DeploymentPlan({"a": "us-east-1", "b": "us-west-1", "c": "us-east-1"}),
            lambda r: intensities[r],
        )
        assert split.mean_carbon_g > home.mean_carbon_g

    def test_conditional_edges_reduce_work(self, diamond_dag):
        never = make_estimator(diamond_dag, FixtureData(cond_prob=0.0))
        always = make_estimator(diamond_dag, FixtureData(cond_prob=1.0))
        plan = DeploymentPlan.single_region(diamond_dag, "us-east-1")
        e_never = never.estimate(plan, lambda r: 400.0)
        e_always = always.estimate(plan, lambda r: 400.0)
        # Skipping node c removes its execution carbon.
        assert e_never.mean_carbon_g < e_always.mean_carbon_g

    def test_external_data_follows_node(self, chain_dag):
        class ExtData(FixtureData):
            def node_external_bytes(self, node):
                if node == "b":
                    return "us-east-1", 10e6
                return None, 0.0

        # Worst-case accounting: intra-region transfers are free, so the
        # pinned-data penalty only appears once the node moves away.
        worst = TransmissionScenario.worst_case()
        est = make_estimator(chain_dag, ExtData(edge_bytes=1e3), scenario=worst)
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"), lambda r: 400.0
        )
        est2 = make_estimator(chain_dag, ExtData(edge_bytes=1e3), scenario=worst)
        moved = est2.estimate(
            DeploymentPlan({"a": "us-east-1", "b": "ca-central-1", "c": "us-east-1"}),
            lambda r: 400.0,
        )
        # Node b moved away from its pinned data: more transmission carbon.
        assert moved.mean_trans_carbon_g > home.mean_trans_carbon_g

    def test_metric_selector(self, chain_dag):
        est = make_estimator(chain_dag)
        result = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"), lambda r: 400.0
        )
        assert result.metric("carbon") == result.mean_carbon_g
        assert result.metric("cost") == result.mean_cost_usd
        assert result.metric("latency") == result.mean_latency_s
        with pytest.raises(ValueError):
            result.metric("vibes")

    def test_sync_node_data_relays_through_kv_region(self, diamond_dag):
        est = make_estimator(
            diamond_dag, FixtureData(cond_prob=1.0, edge_bytes=20e6),
            kv_region="us-east-1",
        )
        plan = DeploymentPlan(
            {"a": "us-east-1", "b": "us-west-1", "c": "us-east-1", "d": "us-west-1"}
        )
        profile = est.estimate_profile(plan)
        # Fan-in data from b (us-west-1) must hop through the KV region.
        routes = set()
        for sample in profile.route_bytes:
            routes.update(sample.keys())
        assert ("us-west-1", "us-east-1") in routes  # b -> KV
        assert ("us-east-1", "us-west-1") in routes  # KV -> d


class RichData(FixtureData):
    """Wider distributions + external data: exercises every code path
    (bootstrap variety, conditional edges, sync relay, pinned data,
    non-trivial input sizes) for the differential test."""

    def execution_time_dist(self, node, region):
        base = self.exec_seconds * (1.0 + 0.1 * (ord(node[0]) % 5))
        if region == self.slow_region:
            base *= 3.0
        return EmpiricalDistribution([base * f for f in (0.7, 0.9, 1.0, 1.3, 2.1)])

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution(
            [self.edge_bytes * f for f in (0.5, 1.0, 1.5, 4.0)]
        )

    def node_external_bytes(self, node):
        if node == "b":
            return "us-east-1", 25e6
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([1e6, 5e6, 20e6])


class TestDifferential:
    """The vectorized kernel and the scalar reference path must be
    bit-identical from identical seeds (same RNG stream, same arithmetic
    order per element)."""

    def _profile(self, dag, plan, vectorized, **kwargs):
        est = make_estimator(
            dag,
            RichData(cond_prob=0.5, edge_bytes=2e6),
            seed=123,
            kv_region="us-east-1",
            client_region="us-east-1",
            vectorized=vectorized,
            batch_size=50,
            max_samples=200,
            cov_threshold=1e-9,  # force the full 200 samples in both
            **kwargs,
        )
        return est.estimate_profile(plan)

    def test_profiles_bit_identical(self, diamond_dag):
        plan = DeploymentPlan(
            {"a": "us-west-1", "b": "us-east-1", "c": "ca-central-1",
             "d": "us-west-2"}
        )
        vec = self._profile(diamond_dag, plan, vectorized=True)
        ref = self._profile(diamond_dag, plan, vectorized=False)
        assert vec.n_samples == ref.n_samples == 200
        assert np.array_equal(vec.latencies, ref.latencies)
        assert np.array_equal(vec.costs, ref.costs)
        assert list(vec.energy_by_region) == list(ref.energy_by_region)
        for region in vec.energy_by_region:
            assert np.array_equal(
                vec.energy_by_region[region], ref.energy_by_region[region]
            )
        assert list(vec.bytes_by_route) == list(ref.bytes_by_route)
        for route in vec.bytes_by_route:
            assert np.array_equal(
                vec.bytes_by_route[route], ref.bytes_by_route[route]
            )

    def test_estimates_bit_identical(self, diamond_dag):
        plan = DeploymentPlan(
            {"a": "us-east-1", "b": "us-west-1", "c": "us-east-1",
             "d": "ca-central-1"}
        )
        intensities = {"us-east-1": 400.0, "us-west-1": 375.0,
                       "us-west-2": 392.0, "ca-central-1": 34.0}
        vec = self._profile(diamond_dag, plan, vectorized=True)
        ref = self._profile(diamond_dag, plan, vectorized=False)
        # Frozen-dataclass equality compares every float field exactly.
        assert vec.estimate_at(lambda r: intensities[r]) == ref.estimate_at(
            lambda r: intensities[r]
        )

    def test_chain_profiles_bit_identical(self, chain_dag):
        plan = DeploymentPlan(
            {"a": "us-west-2", "b": "ca-central-1", "c": "us-east-1"}
        )
        vec = self._profile(chain_dag, plan, vectorized=True)
        ref = self._profile(chain_dag, plan, vectorized=False)
        assert np.array_equal(vec.latencies, ref.latencies)
        assert np.array_equal(vec.costs, ref.costs)


class TestClientRegion:
    """The invocation client is distinct from the KV region: shifting
    the start node must not make the end-user input transfer free."""

    class InputHeavy(FixtureData):
        def input_size_dist(self):
            return EmpiricalDistribution([50e6])

    def test_shifted_start_node_pays_input_transfer(self, chain_dag):
        est = make_estimator(
            chain_dag, self.InputHeavy(edge_bytes=1e3),
            scenario=TransmissionScenario.worst_case(),
            client_region="us-east-1",
        )
        shifted = DeploymentPlan.single_region(chain_dag, "us-west-1")
        profile = est.estimate_profile(shifted)
        # Input bytes cross from the client to the shifted start node.
        assert ("us-east-1", "us-west-1") in profile.bytes_by_route
        assert np.all(
            profile.bytes_by_route[("us-east-1", "us-west-1")] == 50e6
        )

    def test_default_client_follows_kv_then_plan(self, chain_dag):
        # Without client_region or kv_region the legacy fallback keeps
        # the client co-located with the start node (documented).
        est = make_estimator(chain_dag, self.InputHeavy(edge_bytes=1e3))
        shifted = DeploymentPlan.single_region(chain_dag, "us-west-1")
        profile = est.estimate_profile(shifted)
        assert ("us-west-1", "us-west-1") in profile.bytes_by_route
        assert ("us-east-1", "us-west-1") not in profile.bytes_by_route

    def test_input_transfer_raises_carbon_when_shifted(self, chain_dag):
        # Worst case: intra free, inter expensive.  With an explicit
        # client the shifted plan shows input-transfer carbon; the
        # home plan does not.
        worst = TransmissionScenario.worst_case()
        est = make_estimator(
            chain_dag, self.InputHeavy(edge_bytes=1e3), scenario=worst,
            client_region="us-east-1",
        )
        home = est.estimate(
            DeploymentPlan.single_region(chain_dag, "us-east-1"),
            lambda r: 400.0,
        )
        est2 = make_estimator(
            chain_dag, self.InputHeavy(edge_bytes=1e3), scenario=worst,
            client_region="us-east-1",
        )
        shifted = est2.estimate(
            DeploymentPlan.single_region(chain_dag, "us-west-1"),
            lambda r: 400.0,
        )
        assert shifted.mean_trans_carbon_g > home.mean_trans_carbon_g


class TestConvergence:
    """Degenerate-series behaviour of the stopping rule."""

    def test_single_sample_never_converges(self, chain_dag):
        est = make_estimator(chain_dag)
        assert not est._converged(np.array([1.0]))

    def test_zero_variance_converges(self, chain_dag):
        est = make_estimator(chain_dag)
        assert est._converged(np.full(5, 3.7))

    def test_zero_variance_zero_mean_converges(self, chain_dag):
        # A deterministic all-zero series (e.g. cost under free pricing)
        # is fully known — it must not stall sampling, nor (the old bug)
        # count as converged merely because mean <= 0.
        est = make_estimator(chain_dag)
        assert est._converged(np.zeros(5))

    def test_nonpositive_mean_with_spread_not_converged(self, chain_dag):
        est = make_estimator(chain_dag)
        assert not est._converged(np.array([-1.0, 1.0] * 50))
        assert not est._converged(np.array([-3.0, -1.0] * 50))

    def test_wide_series_not_converged(self, chain_dag):
        est = make_estimator(chain_dag)
        assert not est._converged(np.array([0.1, 100.0, 0.2, 90.0]))


class TestPlanProfile:
    def test_profile_repricing_matches_direct_estimate(self, diamond_dag):
        plan = DeploymentPlan.single_region(diamond_dag, "us-east-1")
        est = make_estimator(diamond_dag, seed=7)
        profile = est.estimate_profile(plan)
        at_400 = profile.estimate_at(lambda r: 400.0)
        at_34 = profile.estimate_at(lambda r: 34.0)
        # Latency/cost are hour-independent; carbon scales exactly.
        assert at_400.mean_latency_s == at_34.mean_latency_s
        assert at_400.mean_cost_usd == at_34.mean_cost_usd
        assert at_400.mean_exec_carbon_g == pytest.approx(
            at_34.mean_exec_carbon_g * 400 / 34, rel=1e-9
        )

    def test_carbon_samples_shape(self, chain_dag):
        est = make_estimator(chain_dag)
        profile = est.estimate_profile(
            DeploymentPlan.single_region(chain_dag, "us-east-1")
        )
        samples = profile.carbon_samples(lambda r: 100.0)
        assert len(samples) == profile.n_samples
        assert np.all(samples > 0)
