"""Tests for the Deployment Manager control loop (Fig. 6, §5.2)."""


from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.core.manager import DeploymentManager
from repro.core.solver import SolverSettings
from repro.experiments.harness import deploy_benchmark, warm_up
from repro.metrics.carbon import TransmissionScenario

FAST_SOLVER = SolverSettings(batch_size=30, max_samples=60, cov_threshold=0.2,
                             alpha_per_node_region=2)


def make_dm(app_name="rag_ingestion", use_token_bucket=True, seed=2,
            use_forecast=False):
    cloud = SimulatedCloud(seed=seed)
    app = get_app(app_name)
    deployed, executor, utility = deploy_benchmark(app, cloud)
    dm = DeploymentManager(
        deployed, executor, utility,
        scenario=TransmissionScenario.best_case(),
        solver_settings=FAST_SOLVER,
        use_token_bucket=use_token_bucket,
        use_forecast=use_forecast,
    )
    return cloud, app, deployed, executor, dm


class TestCheckCycle:
    def test_check_without_traffic_does_not_solve(self):
        cloud, app, deployed, executor, dm = make_dm()
        report = dm.check()
        assert not report.solved
        assert report.invocations_in_period == 0
        assert report.next_check_delay_s > 0

    def test_check_collects_metrics(self):
        cloud, app, deployed, executor, dm = make_dm()
        warm_up(executor, app, "small", n=5)
        report = dm.check()
        assert report.new_records > 0
        assert dm.metrics.invocation_count == 5

    def test_insufficient_tokens_no_solve(self):
        from repro.core.trigger import TokenBucket, TriggerSettings

        cloud, app, deployed, executor, dm = make_dm()
        # Make solving prohibitively expensive so earned tokens can
        # never cover even a daily solve.
        dm.bucket = TokenBucket(
            n_nodes=2, n_regions=4,
            settings=TriggerSettings(solve_seconds_per_node_region=1e6),
        )
        warm_up(executor, app, "small", n=2)
        report = dm.check()
        assert not report.solved
        assert report.tokens_g < report.solve_cost_quote_g
        # Nothing was charged: solve_cost_g reports actual consumption.
        assert report.solve_cost_g == 0.0

    def test_sufficient_tokens_triggers_solve(self):
        cloud, app, deployed, executor, dm = make_dm()
        warm_up(executor, app, "small", n=10)
        dm.bucket.tokens_g = dm.bucket.capacity_g  # fund it directly
        report = dm.check()
        assert report.solved
        assert report.granularity == 24
        assert report.migration is not None and report.migration.activated
        assert dm.plan_history

    def test_daily_granularity_on_tight_budget(self):
        # With a fixed seed, the tokens earned from 10 small invocations
        # land between the daily and the 24-hour solve costs, so the
        # manager degrades to the daily granularity (§5.2).
        cloud, app, deployed, executor, dm = make_dm()
        warm_up(executor, app, "small", n=10)
        report = dm.check()
        assert report.solved
        assert report.granularity == 1
        # Could not afford the full 24-hour solve...
        assert report.tokens_g < report.solve_cost_quote_g
        # ...so it was charged the cheaper daily price, not the quote.
        assert 0.0 < report.solve_cost_g < report.solve_cost_quote_g

    def test_fixed_frequency_mode_always_solves(self):
        cloud, app, deployed, executor, dm = make_dm(use_token_bucket=False)
        warm_up(executor, app, "small", n=5)
        report = dm.check()
        assert report.solved
        assert report.granularity == 24

    def test_solve_now_forces_solve(self):
        cloud, app, deployed, executor, dm = make_dm()
        warm_up(executor, app, "small", n=5)
        report = dm.solve_now(granularity_hours=1)
        assert report.activated

    def test_expired_plan_cleared_on_check(self):
        cloud, app, deployed, executor, dm = make_dm(use_token_bucket=False)
        warm_up(executor, app, "small", n=5)
        dm._plan_lifetime = 10.0  # expire almost immediately
        dm.check()
        cloud.env.clock.advance(3600.0)
        dm.check()  # sees the expired plan
        # New solve replaced it, but if we expire again without solving:
        dm2_plan = executor.fetch_active_plan()
        assert dm2_plan.covers(deployed.dag)

    def test_reports_accumulate(self):
        cloud, app, deployed, executor, dm = make_dm()
        dm.check()
        cloud.env.clock.advance(3600.0)
        dm.check()
        assert len(dm.reports) == 2
        assert dm.reports[0].time_s < dm.reports[1].time_s


class TestScheduledLoop:
    def test_run_for_schedules_recurring_checks(self):
        cloud, app, deployed, executor, dm = make_dm()
        warm_up(executor, app, "small", n=5)
        dm.run_for(2 * SECONDS_PER_DAY)
        cloud.run_until_idle()
        assert len(dm.reports) >= 2
        # Checks respect the sigmoid cadence bounds.
        for a, b in zip(dm.reports, dm.reports[1:]):
            gap = b.time_s - a.time_s
            assert gap >= dm.bucket.settings.min_check_period_s * 0.99

    def test_forecast_refit_daily(self):
        cloud, app, deployed, executor, dm = make_dm(use_forecast=True, seed=3)
        # Advance past one week so refit has history.
        cloud.env.clock.advance(8 * SECONDS_PER_DAY)
        warm_up(executor, app, "small", n=3)
        dm.check()
        assert dm.metrics.forecasts.has_forecast("us-east-1")


class TestRealizedSavings:
    def test_savings_measured_from_split_traffic(self):
        cloud, app, deployed, executor, dm = make_dm(seed=7)
        # Home-routed traffic.
        warm_up(executor, app, "small", n=5)
        # Plan-routed traffic in the clean region.
        from repro.model.plan import DeploymentPlan, HourlyPlanSet

        plan_set = HourlyPlanSet.daily(
            DeploymentPlan.single_region(deployed.dag, "ca-central-1")
        )
        dm.migrator.migrate(plan_set)
        for _ in range(5):
            executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        saving = dm._realized_savings(0.0, cloud.now() + 1)
        assert saving > 0.0

    def test_no_routed_traffic_no_savings(self):
        cloud, app, deployed, executor, dm = make_dm(seed=8)
        warm_up(executor, app, "small", n=3)
        assert dm._realized_savings(0.0, cloud.now() + 1) == 0.0


class TestPermittedRegionEarning:
    """§5.2 regression: tokens are earned against the cleanest region
    the workflow is *permitted* to run in, not the provider's cleanest
    region."""

    def _restricted_dm(self, seed=2):
        from repro.apps.base import default_config

        cloud = SimulatedCloud(seed=seed)
        app = get_app("rag_ingestion")
        # Forbid the overwhelmingly cleanest region for every function.
        config = default_config(
            disallowed_regions=frozenset({"ca-central-1"})
        )
        deployed, executor, utility = deploy_benchmark(
            app, cloud, config=config
        )
        dm = DeploymentManager(
            deployed, executor, utility,
            scenario=TransmissionScenario.best_case(),
            solver_settings=FAST_SOLVER,
        )
        return cloud, app, executor, dm

    def test_earn_regions_exclude_disallowed(self):
        _, _, _, dm = self._restricted_dm()
        assert "ca-central-1" not in dm._earn_regions
        assert dm._earn_regions  # never empty

    def test_restricted_workflow_earns_fewer_tokens(self):
        cloud_r, app_r, executor_r, dm_r = self._restricted_dm()
        warm_up(executor_r, app_r, "small", n=10)
        report_r = dm_r.check()

        cloud_u, app_u, _, executor_u, dm_u = make_dm()
        warm_up(executor_u, app_u, "small", n=10)
        report_u = dm_u.check()

        # Same seed and traffic: the only difference is the compliance
        # restriction, which shrinks the earnable intensity differential.
        earned_r = report_r.tokens_g + report_r.solve_cost_g
        earned_u = report_u.tokens_g + report_u.solve_cost_g
        assert earned_r < earned_u


class TestPersistentEvaluationCache:
    def test_cache_reused_across_checks(self):
        cloud, app, deployed, executor, dm = make_dm(use_token_bucket=False)
        warm_up(executor, app, "small", n=5)
        dm.check()
        assert dm.evaluation_cache.profiles_cached > 0
        hits_before = dm.solver_stats.profile_cache_hits
        # No new traffic between checks: the learned inputs are
        # unchanged, so the second solve reads the first solve's cache.
        cloud.env.clock.advance(3600.0)
        dm.check()
        assert dm.evaluation_cache.invalidations == 0
        assert dm.solver_stats.profile_cache_hits > hits_before

    def test_cache_invalidated_when_metrics_change(self):
        cloud, app, deployed, executor, dm = make_dm(use_token_bucket=False)
        warm_up(executor, app, "small", n=5)
        dm.check()
        assert dm.evaluation_cache.profiles_cached > 0
        # New telemetry arrives: the next collect bumps the metrics
        # version and the stale cache must be dropped.
        warm_up(executor, app, "small", n=3)
        cloud.env.clock.advance(3600.0)
        dm.check()
        assert dm.evaluation_cache.invalidations >= 1


class TestPlanExpiry:
    def test_expired_plan_kv_deleted_and_traffic_reverts_home(self):
        from repro.core.trigger import TokenBucket, TriggerSettings

        cloud, app, deployed, executor, dm = make_dm()
        warm_up(executor, app, "small", n=5)
        dm._plan_lifetime = 10.0
        dm.solve_now(granularity_hours=1)
        active, _ = deployed.kv().get(
            deployed.meta_table, "active_plan",
            caller_region=deployed.kv_region, workflow=deployed.name,
        )
        assert active is not None
        # Starve the bucket so the expiry check cannot re-solve.
        dm.bucket = TokenBucket(
            n_nodes=2, n_regions=4,
            settings=TriggerSettings(solve_seconds_per_node_region=1e6),
        )
        cloud.env.clock.advance(3600.0)
        report = dm.check()
        assert not report.solved
        active, _ = deployed.kv().get(
            deployed.meta_table, "active_plan",
            caller_region=deployed.kv_region, workflow=deployed.name,
        )
        assert active is None
        home = deployed.config.home_region
        fallback = executor.fetch_active_plan()
        assert set(fallback.assignments.values()) == {home}


class TestLateRegistration:
    """The earn window opens at registration time, not t=0.

    Regression: ``_last_check_s`` used to fall back to 0.0, so a
    workflow brought under management at t >> 0 counted (and earned
    against) its entire pre-registration history in the first check.
    """

    def _deploy_with_history(self, n_before=7, registered_at_s=6 * 3600.0):
        cloud = SimulatedCloud(seed=2)
        app = get_app("rag_ingestion")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        warm_up(executor, app, "small", n=n_before)  # pre-management traffic
        cloud.env.run(until=registered_at_s)
        dm = DeploymentManager(
            deployed, executor, utility,
            scenario=TransmissionScenario.best_case(),
            solver_settings=FAST_SOLVER,
            use_forecast=False,
        )
        return cloud, app, executor, dm

    def test_fresh_manager_ignores_pre_registration_history(self):
        cloud, app, executor, dm = self._deploy_with_history()
        report = dm.check()
        # The history is still *collected* into the metrics store...
        assert report.new_records > 0
        # ...but the first earn window is [registration, now), which is
        # empty here — not [0, now), which held all 7 invocations.
        assert report.invocations_in_period == 0

    def test_first_window_counts_only_post_registration_traffic(self):
        cloud, app, executor, dm = self._deploy_with_history()
        warm_up(executor, app, "small", n=3)  # post-registration traffic
        report = dm.check()
        assert report.invocations_in_period == 3
