"""Tests for the distributed key-value store (DynamoDB substitute)."""

import pytest

from repro.common.errors import ConditionalCheckFailed, KeyValueStoreError


@pytest.fixture
def kv(cloud):
    return cloud.kvstore("us-east-1")


class TestBasicOps:
    def test_put_get_roundtrip(self, kv):
        kv.put("t", "k", {"a": 1})
        value, _lat = kv.get("t", "k")
        assert value == {"a": 1}

    def test_get_missing_returns_default(self, kv):
        value, _ = kv.get("t", "nope", default="fallback")
        assert value == "fallback"

    def test_values_are_isolated_copies(self, kv):
        original = {"nested": [1, 2]}
        kv.put("t", "k", original)
        original["nested"].append(3)  # caller mutation must not leak in
        value, _ = kv.get("t", "k")
        assert value == {"nested": [1, 2]}
        value["nested"].append(99)  # reader mutation must not leak back
        again, _ = kv.get("t", "k")
        assert again == {"nested": [1, 2]}

    def test_delete(self, kv):
        kv.put("t", "k", 1)
        kv.delete("t", "k")
        value, _ = kv.get("t", "k")
        assert value is None

    def test_scan(self, kv):
        kv.put("t", "a", 1)
        kv.put("t", "b", 2)
        table, _ = kv.scan("t")
        assert table == {"a": 1, "b": 2}


class TestAtomicOps:
    def test_update_applies_function(self, kv):
        kv.put("t", "k", 10)
        new, _ = kv.update("t", "k", lambda v: v + 5)
        assert new == 15
        assert kv.get("t", "k")[0] == 15

    def test_update_with_default(self, kv):
        new, _ = kv.update("t", "fresh", lambda v: (v or []) + ["x"])
        assert new == ["x"]

    def test_increment(self, kv):
        assert kv.increment("t", "ctr")[0] == 1
        assert kv.increment("t", "ctr", 2)[0] == 3

    def test_increment_non_numeric_raises(self, kv):
        kv.put("t", "k", "text")
        with pytest.raises(KeyValueStoreError):
            kv.increment("t", "k")

    def test_conditional_put_succeeds_on_match(self, kv):
        kv.put("t", "k", "v1")
        kv.conditional_put("t", "k", expected="v1", value="v2")
        assert kv.get("t", "k")[0] == "v2"

    def test_conditional_put_fails_on_mismatch(self, kv):
        kv.put("t", "k", "v1")
        with pytest.raises(ConditionalCheckFailed):
            kv.conditional_put("t", "k", expected="other", value="v2")
        assert kv.get("t", "k")[0] == "v1"


class TestLatencyAndMetering:
    def test_local_access_is_base_latency(self, kv):
        latency = kv.put("t", "k", 1, caller_region="us-east-1")
        assert latency == pytest.approx(0.004)

    def test_remote_access_pays_rtt(self, cloud):
        kv = cloud.kvstore("us-east-1")
        remote = kv.put("t", "k", 1, caller_region="us-west-1")
        rtt = cloud.latency_source.rtt("us-west-1", "us-east-1")
        assert remote == pytest.approx(0.004 + rtt)

    def test_accesses_metered(self, cloud):
        kv = cloud.kvstore("us-east-1")
        kv.put("t", "k", 1, workflow="wf")
        kv.get("t", "k", workflow="wf")
        records = cloud.ledger.kv_accesses_for("wf")
        assert len(records) == 2
        assert [r.write for r in records] == [True, False]

    def test_failed_cas_still_charges_write(self, cloud):
        kv = cloud.kvstore("us-east-1")
        kv.put("t", "k", "v1", workflow="wf")
        with pytest.raises(ConditionalCheckFailed):
            kv.conditional_put("t", "k", "wrong", "v2", workflow="wf")
        writes = [r for r in cloud.ledger.kv_accesses_for("wf") if r.write]
        assert len(writes) == 2
