"""Tests for the discrete-event simulation core."""

import pytest

from repro.cloud.simulator import SimulationEnvironment


class TestScheduling:
    def test_events_run_in_time_order(self):
        env = SimulationEnvironment()
        order = []
        env.schedule(3.0, lambda: order.append("c"))
        env.schedule(1.0, lambda: order.append("a"))
        env.schedule(2.0, lambda: order.append("b"))
        env.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_run_fifo(self):
        env = SimulationEnvironment()
        order = []
        for tag in ("first", "second", "third"):
            env.schedule(1.0, lambda t=tag: order.append(t))
        env.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        env = SimulationEnvironment()
        times = []
        env.schedule(5.0, lambda: times.append(env.now()))
        env.run_until_idle()
        assert times == [5.0]
        assert env.now() == 5.0

    def test_negative_delay_rejected(self):
        env = SimulationEnvironment()
        with pytest.raises(ValueError):
            env.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        env = SimulationEnvironment()
        env.schedule(5.0, lambda: None)
        env.run_until_idle()
        with pytest.raises(ValueError):
            env.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        env = SimulationEnvironment()
        seen = []

        def outer():
            seen.append(("outer", env.now()))
            env.schedule(2.0, lambda: seen.append(("inner", env.now())))

        env.schedule(1.0, outer)
        env.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_cancelled_event_does_not_run(self):
        env = SimulationEnvironment()
        seen = []
        handle = env.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        env.run_until_idle()
        assert seen == []
        assert not handle.pending


class TestRun:
    def test_run_until_horizon(self):
        env = SimulationEnvironment()
        seen = []
        env.schedule(1.0, lambda: seen.append(1))
        env.schedule(10.0, lambda: seen.append(10))
        executed = env.run(until=5.0)
        assert executed == 1
        assert seen == [1]
        assert env.now() == 5.0  # clock left at the horizon

    def test_remaining_event_runs_later(self):
        env = SimulationEnvironment()
        seen = []
        env.schedule(10.0, lambda: seen.append(10))
        env.run(until=5.0)
        env.run_until_idle()
        assert seen == [10]

    def test_max_events_bound(self):
        env = SimulationEnvironment()

        def reschedule():
            env.schedule(1.0, reschedule)

        env.schedule(1.0, reschedule)
        executed = env.run(max_events=50)
        assert executed == 50

    def test_events_executed_counter(self):
        env = SimulationEnvironment()
        for i in range(5):
            env.schedule(float(i), lambda: None)
        env.run_until_idle()
        assert env.events_executed == 5

    def test_peek_time_skips_cancelled(self):
        env = SimulationEnvironment()
        h = env.schedule(1.0, lambda: None)
        env.schedule(2.0, lambda: None)
        h.cancel()
        assert env.peek_time() == 2.0

    def test_idle_peek_is_none(self):
        assert SimulationEnvironment().peek_time() is None
