"""Tests for the discrete-event simulation core."""

import pytest

from repro.cloud.simulator import SimulationEnvironment


class TestScheduling:
    def test_events_run_in_time_order(self):
        env = SimulationEnvironment()
        order = []
        env.schedule(3.0, lambda: order.append("c"))
        env.schedule(1.0, lambda: order.append("a"))
        env.schedule(2.0, lambda: order.append("b"))
        env.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_ties_run_fifo(self):
        env = SimulationEnvironment()
        order = []
        for tag in ("first", "second", "third"):
            env.schedule(1.0, lambda t=tag: order.append(t))
        env.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        env = SimulationEnvironment()
        times = []
        env.schedule(5.0, lambda: times.append(env.now()))
        env.run_until_idle()
        assert times == [5.0]
        assert env.now() == 5.0

    def test_negative_delay_rejected(self):
        env = SimulationEnvironment()
        with pytest.raises(ValueError):
            env.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        env = SimulationEnvironment()
        env.schedule(5.0, lambda: None)
        env.run_until_idle()
        with pytest.raises(ValueError):
            env.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        env = SimulationEnvironment()
        seen = []

        def outer():
            seen.append(("outer", env.now()))
            env.schedule(2.0, lambda: seen.append(("inner", env.now())))

        env.schedule(1.0, outer)
        env.run_until_idle()
        assert seen == [("outer", 1.0), ("inner", 3.0)]

    def test_cancelled_event_does_not_run(self):
        env = SimulationEnvironment()
        seen = []
        handle = env.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        env.run_until_idle()
        assert seen == []
        assert not handle.pending


class TestRun:
    def test_run_until_horizon(self):
        env = SimulationEnvironment()
        seen = []
        env.schedule(1.0, lambda: seen.append(1))
        env.schedule(10.0, lambda: seen.append(10))
        executed = env.run(until=5.0)
        assert executed == 1
        assert seen == [1]
        assert env.now() == 5.0  # clock left at the horizon

    def test_remaining_event_runs_later(self):
        env = SimulationEnvironment()
        seen = []
        env.schedule(10.0, lambda: seen.append(10))
        env.run(until=5.0)
        env.run_until_idle()
        assert seen == [10]

    def test_max_events_bound(self):
        env = SimulationEnvironment()

        def reschedule():
            env.schedule(1.0, reschedule)

        env.schedule(1.0, reschedule)
        executed = env.run(max_events=50)
        assert executed == 50

    def test_events_executed_counter(self):
        env = SimulationEnvironment()
        for i in range(5):
            env.schedule(float(i), lambda: None)
        env.run_until_idle()
        assert env.events_executed == 5

    def test_peek_time_skips_cancelled(self):
        env = SimulationEnvironment()
        h = env.schedule(1.0, lambda: None)
        env.schedule(2.0, lambda: None)
        h.cancel()
        assert env.peek_time() == 2.0

    def test_idle_peek_is_none(self):
        assert SimulationEnvironment().peek_time() is None

    def test_max_events_counts_executions_only(self):
        """Cancelled entries skipped by the loop must not consume the
        ``max_events`` budget (the old loop's double-bookkeeping bug)."""
        env = SimulationEnvironment()
        seen = []
        cancelled = [env.schedule(float(i) * 0.1, lambda: None) for i in range(10)]
        for h in cancelled:
            h.cancel()
        for i in range(5):
            env.schedule(10.0 + i, lambda i=i: seen.append(i))
        executed = env.run(max_events=5)
        assert executed == 5
        assert seen == [0, 1, 2, 3, 4]


class TestHandleLifecycle:
    def test_pending_false_after_execution(self):
        env = SimulationEnvironment()
        handle = env.schedule(1.0, lambda: None)
        assert handle.pending and not handle.executed
        env.run_until_idle()
        assert not handle.pending
        assert handle.executed
        assert not handle.cancelled

    def test_cancel_after_execution_is_noop(self):
        env = SimulationEnvironment()
        seen = []
        handle = env.schedule(1.0, lambda: seen.append("x"))
        env.run_until_idle()
        assert handle.cancel() is False  # already ran: nothing to cancel
        assert handle.executed and not handle.cancelled
        assert seen == ["x"]

    def test_cancel_reports_success_exactly_once(self):
        env = SimulationEnvironment()
        handle = env.schedule(1.0, lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert handle.cancelled and not handle.pending and not handle.executed

    def test_time_property_survives_lifecycle(self):
        env = SimulationEnvironment()
        handle = env.schedule(2.5, lambda: None)
        assert handle.time == 2.5
        env.run_until_idle()
        assert handle.time == 2.5


class TestCompaction:
    def test_cancellation_churn_keeps_heap_bounded(self):
        """Retry-timer churn: schedule far-future timers and cancel them
        every tick.  Lazy deletion alone would grow the heap linearly
        with churn; compaction must keep it O(live events)."""
        env = SimulationEnvironment()
        watchdogs = []
        peak = [0]

        def tick(i: int) -> None:
            for h in watchdogs:
                h.cancel()
            watchdogs.clear()
            peak[0] = max(peak[0], env.heap_size)
            if i < 2000:
                for k in range(3):
                    watchdogs.append(env.schedule(3600.0 + k, lambda: None))
                env.schedule(1.0, lambda: tick(i + 1))

        env.schedule(0.0, lambda: tick(0))
        env.run_until_idle()
        assert env.compactions > 0
        # 6000 cancellations happened; the heap never held more than a
        # small multiple of the live set (4 live events + compaction
        # floor of 64 + slack while the ratio builds to the trigger).
        assert peak[0] < 300

    def test_pending_events_excludes_cancelled(self):
        env = SimulationEnvironment()
        live = env.schedule(1.0, lambda: None)
        dead = [env.schedule(2.0, lambda: None) for _ in range(5)]
        for h in dead:
            h.cancel()
        assert env.pending_events == 1
        assert env.heap_size == 6  # lazy: entries still buried
        env.run_until_idle()
        assert live.executed
        assert env.pending_events == 0

    def test_compaction_preserves_order(self):
        env = SimulationEnvironment()
        order = []
        # Enough cancellations to force several compactions interleaved
        # with live events at fixed times.
        for i in range(50):
            env.schedule(float(i), lambda i=i: order.append(i))
        doomed = [env.schedule(1000.0, lambda: order.append("dead"))
                  for _ in range(500)]
        for h in doomed:
            h.cancel()
        env.run_until_idle()
        assert env.compactions > 0
        assert order == list(range(50))
