"""Edge-case backfill for the forecaster and the temporal shifter.

Covers the corners the mainline suites skip: hour wraparound across the
(DST-less) virtual midnight, degenerate forecast inputs, single-hour
plan sets, and zero-delay passthrough.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_HOUR, VirtualClock
from repro.core.temporal import TemporalPolicy, TemporalShifter
from repro.experiments.harness import deploy_benchmark
from repro.metrics.forecast import (
    HoltWintersForecaster,
    HoltWintersParams,
    mape,
)
from repro.model.plan import DeploymentPlan, HourlyPlanSet


def daily_series(days: int, amplitude: float = 50.0, base: float = 300.0):
    hours = np.arange(days * 24)
    return base + amplitude * np.sin(2 * np.pi * (hours % 24) / 24.0)


class TestForecastEdges:
    def test_horizon_zero_rejected(self):
        fc = HoltWintersForecaster().fit(daily_series(7))
        with pytest.raises(ValueError, match="horizon must be positive"):
            fc.forecast(0)

    def test_horizon_negative_rejected(self):
        fc = HoltWintersForecaster().fit(daily_series(7))
        with pytest.raises(ValueError, match="horizon must be positive"):
            fc.forecast(-3)

    def test_unfitted_forecast_rejected(self):
        with pytest.raises(RuntimeError, match="must be fitted"):
            HoltWintersForecaster().forecast(24)

    def test_fewer_than_two_seasons_rejected(self):
        with pytest.raises(ValueError, match="at least 48 observations"):
            HoltWintersForecaster().fit(daily_series(7)[:47])

    def test_exactly_two_seasons_accepted(self):
        fc = HoltWintersForecaster(
            params=HoltWintersParams(0.3, 0.05, 0.3)
        ).fit(daily_series(2))
        assert fc.is_fitted
        assert len(fc.forecast(24)) == 24

    def test_non_finite_series_rejected(self):
        bad = daily_series(7)
        bad[10] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            HoltWintersForecaster().fit(bad)

    def test_season_length_below_two_rejected(self):
        with pytest.raises(ValueError, match="season_length"):
            HoltWintersForecaster(season_length=1)

    def test_forecast_never_negative(self):
        # A steeply decreasing trend would extrapolate below zero.
        y = np.linspace(100.0, 1.0, 24 * 7)
        fc = HoltWintersForecaster(
            params=HoltWintersParams(0.5, 0.5, 0.1)
        ).fit(y)
        assert (fc.forecast(24 * 14) >= 0.0).all()

    def test_forecast_seasonal_phase_continues_history(self):
        # History ends at hour 167 (= 23 mod 24): the first forecast
        # step is the *next* hour of day (0), wrapping without DST.
        y = daily_series(7)
        fc = HoltWintersForecaster(
            params=HoltWintersParams(0.3, 0.05, 0.3)
        ).fit(y)
        out = fc.forecast(48)
        # Same phase one season apart.
        assert out[:24] == pytest.approx(out[24:48], rel=0.2)
        # Peak hour of the forecast matches the history's diurnal peak.
        assert int(np.argmax(out[:24])) == int(np.argmax(y[:24]))

    def test_params_out_of_range_rejected(self):
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                HoltWintersParams(bad, 0.1, 0.1)

    def test_mape_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            mape([], [])

    def test_mape_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mape([1.0, 2.0], [1.0])


class TestClockHourWraparound:
    def test_hour_of_day_wraps_midnight(self):
        clock = VirtualClock()
        clock.advance(23 * SECONDS_PER_HOUR + 1800.0)  # 23:30
        assert clock.hour_of_day() == 23
        clock.advance(SECONDS_PER_HOUR)  # 00:30 next day
        assert clock.hour_of_day() == 0
        assert clock.day_index() == 1

    def test_hour_index_keeps_counting(self):
        clock = VirtualClock()
        clock.advance(25 * SECONDS_PER_HOUR)
        assert clock.hour_index() == 25
        assert clock.hour_of_day() == 1


@pytest.fixture
def shifted_deployment():
    cloud = SimulatedCloud(seed=19)
    app = get_app("dna_visualization")
    deployed, executor, _ = deploy_benchmark(app, cloud)
    return cloud, app, deployed, executor


class TestTemporalEdges:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_delay_s"):
            TemporalPolicy(max_delay_s=-1.0)
        with pytest.raises(ValueError, match="slot_s"):
            TemporalPolicy(max_delay_s=10.0, slot_s=0.0)

    def test_no_policy_passes_straight_through(self, shifted_deployment):
        cloud, app, _, executor = shifted_deployment
        shifter = TemporalShifter(executor)
        decision = shifter.submit(app.make_input("small"))
        assert decision.delay_s == 0.0
        cloud.run_until_idle()
        assert executor.reliability().completed_requests == 1

    def test_zero_max_delay_passes_straight_through(self, shifted_deployment):
        cloud, app, _, executor = shifted_deployment
        shifter = TemporalShifter(executor)
        decision = shifter.submit(
            app.make_input("small"), TemporalPolicy(max_delay_s=0.0)
        )
        assert decision.scheduled_at_s == decision.submitted_at_s
        assert len(decision.slot_intensities) == 1

    def test_single_hour_plan_set_used_for_every_slot(self, shifted_deployment):
        cloud, _, deployed, executor = shifted_deployment
        # An HourlyPlanSet with a single entry covers all 24 hours.
        plan_set = HourlyPlanSet.daily(
            DeploymentPlan.single_region(deployed.dag, "us-east-1")
        )
        executor.stage_plan_set(plan_set)
        cloud.run_until_idle()
        shifter = TemporalShifter(executor)
        for hour in (0, 12, 23):
            value = shifter.slot_intensity(hour * SECONDS_PER_HOUR)
            expected = cloud.carbon_source.intensity_at_hour("us-east-1", hour)
            assert value == pytest.approx(expected)

    def test_tie_breaks_to_earliest_slot(self, shifted_deployment):
        cloud, _, _, executor = shifted_deployment
        shifter = TemporalShifter(executor, intensity_fn=lambda r, h: 100.0)
        start, intensities = shifter.choose_start(
            TemporalPolicy(max_delay_s=4 * SECONDS_PER_HOUR)
        )
        assert start == cloud.now()  # all equal: take "now"
        assert len(intensities) == 5

    def test_midnight_slot_wraparound(self, shifted_deployment):
        cloud, _, _, executor = shifted_deployment
        # Sit at 23:30; a 2-hour tolerance spans slots 23, 0, and 1 of
        # the next day.  Make hour 0 (the wrapped one) the cheapest.
        cloud.env.schedule(23 * SECONDS_PER_HOUR + 1800.0, lambda: None)
        cloud.run_until_idle()
        cheap_hour = 24  # absolute hour index: next day's 00:00

        shifter = TemporalShifter(
            executor,
            intensity_fn=lambda r, h: 1.0 if h == cheap_hour else 100.0,
        )
        start, intensities = shifter.choose_start(
            TemporalPolicy(max_delay_s=2 * SECONDS_PER_HOUR)
        )
        assert start == cheap_hour * SECONDS_PER_HOUR
        assert min(intensities.values()) == 1.0

    def test_never_delays_past_deadline(self, shifted_deployment):
        cloud, app, _, executor = shifted_deployment
        # Every later slot looks better, but the deadline caps the wait.
        shifter = TemporalShifter(
            executor, intensity_fn=lambda r, h: 1000.0 - h
        )
        policy = TemporalPolicy(max_delay_s=3 * SECONDS_PER_HOUR)
        decision = shifter.submit(app.make_input("small"), policy)
        assert decision.delay_s <= policy.max_delay_s
        cloud.run_until_idle()
        assert executor.reliability().completed_requests == 1
