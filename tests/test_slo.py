"""Tests for declarative SLOs over windowed series (`repro.obs.slo`)."""

import pytest

from repro.obs.slo import (
    DEFAULT_BURN_ALERTS,
    DEFAULT_SLOS,
    SloSpec,
    SloTracker,
    evaluate_slos,
    parse_slo,
)


def _hist(metric, window, **quantiles):
    point = {"metric": metric, "window": window, "type": "histogram",
             "count": 10, "sum": 5.0, "buckets": {"1": 10}}
    point.update(quantiles)
    return point


def _ctr(metric, window, value):
    return {"metric": metric, "window": window, "type": "counter",
            "value": value}


# ------------------------------------------------------------------ parsing
class TestParseSlo:
    def test_quantile_spec(self):
        spec = parse_slo("p95(executor.request_latency_s)<=0.8")
        assert spec.kind == "quantile"
        assert spec.metric == "executor.request_latency_s"
        assert spec.quantile == 0.95
        assert spec.threshold == 0.8
        assert spec.target == 0.99

    def test_rate_spec_with_labels(self):
        spec = parse_slo(
            "rate(executor.requests_finished{status=failed}"
            "/executor.requests)<=0.01"
        )
        assert spec.kind == "rate"
        assert spec.metric == "executor.requests_finished{status=failed}"
        assert spec.denominator == "executor.requests"

    def test_ratio_spec_with_target(self):
        spec = parse_slo("ratio(ledger.carbon_g/ledger.requests)<=0.5@0.9")
        assert spec.kind == "ratio"
        assert spec.target == 0.9
        assert spec.budget == pytest.approx(0.1)

    def test_whitespace_tolerated(self):
        spec = parse_slo("  p50( a.b ) <= 2.5 ")
        assert (spec.kind, spec.metric, spec.threshold) == (
            "quantile", "a.b", 2.5,
        )

    @pytest.mark.parametrize("bad", [
        "p95(metric)",               # no threshold
        "metric<=1",                 # no function
        "rate(only_numerator)<=1",   # rate needs a denominator
        "p0(metric)<=1",             # quantile out of range
        "p100(metric)<=1",
        "avg(metric)<=1",            # unknown function
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_budget_never_zero(self):
        assert SloSpec("s", "rate", "m", 1.0, target=1.0).budget > 0


# --------------------------------------------------------------- evaluation
class TestTrackerEvaluation:
    def test_quantile_takes_worst_matching_series(self):
        spec = parse_slo("p95(lat)<=1.0")
        points = [
            _hist("lat{workflow=a}", 0.0, p95=0.4),
            _hist("lat{workflow=b}", 0.0, p95=2.0),
        ]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.windows[0].value == 2.0
        assert not result.windows[0].ok

    def test_label_filter_narrows_match(self):
        spec = parse_slo("p95(lat{workflow=a})<=1.0")
        points = [
            _hist("lat{workflow=a}", 0.0, p95=0.4),
            _hist("lat{workflow=b}", 0.0, p95=2.0),
        ]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.windows[0].value == 0.4
        assert result.met

    def test_rate_missing_numerator_counts_as_zero(self):
        spec = parse_slo("rate(errors/requests)<=0.01")
        points = [_ctr("requests", 0.0, 100.0)]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.windows[0].value == 0.0
        assert result.windows[0].ok

    def test_ratio_missing_numerator_skips_window(self):
        spec = parse_slo("ratio(carbon/requests)<=0.5")
        points = [_ctr("requests", 0.0, 100.0)]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.n_windows == 0
        assert result.met  # vacuous compliance, zero budget spent
        assert result.budget_spent == 0.0

    def test_missing_denominator_skips_window(self):
        spec = parse_slo("rate(errors/requests)<=0.01")
        points = [_ctr("errors", 0.0, 5.0)]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.n_windows == 0

    def test_rate_sums_matching_label_sets(self):
        spec = parse_slo("rate(done{status=failed}/reqs)<=0.05")
        points = [
            _ctr("done{status=failed,workflow=a}", 0.0, 2.0),
            _ctr("done{status=failed,workflow=b}", 0.0, 1.0),
            _ctr("done{status=completed,workflow=a}", 0.0, 97.0),
            _ctr("reqs", 0.0, 100.0),
        ]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.windows[0].value == pytest.approx(0.03)

    def test_histograms_contribute_count_to_rates(self):
        spec = parse_slo("rate(lat/reqs)<=1.0")
        points = [_hist("lat", 0.0), _ctr("reqs", 0.0, 20.0)]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.windows[0].value == pytest.approx(0.5)

    def test_compliance_and_budget_accounting(self):
        spec = parse_slo("p95(lat)<=1.0@0.9")  # budget: 10% of windows
        points = [
            _hist("lat", float(w) * 10.0, p95=(2.0 if w == 0 else 0.5))
            for w in range(5)
        ]
        [result] = SloTracker([spec]).evaluate(points)
        assert result.n_windows == 5
        assert result.n_violations == 1
        assert result.compliance == pytest.approx(0.8)
        assert result.budget_spent == pytest.approx(2.0)  # 20% bad / 10% budget
        assert not result.met

    def test_to_dict_is_report_ready(self):
        spec = parse_slo("p95(lat)<=1.0")
        doc = evaluate_slos([spec], [_hist("lat", 0.0, p95=0.5)])[0]
        assert doc["name"] == spec.name
        assert doc["met"] is True
        assert doc["windows"] == 1 and doc["violations"] == 0
        assert doc["alerts"] == []


# -------------------------------------------------------------- burn alerts
class TestBurnAlerts:
    def _points(self, flags):
        """One histogram window per flag; True = violating (p95 > 1)."""
        return [
            _hist("lat", float(i) * 10.0, p95=(5.0 if bad else 0.1))
            for i, bad in enumerate(flags)
        ]

    def test_fast_burn_fires_on_rising_edge_only(self):
        spec = parse_slo("p95(lat)<=1.0")  # budget 1%: any violation burns
        tracker = SloTracker([spec], burn_alerts=((1, 14.4),))
        [result] = tracker.evaluate(
            self._points([False, True, True, False, True])
        )
        # Two excursions (windows 1-2 and window 4) => two alerts, not
        # one per violating window.
        assert len(result.alerts) == 2
        assert [a["window"] for a in result.alerts] == [10.0, 40.0]
        assert all(a["type"] == "slo_burn" for a in result.alerts)
        assert all(a["span_windows"] == 1 for a in result.alerts)

    def test_no_alerts_when_healthy(self):
        spec = parse_slo("p95(lat)<=1.0")
        [result] = SloTracker([spec]).evaluate(self._points([False] * 6))
        assert result.alerts == []
        assert result.met

    def test_slow_burn_span_smooths_single_blips(self):
        # Budget 50%: a single bad window in a 4-window trailing span is
        # a 0.5 burn — below a 6x threshold, so only the fast span fires.
        spec = parse_slo("p95(lat)<=1.0@0.5")
        tracker = SloTracker([spec], burn_alerts=((1, 2.0), (4, 6.0)))
        [result] = tracker.evaluate(
            self._points([False, True, False, False, False])
        )
        assert [a["span_windows"] for a in result.alerts] == [1]

    def test_default_alert_pair(self):
        assert DEFAULT_BURN_ALERTS == ((1, 14.4), (6, 6.0))

    def test_alert_carries_burn_rate(self):
        spec = parse_slo("p95(lat)<=1.0@0.5")
        tracker = SloTracker([spec], burn_alerts=((1, 2.0),))
        [result] = tracker.evaluate(self._points([True]))
        [alert] = result.alerts
        assert alert["burn_rate"] == pytest.approx(2.0)  # 100% bad / 50% budget
        assert alert["threshold"] == 2.0
        assert alert["slo"] == spec.name


# ----------------------------------------------------------------- defaults
class TestDefaultSlos:
    def test_cover_latency_errors_and_carbon(self):
        kinds = {(s.kind, s.metric) for s in DEFAULT_SLOS}
        assert ("quantile", "executor.request_latency_s") in kinds
        assert ("ratio", "ledger.carbon_g") in kinds
        assert any(s.kind == "rate" for s in DEFAULT_SLOS)

    def test_metrics_exist_in_telemetered_runs(self):
        """Default specs must reference real instrument names, so a bare
        ``--slo`` is never vacuously green for the wrong reason."""
        real = {
            "executor.request_latency_s", "executor.requests",
            "executor.requests_finished", "ledger.carbon_g",
            "ledger.requests",
        }
        for spec in DEFAULT_SLOS:
            for selector in (spec.metric, spec.denominator):
                if selector:
                    assert selector.split("{")[0] in real
