"""Benchmark-harness tests: profiler semantics, BENCH schema, and the
regression gate.

The actual workloads in ``scripts/bench.py`` are exercised end-to-end
by CI's perf-smoke job; here we pin the parts that must not drift —
the document schema, the gate arithmetic, and the phase profiler the
hot paths report into.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    Profiler,
    get_profiler,
    profiled_phase,
    set_profiler,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench", REPO_ROOT / "scripts" / "bench.py"
)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


@pytest.fixture(autouse=True)
def _restore_profiler():
    """Never leak an installed profiler into other tests."""
    previous = get_profiler()
    yield
    set_profiler(previous)


# ------------------------------------------------------------------- profiler
class TestProfiler:
    def test_default_is_noop(self):
        assert get_profiler() is NULL_PROFILER
        assert not NULL_PROFILER.enabled
        with profiled_phase("anything"):
            pass
        assert NULL_PROFILER.snapshot() == {}
        assert NULL_PROFILER.total_s("anything") == 0.0

    def test_accumulates_calls_and_time(self):
        profiler = Profiler()
        set_profiler(profiler)
        for _ in range(3):
            with profiled_phase("work"):
                time.sleep(0.001)
        snap = profiler.snapshot()
        assert snap["work"]["calls"] == 3
        assert snap["work"]["total_s"] >= 0.003
        assert snap["work"]["self_s"] == pytest.approx(
            snap["work"]["total_s"]
        )

    def test_nested_phases_subtract_child_time(self):
        profiler = Profiler()
        set_profiler(profiler)
        with profiled_phase("outer"):
            time.sleep(0.001)
            with profiled_phase("inner"):
                time.sleep(0.002)
        snap = profiler.snapshot()
        assert snap["outer"]["total_s"] >= snap["inner"]["total_s"]
        assert snap["outer"]["self_s"] == pytest.approx(
            snap["outer"]["total_s"] - snap["inner"]["total_s"], abs=1e-4
        )

    def test_set_profiler_returns_previous_and_none_restores(self):
        profiler = Profiler()
        previous = set_profiler(profiler)
        assert get_profiler() is profiler
        set_profiler(None)
        assert get_profiler() is NULL_PROFILER
        set_profiler(previous)

    def test_reset_and_summary(self):
        profiler = Profiler()
        set_profiler(profiler)
        with profiled_phase("p"):
            pass
        assert "p" in profiler.summary()
        profiler.reset()
        assert profiler.snapshot() == {}
        assert NULL_PROFILER.summary() == "(profiling disabled)"

    def test_exception_still_recorded(self):
        profiler = Profiler()
        set_profiler(profiler)
        with pytest.raises(RuntimeError):
            with profiled_phase("boom"):
                raise RuntimeError("x")
        assert profiler.snapshot()["boom"]["calls"] == 1

    def test_hot_paths_report_phases(self):
        """The wired-up hot paths actually hit the profiler."""
        from repro.apps import get_app
        from repro.experiments.harness import run_coarse

        profiler = Profiler()
        set_profiler(profiler)
        run_coarse(
            get_app("text2speech_censoring"), "small", "us-east-1",
            seed=0, n_invocations=2,
        )
        assert profiler.total_s("sim.run") > 0.0


class TestProfilerThreads:
    """Nested-phase accounting when phases open on worker threads (the
    thread solver backend's shape: every worker reports the same phase
    names into one shared profiler)."""

    def test_nesting_is_thread_local(self):
        import threading

        profiler = Profiler()
        set_profiler(profiler)
        n_workers = 4
        barrier = threading.Barrier(n_workers)

        def worker():
            with profiled_phase("outer"):
                barrier.wait()  # all workers inside "outer" at once
                with profiled_phase("inner"):
                    time.sleep(0.002)

        threads = [threading.Thread(target=worker) for _ in range(n_workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = profiler.snapshot()
        assert snap["outer"]["calls"] == n_workers
        assert snap["inner"]["calls"] == n_workers
        # Each worker's inner time subtracts from its OWN outer self
        # time — never from a sibling thread's: self stays >= 0 and
        # below total by at least the summed inner time.
        assert snap["outer"]["self_s"] >= 0.0
        assert snap["outer"]["self_s"] == pytest.approx(
            snap["outer"]["total_s"] - snap["inner"]["total_s"], abs=5e-3
        )

    def test_worker_phase_does_not_nest_under_main_thread(self):
        import threading

        profiler = Profiler()
        set_profiler(profiler)
        with profiled_phase("main"):
            t = threading.Thread(
                target=lambda: profiled_phase("worker").__enter__().__exit__(
                    None, None, None
                )
            )
            t.start()
            t.join()
            time.sleep(0.001)
        snap = profiler.snapshot()
        # The worker's phase ran on its own (empty) stack, so it charged
        # nothing to "main": main's self time equals its total time.
        assert snap["main"]["self_s"] == pytest.approx(
            snap["main"]["total_s"]
        )
        assert snap["worker"]["calls"] == 1

    def test_thread_backend_run_reports_phases(self):
        """End to end: a threaded solve still lands solver phases in the
        shared table, with self_s never exceeding total_s."""
        from repro.apps import get_app
        from repro.experiments.harness import run_caribou

        profiler = Profiler()
        set_profiler(profiler)
        run_caribou(
            get_app("text2speech_censoring"), "small",
            ("us-east-1", "ca-central-1"),
            seed=0, n_invocations=2, jobs=2, backend="thread",
        )
        snap = profiler.snapshot()
        assert snap, "threaded run reported no phases"
        for name, entry in snap.items():
            assert 0.0 <= entry["self_s"] <= entry["total_s"] + 1e-9, name


# ------------------------------------------------------------------- schema
def _valid_doc() -> dict:
    metrics = {
        name: {"unit": "x/s", "value": 100.0}
        for name in bench.THROUGHPUT_METRICS
    }
    for name in bench.LATENCY_METRICS:
        metrics[name] = {"unit": "s", "value": 10.0}
    metrics["tracer_overhead_pct"] = {"unit": "%", "value": 1.5}
    metrics["tracer_sampled_overhead_pct"] = {"unit": "%", "value": 0.3}
    for name in bench.OVERHEAD_METRICS:
        metrics[name] = {"unit": "%", "value": 1.0}
    for name in bench.QUALITY_METRICS:
        metrics[name] = {"unit": "%", "value": 0.5}
    return {
        "app": "text2speech_censoring",
        "label": "test",
        "metrics": metrics,
        "phases": {"solver.solve_hour": {"calls": 2, "self_s": 0.1,
                                         "total_s": 0.2}},
        "schema": bench.BENCH_SCHEMA,
        "smoke": True,
    }


class TestBenchSchema:
    def test_valid_document_passes(self):
        assert bench.validate_bench(_valid_doc()) == []

    def test_committed_baseline_is_valid(self):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_baseline.json").read_text()
        )
        assert bench.validate_bench(baseline) == []
        assert baseline["smoke"] is True

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda d: d.update(schema="nope"), "schema"),
            (lambda d: d.update(label=""), "label"),
            (lambda d: d.update(smoke="yes"), "smoke"),
            (lambda d: d["metrics"].pop("mc_samples_per_s"), "mc_samples"),
            (
                lambda d: d["metrics"]["solver_solves_per_s"].update(value=0),
                "positive",
            ),
            (
                lambda d: d["metrics"]["tracer_overhead_pct"].update(
                    value="fast"
                ),
                "number",
            ),
            (lambda d: d.update(phases=[]), "phases"),
            (
                lambda d: d["phases"]["solver.solve_hour"].pop("calls"),
                "calls",
            ),
        ],
    )
    def test_invalid_documents_flagged(self, mutate, fragment):
        doc = copy.deepcopy(_valid_doc())
        mutate(doc)
        problems = bench.validate_bench(doc)
        assert problems, f"expected problems after {fragment}"
        assert any(fragment in p for p in problems)


# ------------------------------------------------------------------- gate
class TestRegressionGate:
    def test_no_failures_when_equal(self):
        doc = _valid_doc()
        assert bench.check_regression(doc, doc, 2.0) == []

    def test_faster_than_baseline_passes(self):
        current = _valid_doc()
        for name in bench.THROUGHPUT_METRICS:
            current["metrics"][name]["value"] = 500.0
        assert bench.check_regression(current, _valid_doc(), 2.0) == []

    def test_over_2x_slower_fails(self):
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["executor_events_per_s"]["value"] = 40.0
        failures = bench.check_regression(current, _valid_doc(), 2.0)
        assert len(failures) == 1
        assert "executor_events_per_s" in failures[0]

    def test_latency_metric_gated_lower_is_better(self):
        # Wall-clock metrics fail when they GROW past the limit...
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["fleet_solve_wall_s"]["value"] = 25.0
        failures = bench.check_regression(current, _valid_doc(), 2.0)
        assert len(failures) == 1
        assert "fleet_solve_wall_s" in failures[0]
        # ...and shrinking is an improvement, never a regression.
        current["metrics"]["fleet_solve_wall_s"]["value"] = 1.0
        assert bench.check_regression(current, _valid_doc(), 2.0) == []

    def test_exactly_at_limit_passes(self):
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["mc_samples_per_s"]["value"] = 50.0
        assert bench.check_regression(current, _valid_doc(), 2.0) == []

    def test_overhead_metric_not_gated(self):
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["tracer_overhead_pct"]["value"] = 500.0
        assert bench.check_regression(current, _valid_doc(), 2.0) == []

    def test_telemetry_overhead_gated_absolutely(self):
        # The ceiling is absolute: blowing it fails even when the
        # baseline was just as bad (no ratchet laundering).
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["telemetry_overhead_pct"]["value"] = 9.0
        baseline = copy.deepcopy(_valid_doc())
        baseline["metrics"]["telemetry_overhead_pct"]["value"] = 9.0
        failures = bench.check_regression(current, baseline, 2.0)
        assert len(failures) == 1
        assert "telemetry_overhead_pct" in failures[0]

    def test_telemetry_overhead_under_ceiling_passes(self):
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["telemetry_overhead_pct"]["value"] = (
            bench.MAX_TELEMETRY_OVERHEAD_PCT
        )
        # Exactly at the ceiling passes; negative (telemetry run faster,
        # pure noise) passes too.
        assert bench.check_regression(current, _valid_doc(), 2.0) == []
        current["metrics"]["telemetry_overhead_pct"]["value"] = -3.0
        assert bench.check_regression(current, _valid_doc(), 2.0) == []

    def test_telemetry_ceiling_overridable(self):
        current = copy.deepcopy(_valid_doc())
        current["metrics"]["telemetry_overhead_pct"]["value"] = 9.0
        assert bench.check_regression(
            current, _valid_doc(), 2.0, max_overhead_pct=10.0
        ) == []

    def test_missing_metric_skipped(self):
        current = copy.deepcopy(_valid_doc())
        del current["metrics"]["solver_solves_per_s"]
        assert bench.check_regression(current, _valid_doc(), 2.0) == []

    def test_quality_gap_regression_fails_absolutely(self):
        # An injected HBSS quality regression (gap grows past the
        # absolute percentage-point slack) must fail the gate even
        # though the ratio vs a near-zero baseline is meaningless.
        current = copy.deepcopy(_valid_doc())
        baseline = _valid_doc()
        baseline["metrics"]["hbss_carbon_gap_pct"]["value"] = 0.0
        current["metrics"]["hbss_carbon_gap_pct"]["value"] = 2.5
        failures = bench.check_regression(current, baseline, 2.0)
        assert len(failures) == 1
        assert "hbss_carbon_gap_pct" in failures[0]

    def test_quality_gap_within_slack_passes(self):
        current = copy.deepcopy(_valid_doc())
        baseline = _valid_doc()
        baseline["metrics"]["hbss_carbon_gap_pct"]["value"] = 0.0
        current["metrics"]["hbss_carbon_gap_pct"]["value"] = 1.9
        assert bench.check_regression(current, baseline, 2.0) == []
        # The slack is configurable: tighten it and the same gap fails.
        failures = bench.check_regression(
            current, baseline, 2.0, max_quality_pp=1.0
        )
        assert len(failures) == 1

    def test_quality_gap_improvement_passes(self):
        current = copy.deepcopy(_valid_doc())
        baseline = _valid_doc()
        baseline["metrics"]["hbss_carbon_gap_pct"]["value"] = 3.0
        current["metrics"]["hbss_carbon_gap_pct"]["value"] = 0.0
        assert bench.check_regression(current, baseline, 2.0) == []

    def test_negative_quality_gap_invalid(self):
        # exact is a proven optimum: HBSS "beating" it means the exact
        # solver broke, which validation (not the gate) must surface.
        doc = copy.deepcopy(_valid_doc())
        doc["metrics"]["hbss_carbon_gap_pct"]["value"] = -0.5
        assert any(
            "hbss_carbon_gap_pct" in p for p in bench.validate_bench(doc)
        )


# ------------------------------------------------------------------- CLI
@pytest.mark.slow
def test_bench_cli_smoke(tmp_path):
    """Full harness run: emits a valid document and passes its own gate."""
    result = subprocess.run(
        [
            sys.executable, str(REPO_ROOT / "scripts" / "bench.py"),
            "--smoke", "--label", "citest", "--out-dir", str(tmp_path),
        ],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    doc = json.loads((tmp_path / "BENCH_citest.json").read_text())
    assert bench.validate_bench(doc) == []
    assert doc["metrics"]["executor_events_per_s"]["value"] > 0
    assert "mc.estimate_profile" in doc["phases"]
    assert "solver.solve_hour" in doc["phases"]


class TestProfilerThreadSafety:
    def test_concurrent_phases_accumulate_exactly(self):
        import threading

        from repro.obs.profile import Profiler

        profiler = Profiler()
        n_threads, n_calls = 8, 200
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_calls):
                with profiler.phase("outer"):
                    with profiler.phase("inner"):
                        pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = profiler.snapshot()
        assert snap["outer"]["calls"] == n_threads * n_calls
        assert snap["inner"]["calls"] == n_threads * n_calls
        # Nesting is per-thread: inner time subtracts from outer's self
        # time without ever producing a negative residue.
        assert snap["outer"]["self_s"] >= 0.0
        assert snap["outer"]["total_s"] >= snap["inner"]["total_s"]

    def test_nesting_is_thread_local(self):
        import threading

        from repro.obs.profile import Profiler

        profiler = Profiler()
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with profiler.phase("held"):
                entered.set()
                release.wait(timeout=5.0)

        t = threading.Thread(target=holder)
        t.start()
        entered.wait(timeout=5.0)
        # While another thread sits inside "held", this thread's phase
        # must not nest under it (a shared stack would attribute this
        # elapsed time to "held" as child time).
        with profiler.phase("independent"):
            pass
        release.set()
        t.join()
        snap = profiler.snapshot()
        assert snap["independent"]["calls"] == 1
        assert snap["held"]["self_s"] == pytest.approx(
            snap["held"]["total_s"]
        )
