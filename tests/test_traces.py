"""Tests for the synthetic invocation-trace generator."""

import numpy as np
import pytest

from repro.common.clock import SECONDS_PER_DAY
from repro.data.traces import InvocationTrace, azure_like_trace, uniform_trace


class TestUniformTrace:
    def test_count(self):
        trace = uniform_trace(days=2, invocations_per_day=100)
        assert len(trace) == 200

    def test_evenly_spaced(self):
        trace = uniform_trace(days=1, invocations_per_day=4)
        gaps = np.diff(list(trace))
        assert np.allclose(gaps, gaps[0])

    def test_all_within_duration(self):
        trace = uniform_trace(days=1, invocations_per_day=10)
        assert all(0 <= t < SECONDS_PER_DAY for t in trace)

    def test_empty(self):
        trace = uniform_trace(days=1, invocations_per_day=0)
        assert len(trace) == 0


class TestAzureLikeTrace:
    def test_mean_daily_rate(self):
        trace = azure_like_trace(days=7, mean_daily_invocations=1600, seed=0)
        daily = trace.daily_counts()
        assert len(daily) == 7
        # Mean within 15 % of target (§9.7 uses ~1.6K/day).
        assert 1600 * 0.85 < np.mean(daily) < 1600 * 1.15

    def test_timestamps_sorted(self):
        trace = azure_like_trace(days=2, mean_daily_invocations=500, seed=1)
        ts = list(trace)
        assert ts == sorted(ts)

    def test_diurnal_pattern(self):
        trace = azure_like_trace(
            days=14, mean_daily_invocations=5000, diurnal_amplitude=0.8,
            peak_hour=14.0, burstiness=1.0, seed=2,
        )
        hourly = np.array(trace.hourly_counts()).reshape(14, 24).mean(axis=0)
        peak = int(np.argmax(hourly))
        trough = int(np.argmin(hourly))
        assert abs(peak - 14) <= 3
        assert hourly[peak] > 2 * hourly[trough]

    def test_burstiness_increases_variance(self):
        smooth = azure_like_trace(days=7, mean_daily_invocations=2000,
                                  burstiness=1.0, diurnal_amplitude=0.0, seed=3)
        bursty = azure_like_trace(days=7, mean_daily_invocations=2000,
                                  burstiness=8.0, diurnal_amplitude=0.0, seed=3)
        cv = lambda t: np.std(np.diff(list(t))) / np.mean(np.diff(list(t)))
        assert cv(bursty) > cv(smooth)

    def test_deterministic(self):
        a = azure_like_trace(days=1, mean_daily_invocations=100, seed=4)
        b = azure_like_trace(days=1, mean_daily_invocations=100, seed=4)
        assert list(a) == list(b)

    def test_validation(self):
        with pytest.raises(ValueError):
            azure_like_trace(days=0)
        with pytest.raises(ValueError):
            azure_like_trace(days=1, mean_daily_invocations=-5)
        with pytest.raises(ValueError):
            azure_like_trace(days=1, diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            azure_like_trace(days=1, burstiness=0)


class TestInvocationTrace:
    def test_count_in_window(self):
        trace = InvocationTrace((1.0, 2.0, 3.0, 10.0), duration_s=20.0)
        assert trace.count_in(0.0, 5.0) == 3
        assert trace.count_in(5.0, 20.0) == 1

    def test_slice_rebases(self):
        trace = InvocationTrace((1.0, 6.0, 11.0), duration_s=20.0)
        sub = trace.slice(5.0, 15.0)
        assert list(sub) == [1.0, 6.0]
        assert sub.duration_s == 10.0
