"""Tests for the CI coverage-ratchet script (runs it as plain Python)."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).parent.parent / "scripts" / "coverage_ratchet.py"
)
spec = importlib.util.spec_from_file_location("coverage_ratchet", SCRIPT)
ratchet = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ratchet)


def write_report(path, total, files=None):
    files = files or {
        "src/repro/a.py": {
            "summary": {"percent_covered": 50.0, "num_statements": 100}
        },
        "src/repro/b.py": {
            "summary": {"percent_covered": 90.0, "num_statements": 10}
        },
    }
    path.write_text(
        json.dumps({"totals": {"percent_covered": total}, "files": files})
    )


@pytest.fixture
def paths(tmp_path):
    report = tmp_path / "coverage.json"
    floor = tmp_path / "ratchet.json"
    floor.write_text(json.dumps({"min_line_coverage_pct": 70.0}))
    return report, floor


class TestRatchet:
    def test_passes_at_or_above_floor(self, paths, capsys):
        report, floor = paths
        write_report(report, 70.0)
        assert ratchet.main([str(report), "--ratchet-file", str(floor)]) == 0
        out = capsys.readouterr().out
        assert "coverage ratchet OK" in out
        assert "least-covered modules" in out
        assert "src/repro/a.py" in out

    def test_fails_below_floor(self, paths, capsys):
        report, floor = paths
        write_report(report, 69.5)
        assert ratchet.main([str(report), "--ratchet-file", str(floor)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_update_raises_floor(self, paths):
        report, floor = paths
        write_report(report, 85.3)
        assert (
            ratchet.main([str(report), "--update", "--ratchet-file", str(floor)])
            == 0
        )
        assert json.loads(floor.read_text())["min_line_coverage_pct"] == 85.3

    def test_update_never_lowers_floor(self, paths):
        report, floor = paths
        write_report(report, 60.0)
        ratchet.main([str(report), "--update", "--ratchet-file", str(floor)])
        assert json.loads(floor.read_text())["min_line_coverage_pct"] == 70.0

    def test_update_respects_ceiling(self, paths):
        report, floor = paths
        write_report(report, 99.9)
        ratchet.main([str(report), "--update", "--ratchet-file", str(floor)])
        assert (
            json.loads(floor.read_text())["min_line_coverage_pct"]
            == ratchet.CEILING_PCT
        )

    def test_missing_report_is_an_error(self, paths):
        report, floor = paths
        assert ratchet.main([str(report), "--ratchet-file", str(floor)]) == 2

    def test_least_covered_sorted_ascending(self, paths, capsys):
        report, floor = paths
        write_report(report, 75.0)
        ratchet.main([str(report), "--ratchet-file", str(floor)])
        out = capsys.readouterr().out
        assert out.index("src/repro/a.py") < out.index("src/repro/b.py")
