"""Tests for the developer API (Listing 1) and static analysis (§6.1)."""

import pytest

from repro.common.errors import WorkflowDefinitionError
from repro.core.analysis import analyze_workflow, stage_names
from repro.core.api import ExecutionContext, Payload, Workflow


def simple_workflow():
    workflow = Workflow("simple")

    @workflow.serverless_function(name="start", entry_point=True)
    def start(event):
        workflow.invoke_serverless_function({"x": 1}, middle)

    @workflow.serverless_function(name="middle")
    def middle(event):
        workflow.invoke_serverless_function({"x": 2}, "end")

    @workflow.serverless_function(name="end")
    def end(event):
        return event

    return workflow


class TestWorkflowApi:
    def test_registration(self):
        workflow = simple_workflow()
        assert {f.name for f in workflow.functions} == {"start", "middle", "end"}
        assert workflow.entry_function.name == "start"

    def test_duplicate_function_rejected(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="f", entry_point=True)
        def f(event):
            pass

        with pytest.raises(WorkflowDefinitionError, match="duplicate"):
            @workflow.serverless_function(name="f")
            def g(event):
                pass

    def test_empty_name_rejected(self):
        with pytest.raises(WorkflowDefinitionError):
            Workflow("")

    def test_missing_entry_point(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="f")
        def f(event):
            pass

        with pytest.raises(WorkflowDefinitionError, match="entry_point"):
            workflow.entry_function

    def test_region_constraints_parsed(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(
            name="f", entry_point=True,
            regions_and_providers={"allowed_regions": [{"region": "us-east-1"}]},
        )
        def f(event):
            pass

        constraints = workflow.function("f").constraints
        assert constraints.permits("us-east-1")
        assert not constraints.permits("ca-central-1")

    def test_api_outside_execution_raises(self):
        workflow = simple_workflow()
        with pytest.raises(RuntimeError, match="outside"):
            workflow.invoke_serverless_function({}, "middle")
        with pytest.raises(RuntimeError, match="outside"):
            workflow.get_predecessor_data()

    def test_intents_recorded_in_context(self):
        workflow = simple_workflow()
        ctx = ExecutionContext(node="start", request_id="r1")
        workflow.push_context(ctx)
        workflow.function("start").handler({})
        workflow.pop_context()
        assert len(ctx.intents) == 1
        assert ctx.intents[0].target_function == "middle"
        assert ctx.intents[0].conditional_value is True

    def test_intent_call_index_per_target(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="fan", entry_point=True)
        def fan(event):
            for i in range(3):
                workflow.invoke_serverless_function({"i": i}, worker)

        @workflow.serverless_function(name="worker", max_instances=3)
        def worker(event):
            pass

        ctx = ExecutionContext(node="fan", request_id="r1")
        workflow.push_context(ctx)
        workflow.function("fan").handler({})
        workflow.pop_context()
        assert [i.call_index for i in ctx.intents] == [0, 1, 2]

    def test_get_predecessor_data_returns_payloads(self):
        workflow = simple_workflow()
        payloads = [Payload(content=1), Payload(content=2)]
        ctx = ExecutionContext(node="end", request_id="r1",
                               predecessor_data=payloads)
        workflow.push_context(ctx)
        data = workflow.get_predecessor_data()
        workflow.pop_context()
        assert [p.content for p in data] == [1, 2]
        assert ctx.used_get_predecessor_data

    def test_unregistered_target_rejected_at_runtime(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="f", entry_point=True)
        def f(event):
            pass

        ctx = ExecutionContext(node="f", request_id="r1")
        workflow.push_context(ctx)
        with pytest.raises(WorkflowDefinitionError):
            workflow.invoke_serverless_function({}, "ghost")
        workflow.pop_context()

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            Payload(size_bytes=-1)

    def test_pop_empty_context_raises(self):
        with pytest.raises(RuntimeError):
            Workflow("wf").pop_context()


class TestStaticAnalysis:
    def test_simple_chain_extracted(self):
        dag = analyze_workflow(simple_workflow())
        assert dag.node_names == ("start", "middle", "end")
        assert dag.has_edge("start", "middle")
        assert dag.has_edge("middle", "end")  # string-literal target
        assert dag.start_node == "start"

    def test_conditional_edge_detected(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            found = bool(event)
            workflow.invoke_serverless_function({}, b, found)

        @workflow.serverless_function(name="b")
        def b(event):
            pass

        dag = analyze_workflow(workflow)
        assert dag.edge("a", "b").conditional

    def test_literal_true_is_unconditional(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            workflow.invoke_serverless_function({}, b, True)

        @workflow.serverless_function(name="b")
        def b(event):
            pass

        dag = analyze_workflow(workflow)
        assert not dag.edge("a", "b").conditional

    def test_fanout_expands_stages(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            for i in range(3):
                workflow.invoke_serverless_function({}, w)

        @workflow.serverless_function(name="w", max_instances=3)
        def w(event):
            workflow.invoke_serverless_function({}, join)

        @workflow.serverless_function(name="join")
        def join(event):
            workflow.get_predecessor_data()

        dag = analyze_workflow(workflow)
        assert set(dag.node_names) == {"a", "w:0", "w:1", "w:2", "join"}
        assert dag.is_sync_node("join")
        for i in range(3):
            assert dag.has_edge("a", f"w:{i}")
            assert dag.has_edge(f"w:{i}", "join")

    def test_stage_names_helper(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="multi", entry_point=True,
                                      max_instances=2)
        def multi(event):
            pass

        spec = workflow.function("multi")
        assert stage_names(spec) == ("multi:0", "multi:1")

    def test_sync_without_get_predecessor_data_rejected(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            workflow.invoke_serverless_function({}, c)
            workflow.invoke_serverless_function({}, b)

        @workflow.serverless_function(name="b")
        def b(event):
            workflow.invoke_serverless_function({}, c)

        @workflow.serverless_function(name="c")
        def c(event):
            pass  # fan-in but never calls get_predecessor_data

        with pytest.raises(WorkflowDefinitionError, match="get_predecessor_data"):
            analyze_workflow(workflow)

    def test_unknown_target_rejected(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            workflow.invoke_serverless_function({}, "ghost")

        with pytest.raises(WorkflowDefinitionError, match="unknown"):
            analyze_workflow(workflow)

    def test_no_functions_rejected(self):
        with pytest.raises(WorkflowDefinitionError, match="no registered"):
            analyze_workflow(Workflow("empty"))

    def test_multi_instance_entry_rejected(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True, max_instances=2)
        def a(event):
            pass

        with pytest.raises(WorkflowDefinitionError, match="max_instances"):
            analyze_workflow(workflow)

    def test_memory_propagated_to_nodes(self):
        workflow = Workflow("wf")

        @workflow.serverless_function(name="a", entry_point=True, memory_mb=3538)
        def a(event):
            pass

        dag = analyze_workflow(workflow)
        assert dag.node("a").memory_mb == 3538
