"""Tests for the CLI (deployment utility command line, §6.1/§8)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.report import REPORT_SCHEMA


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "dna_visualization"])
        assert args.size == "small"
        assert args.invocations == 20
        assert args.coarse is None

    def test_invalid_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x", "--size", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("dna_visualization", "video_analytics",
                     "text2speech_censoring"):
            assert name in out

    def test_deploy(self, capsys):
        assert main(["deploy", "rag_ingestion"]) == 0
        out = capsys.readouterr().out
        assert "deployed 'rag_ingestion'" in out
        assert "extract_metadata" in out

    def test_deploy_unknown_app(self):
        with pytest.raises(KeyError):
            main(["deploy", "ghost_app"])

    def test_run_coarse(self, capsys):
        assert main(["run", "dna_visualization", "-n", "4",
                     "--coarse", "ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "coarse:ca-central-1" in out
        assert "mgCO2eq/inv" in out

    def test_run_caribou(self, capsys):
        assert main(["run", "rag_ingestion", "-n", "4",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "caribou:" in out
        assert "regions used" in out

    def test_solve_prints_plan(self, capsys):
        assert main(["solve", "rag_ingestion",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "24-hour plan set" in out
        assert "->" in out

    def test_carbon_table(self, capsys):
        assert main(["carbon", "--hours", "3"]) == 0
        out = capsys.readouterr().out
        assert "us-east-1" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 hours


class TestObservabilityFlags:
    def test_run_metrics_dump(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        assert main(["run", "dna_visualization", "-n", "3",
                     "--coarse", "us-east-1",
                     "--metrics", str(metrics_file)]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        snap = json.loads(metrics_file.read_text())
        assert snap  # harness-driven runs always record instruments
        # Flat registry snapshot: counters/gauges are numbers,
        # histograms are {count, sum, mean, min, max} objects.
        assert any(k.startswith("faas.") for k in snap)
        for value in snap.values():
            assert isinstance(value, (int, float, dict))
        # Canonical serialisation: keys arrive sorted.
        assert list(snap) == sorted(snap)

    def test_run_report_writes_valid_document(self, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        assert main(["run", "text2speech_censoring", "-n", "3",
                     "--regions", "us-east-1,ca-central-1",
                     "--report", str(report_file)]) == 0
        doc = json.loads(report_file.read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["run"]["app"] == "text2speech_censoring"
        assert doc["run"]["n_invocations"] == 3
        # --report implies tracing, so the critical-path section exists.
        assert doc["critical_path"]["n_requests"] > 0
        assert doc["per_region"]  # ledger-derived usage present

    def test_report_renders_saved_report(self, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        main(["run", "text2speech_censoring", "-n", "2",
              "--regions", "us-east-1,ca-central-1",
              "--report", str(report_file)])
        capsys.readouterr()
        assert main(["report", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "## Critical path" in out
        assert "## Carbon & cost" in out

    def test_report_analyzes_trace_jsonl(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        main(["run", "text2speech_censoring", "-n", "2",
              "--regions", "us-east-1,ca-central-1",
              "--trace", str(trace_file)])
        capsys.readouterr()
        assert main(["report", str(trace_file), "--requests"]) == 0
        out = capsys.readouterr().out
        assert "requests, total critical-path time" in out
        assert "invocation" in out
        assert "end-to-end" in out  # per-request path renderings

    def test_report_rejects_non_report_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="not a run report"):
            main(["report", str(bogus)])
