"""Tests for the CLI (deployment utility command line, §6.1/§8)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.report import REPORT_SCHEMA


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "dna_visualization"])
        assert args.size == "small"
        assert args.invocations == 20
        assert args.coarse is None

    def test_invalid_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x", "--size", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("dna_visualization", "video_analytics",
                     "text2speech_censoring"):
            assert name in out

    def test_deploy(self, capsys):
        assert main(["deploy", "rag_ingestion"]) == 0
        out = capsys.readouterr().out
        assert "deployed 'rag_ingestion'" in out
        assert "extract_metadata" in out

    def test_deploy_unknown_app(self):
        with pytest.raises(KeyError):
            main(["deploy", "ghost_app"])

    def test_run_coarse(self, capsys):
        assert main(["run", "dna_visualization", "-n", "4",
                     "--coarse", "ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "coarse:ca-central-1" in out
        assert "mgCO2eq/inv" in out

    def test_run_caribou(self, capsys):
        assert main(["run", "rag_ingestion", "-n", "4",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "caribou:" in out
        assert "regions used" in out

    def test_solve_prints_plan(self, capsys):
        assert main(["solve", "rag_ingestion",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "24-hour plan set" in out
        assert "->" in out

    def test_carbon_table(self, capsys):
        assert main(["carbon", "--hours", "3"]) == 0
        out = capsys.readouterr().out
        assert "us-east-1" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 hours


class TestObservabilityFlags:
    def test_run_metrics_dump(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        assert main(["run", "dna_visualization", "-n", "3",
                     "--coarse", "us-east-1",
                     "--metrics", str(metrics_file)]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        snap = json.loads(metrics_file.read_text())
        assert snap  # harness-driven runs always record instruments
        # Flat registry snapshot: counters/gauges are numbers,
        # histograms are {count, sum, mean, min, max} objects.
        assert any(k.startswith("faas.") for k in snap)
        for value in snap.values():
            assert isinstance(value, (int, float, dict))
        # Canonical serialisation: keys arrive sorted.
        assert list(snap) == sorted(snap)

    def test_run_report_writes_valid_document(self, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        assert main(["run", "text2speech_censoring", "-n", "3",
                     "--regions", "us-east-1,ca-central-1",
                     "--report", str(report_file)]) == 0
        doc = json.loads(report_file.read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["run"]["app"] == "text2speech_censoring"
        assert doc["run"]["n_invocations"] == 3
        # --report implies tracing, so the critical-path section exists.
        assert doc["critical_path"]["n_requests"] > 0
        assert doc["per_region"]  # ledger-derived usage present

    def test_report_renders_saved_report(self, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        main(["run", "text2speech_censoring", "-n", "2",
              "--regions", "us-east-1,ca-central-1",
              "--report", str(report_file)])
        capsys.readouterr()
        assert main(["report", str(report_file)]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "## Critical path" in out
        assert "## Carbon & cost" in out

    def test_report_analyzes_trace_jsonl(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        main(["run", "text2speech_censoring", "-n", "2",
              "--regions", "us-east-1,ca-central-1",
              "--trace", str(trace_file)])
        capsys.readouterr()
        assert main(["report", str(trace_file), "--requests"]) == 0
        out = capsys.readouterr().out
        assert "requests, total critical-path time" in out
        assert "invocation" in out
        assert "end-to-end" in out  # per-request path renderings

    def test_report_rejects_non_report_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="not a run report"):
            main(["report", str(bogus)])


class TestTelemetryFlags:
    def test_run_parses_telemetry_flags(self):
        args = build_parser().parse_args(
            ["run", "x", "--timeseries", "s.jsonl", "--window", "60",
             "--slo", "--export-prom", "p.txt"]
        )
        assert args.timeseries == "s.jsonl"
        assert args.window == 60.0
        assert args.slo == [""]  # bare --slo: stock objectives
        assert args.export_prom == "p.txt"

    def test_slo_accepts_explicit_specs(self):
        args = build_parser().parse_args(
            ["run", "x", "--slo", "p95(executor.request_latency_s)<=2",
             "--slo", "ratio(ledger.carbon_g/ledger.requests)<=0.5"]
        )
        assert len(args.slo) == 2

    def test_run_writes_series_prom_and_slo_status(self, tmp_path, capsys):
        series = tmp_path / "run.series.jsonl"
        prom = tmp_path / "run.prom.txt"
        assert main(["run", "text2speech_censoring", "-n", "2",
                     "--regions", "us-east-1,ca-central-1",
                     "--timeseries", str(series),
                     "--export-prom", str(prom), "--slo"]) == 0
        out = capsys.readouterr().out
        assert "timeseries" in out and "points ->" in out
        assert "slo [" in out
        text = series.read_text()
        assert text.startswith('{"schema":"caribou.series/v1"')
        assert "ledger.carbon_g" in text
        assert prom.read_text().startswith("# TYPE caribou_")

    def test_run_without_flags_has_no_telemetry(self, tmp_path, capsys):
        assert main(["run", "text2speech_censoring", "-n", "2",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "timeseries" not in out
        assert "slo [" not in out


class TestDiffDashCommands:
    def _two_series(self, tmp_path, capsys):
        paths = []
        for seed in (1, 7):
            path = tmp_path / f"run{seed}.series.jsonl"
            main(["run", "text2speech_censoring", "-n", "2",
                  "--regions", "us-east-1,ca-central-1",
                  "--seed", str(seed), "--timeseries", str(path)])
            paths.append(str(path))
        capsys.readouterr()
        return paths

    def test_diff_two_seeds_emits_delta_table(self, tmp_path, capsys):
        a, b = self._two_series(tmp_path, capsys)
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert out.startswith("## Series diff:")
        assert "| metric | window |" in out
        assert "changed" in out  # non-empty delta table

    def test_diff_identical_artifacts(self, tmp_path, capsys):
        a, _ = self._two_series(tmp_path, capsys)
        assert main(["diff", a, a]) == 0
        assert "No per-window differences." in capsys.readouterr().out

    def test_dash_renders_sparklines(self, tmp_path, capsys):
        a, _ = self._two_series(tmp_path, capsys)
        assert main(["dash", a]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Caribou run dashboard")
        assert "### Carbon by region (g)" in out

    def test_dash_with_report_shows_slo_budget(self, tmp_path, capsys):
        series = tmp_path / "run.series.jsonl"
        report = tmp_path / "run.report.json"
        main(["run", "text2speech_censoring", "-n", "2",
              "--regions", "us-east-1,ca-central-1",
              "--timeseries", str(series), "--slo",
              "--report", str(report)])
        capsys.readouterr()
        assert main(["dash", str(series), "--report", str(report)]) == 0
        assert "### SLO budget" in capsys.readouterr().out


class TestFleetReportCommand:
    def test_markdown_rollup(self, capsys):
        assert main(["fleet-report", "text2speech_censoring",
                     "-w", "2", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "**workflows**: 2" in out
        assert "| workflow |" in out
        assert "text2speech_censoring-000" in out
        assert "text2speech_censoring-001" in out

    def test_json_rollup(self, capsys):
        assert main(["fleet-report", "text2speech_censoring",
                     "-w", "2", "-n", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workflows"] == 2
        assert doc["checks"] == 2
        assert doc["solves"] == 2
        assert set(doc["per_workflow"]) == {
            "text2speech_censoring-000", "text2speech_censoring-001",
        }
        for entry in doc["per_workflow"].values():
            assert entry["invocations_observed"] == 1
