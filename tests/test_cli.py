"""Tests for the CLI (deployment utility command line, §6.1/§8)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "dna_visualization"])
        assert args.size == "small"
        assert args.invocations == 20
        assert args.coarse is None

    def test_invalid_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x", "--size", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("dna_visualization", "video_analytics",
                     "text2speech_censoring"):
            assert name in out

    def test_deploy(self, capsys):
        assert main(["deploy", "rag_ingestion"]) == 0
        out = capsys.readouterr().out
        assert "deployed 'rag_ingestion'" in out
        assert "extract_metadata" in out

    def test_deploy_unknown_app(self):
        with pytest.raises(KeyError):
            main(["deploy", "ghost_app"])

    def test_run_coarse(self, capsys):
        assert main(["run", "dna_visualization", "-n", "4",
                     "--coarse", "ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "coarse:ca-central-1" in out
        assert "mgCO2eq/inv" in out

    def test_run_caribou(self, capsys):
        assert main(["run", "rag_ingestion", "-n", "4",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "caribou:" in out
        assert "regions used" in out

    def test_solve_prints_plan(self, capsys):
        assert main(["solve", "rag_ingestion",
                     "--regions", "us-east-1,ca-central-1"]) == 0
        out = capsys.readouterr().out
        assert "24-hour plan set" in out
        assert "->" in out

    def test_carbon_table(self, capsys):
        assert main(["carbon", "--hours", "3"]) == 0
        out = capsys.readouterr().out
        assert "us-east-1" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 hours
