"""Structural invariants every trace must satisfy.

Checked on full harness runs — fault-free and under a chaos plan — so
the guarantees hold exactly where they matter most: when retries,
outages, and dead-letters bend the request lifecycle.

* every non-root span links to a parent that exists and opened first;
* after ``finalize()`` every span's interval nests inside its parent's;
* no span outlives its request root (the root covers all of its
  request's work, including executions that straggle past a timeout);
* request-root terminal states tally exactly with the executor's
  :class:`~repro.cloud.faults.ReliabilityStats` counters.
"""

import pytest

from repro.apps import get_app
from repro.cloud.faults import FaultPlan
from repro.core.solver import SolverSettings
from repro.experiments.harness import run_caribou
from repro.obs.trace import SPAN_KINDS, Tracer

SETTINGS = SolverSettings(batch_size=20, max_samples=40, cov_threshold=0.5)
REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")


def _chaos_plan():
    day = 86_400.0
    return (
        FaultPlan()
        .with_region_outage("us-west-2", start_s=1.0 * day, end_s=1.5 * day)
        .with_invocation_failures(0.05)
        .with_kv_latency(3.0, start_s=2.0 * day, end_s=3.0 * day)
    )


def _traced_run(fault_plan):
    tracer = Tracer()
    outcome = run_caribou(
        get_app("text2speech_censoring"),
        "small",
        REGIONS,
        seed=3,
        n_invocations=10,
        warmup=5,
        solver_settings=SETTINGS,
        fault_plan=fault_plan,
        tracer=tracer,
    )
    tracer.finalize()
    return tracer, outcome


@pytest.fixture(scope="module", params=["fault_free", "chaos"])
def traced_run(request):
    plan = _chaos_plan() if request.param == "chaos" else None
    return _traced_run(plan)


class TestTraceInvariants:
    def test_kinds_are_known(self, traced_run):
        tracer, _ = traced_run
        assert {s.kind for s in tracer.spans} <= set(SPAN_KINDS)

    def test_every_parent_exists_and_opened_first(self, traced_run):
        tracer, _ = traced_run
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            assert parent is not None, f"span {span.span_id} orphaned"
            assert parent.span_id < span.span_id
            assert parent.t0 <= span.t0 + 1e-9

    def test_intervals_nest_within_parent(self, traced_run):
        tracer, _ = traced_run
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            assert span.t1 is not None, "finalize() left a span open"
            assert span.t1 >= span.t0
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.t0 <= span.t0 + 1e-9
            assert span.t1 <= parent.t1 + 1e-9

    def test_no_span_outlives_its_request(self, traced_run):
        tracer, _ = traced_run
        roots = {
            s.request_id: s for s in tracer.spans if s.kind == "request"
        }
        for span in tracer.spans:
            if not span.request_id or span.kind == "request":
                continue
            root = roots.get(span.request_id)
            assert root is not None, (
                f"span {span.span_id} references untracked request "
                f"{span.request_id!r}"
            )
            assert span.t1 <= root.t1 + 1e-9

    def test_every_request_reaches_a_terminal_state(self, traced_run):
        tracer, _ = traced_run
        for span in tracer.spans:
            if span.kind == "request":
                assert span.attrs.get("status") in (
                    "completed",
                    "failed",
                    "timed_out",
                )

    def test_request_outcomes_match_reliability_counters(self, traced_run):
        tracer, outcome = traced_run
        stats = outcome.reliability
        tally = {"completed": 0, "failed": 0, "timed_out": 0}
        for span in tracer.spans:
            if span.kind == "request":
                tally[span.attrs["status"]] += 1
        assert sum(tally.values()) == stats.tracked_requests
        assert tally["completed"] == stats.completed_requests
        assert tally["failed"] == stats.failed_requests
        assert tally["timed_out"] == stats.timed_out_requests

    def test_request_roots_are_roots(self, traced_run):
        tracer, _ = traced_run
        for span in tracer.spans:
            if span.kind == "request":
                assert span.parent_id is None

    def test_solver_spans_carry_no_request(self, traced_run):
        tracer, _ = traced_run
        for span in tracer.spans:
            if span.kind in ("solve", "solver_hour", "solver_iteration"):
                assert span.request_id == ""
