"""Tests for the durable service layer (job store, engine, builder)."""

import json

import pytest

from repro.cloud.faults import FaultPlan
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.core.api import Payload
from repro.service import (
    ANALYZED,
    CANCELLED,
    DEPLOYED,
    FAILED,
    JobRecord,
    KVJobStore,
    LocalJobStore,
    MemoryJobStore,
    MONITORING,
    ServiceEngine,
    SOLVED,
    SUBMITTED,
    step_digest,
    task,
    workflow,
)
from repro.service.jobstore import JobStateError

APP = "dna_visualization"


# --------------------------------------------------------------------------
# Job records and the state machine
# --------------------------------------------------------------------------
class TestJobRecord:
    def test_pipeline_advance_and_journal(self):
        record = JobRecord(job_id="j1", app=APP)
        assert record.advance(ANALYZED, 10.0, step="deploy", digest="d1")
        assert record.advance(SOLVED, 20.0, step="solve", digest="d2")
        assert record.state == SOLVED
        assert [e.to_state for e in record.journal] == [ANALYZED, SOLVED]
        assert record.journal[0].time_s == 10.0
        assert record.updated_at_s == 20.0

    def test_advance_is_idempotent(self):
        record = JobRecord(job_id="j1", app=APP)
        record.advance(ANALYZED, 1.0)
        # Re-applying the same (or an earlier) transition is a no-op.
        assert not record.advance(ANALYZED, 2.0)
        assert record.state == ANALYZED
        assert len(record.journal) == 1

    def test_illegal_jump_rejected(self):
        record = JobRecord(job_id="j1", app=APP)
        with pytest.raises(JobStateError, match="illegal jump"):
            record.advance(DEPLOYED, 1.0)

    def test_terminal_states_are_sticky(self):
        record = JobRecord(job_id="j1", app=APP)
        record.fail(5.0, error="boom")
        assert record.state == FAILED
        assert record.is_terminal
        with pytest.raises(JobStateError, match="terminal"):
            record.advance(ANALYZED, 6.0)

    def test_cancel_idempotent(self):
        record = JobRecord(job_id="j1", app=APP)
        assert record.cancel(3.0, note="bye")
        assert record.state == CANCELLED
        assert not record.cancel(4.0)
        assert len(record.journal) == 1

    def test_step_digest_is_stable_and_distinct(self):
        assert step_digest("j1", "solve") == step_digest("j1", "solve")
        assert step_digest("j1", "solve") != step_digest("j1", "deploy")
        assert step_digest("j1", "solve") != step_digest("j2", "solve")

    def test_roundtrip(self):
        record = JobRecord(job_id="j1", app=APP)
        record.advance(ANALYZED, 1.0, step="deploy", digest="d")
        record.record_step("deploy", "d")
        record.artifacts["plan_set"] = {"plans": []}
        clone = JobRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone.state == ANALYZED
        assert clone.steps == {"deploy": "d"}
        assert clone.artifacts["plan_set"] == {"plans": []}
        assert clone.journal[0].to_state == ANALYZED


# --------------------------------------------------------------------------
# Store backends
# --------------------------------------------------------------------------
def _roundtrip(store):
    record = JobRecord(job_id="a-job", app=APP)
    record.advance(ANALYZED, 1.5, step="deploy", digest="xyz")
    store.save(record)
    loaded = store.get("a-job")
    assert loaded.state == ANALYZED
    assert loaded.journal[0].digest == "xyz"
    assert store.job_ids() == ("a-job",)
    assert store.load("ghost") is None
    with pytest.raises(KeyError):
        store.get("ghost")


class TestStores:
    def test_memory_store(self):
        _roundtrip(MemoryJobStore())

    def test_local_store(self, tmp_path):
        _roundtrip(LocalJobStore(str(tmp_path / "jobs.json")))

    def test_kv_store(self):
        cloud = SimulatedCloud(seed=1)
        _roundtrip(KVJobStore(cloud.kvstore("us-east-1"), "us-east-1"))

    def test_local_store_survives_processes(self, tmp_path):
        path = str(tmp_path / "jobs.json")
        record = JobRecord(job_id="j1", app=APP)
        LocalJobStore(path).save(record)
        # A brand-new store object (a new process) sees the record.
        assert LocalJobStore(path).get("j1").state == SUBMITTED

    def test_memory_store_isolates_copies(self):
        store = MemoryJobStore()
        record = JobRecord(job_id="j1", app=APP)
        store.save(record)
        record.state = "SCRIBBLED"
        assert store.get("j1").state == SUBMITTED


# --------------------------------------------------------------------------
# The engine pipeline
# --------------------------------------------------------------------------
def make_engine(seed=7, fault_plan=None, **kwargs):
    cloud = SimulatedCloud(seed=seed, fault_plan=fault_plan)
    store = MemoryJobStore()
    return cloud, store, ServiceEngine(cloud, store, **kwargs)


class TestEnginePipeline:
    def test_submitted_to_monitoring(self):
        cloud, _store, engine = make_engine()
        record = engine.submit(APP)
        assert record.state == SUBMITTED
        steps = engine.run(max_steps=10)
        record = engine.job(record.job_id)
        assert steps == 4
        assert record.state == MONITORING
        assert [e.to_state for e in record.journal] == [
            ANALYZED, SOLVED, DEPLOYED, MONITORING,
        ]
        # Virtual-time stamps are monotone along the journal.
        times = [e.time_s for e in record.journal]
        assert times == sorted(times)
        # The solved plan set is durable on the record.
        assert record.artifacts["plan_set"]["plans_by_hour"]
        # The fleet is actually monitoring: advancing time runs checks.
        cloud.env.run(until=cloud.now() + SECONDS_PER_DAY)
        assert len(engine.fleet.manager_for(record.job_id).reports) >= 1

    def test_unknown_workflow_rejected(self):
        _cloud, _store, engine = make_engine()
        with pytest.raises(KeyError, match="unknown workflow"):
            engine.submit("not-a-workflow")

    def test_duplicate_job_id_rejected(self):
        _cloud, _store, engine = make_engine()
        engine.submit(APP, job_id="dup")
        with pytest.raises(ValueError, match="already exists"):
            engine.submit(APP, job_id="dup")

    def test_two_jobs_of_same_app_are_isolated(self):
        _cloud, _store, engine = make_engine()
        a = engine.submit(APP)
        b = engine.submit(APP)
        engine.run(max_steps=12)
        assert engine.job(a.job_id).state == MONITORING
        assert engine.job(b.job_id).state == MONITORING
        assert set(engine.fleet.workflows) == {a.job_id, b.job_id}

    def test_transition_metrics_counted(self):
        cloud, _store, engine = make_engine()
        record = engine.submit(APP)
        engine.run(max_steps=10)
        snapshot = cloud.metrics.snapshot()
        counted = {
            key: value for key, value in snapshot.items()
            if "service.transitions" in key
        }
        assert counted, snapshot.keys()
        record = engine.job(record.job_id)
        assert record.state == MONITORING


class TestCancel:
    def test_cancel_mid_pipeline(self):
        _cloud, _store, engine = make_engine()
        record = engine.submit(APP)
        engine.tick()  # deploy only
        engine.cancel(record.job_id)
        record = engine.job(record.job_id)
        assert record.state == CANCELLED
        # A cancelled job never runs again.
        assert engine.run(max_steps=5) == 0

    def test_cancel_monitoring_job_stops_check_chain(self):
        cloud, _store, engine = make_engine()
        record = engine.submit(APP)
        engine.run(max_steps=10)
        assert engine.job(record.job_id).state == MONITORING
        manager = engine.fleet.manager_for(record.job_id)
        engine.cancel(record.job_id)
        checks_at_cancel = len(manager.reports)
        cloud.env.run_until_idle()
        # The armed run_for chain was cancelled: no further checks fire.
        assert len(manager.reports) == checks_at_cancel
        assert record.job_id not in engine.fleet.workflows
        assert engine.job(record.job_id).state == CANCELLED


# --------------------------------------------------------------------------
# Crash recovery and idempotent replay
# --------------------------------------------------------------------------
class TestRecovery:
    @pytest.mark.parametrize("steps_before_crash", [1, 2, 3])
    def test_engine_killed_after_any_step_resumes(self, steps_before_crash):
        cloud = SimulatedCloud(seed=11)
        store = MemoryJobStore()
        engine = ServiceEngine(cloud, store)
        record = engine.submit(APP)
        for _ in range(steps_before_crash):
            engine.tick()
        state_at_crash = engine.job(record.job_id).state
        del engine  # the crash: all in-process runtime is gone

        resumed = ServiceEngine(cloud, store)
        assert resumed.recover() == 1
        resumed.run(max_steps=10)
        final = resumed.job(record.job_id)
        assert final.state == MONITORING, state_at_crash
        # No duplicated side effects: each pipeline step ran exactly once
        # across both engine lifetimes.
        for step in ("deploy", "solve", "migrate", "monitor"):
            entries = [e for e in final.journal if e.step == step]
            assert len(entries) == 1, (step, final.journal)

    def test_recovery_does_not_resolve_or_restage(self):
        cloud = SimulatedCloud(seed=11)
        store = MemoryJobStore()
        engine = ServiceEngine(cloud, store)
        record = engine.submit(APP)
        engine.tick(); engine.tick(); engine.tick()  # -> DEPLOYED
        assert engine.job(record.job_id).state == DEPLOYED
        solves_before = engine.solver_stats.simulations_run
        staged_before, _ = cloud.kvstore("us-east-1").get(
            f"meta:{record.job_id}", "active_plan"
        )
        del engine

        resumed = ServiceEngine(cloud, store)
        resumed.recover()
        resumed.run(max_steps=5)
        assert resumed.job(record.job_id).state == MONITORING
        # The resumed engine never invoked the solver...
        assert resumed.solver_stats.simulations_run == 0
        assert solves_before > 0
        # ...and the plan staged before the crash is still the active one.
        staged_after, _ = cloud.kvstore("us-east-1").get(
            f"meta:{record.job_id}", "active_plan"
        )
        assert staged_after == staged_before

    def test_monitoring_job_rearmed_on_recovery(self):
        cloud = SimulatedCloud(seed=12)
        store = MemoryJobStore()
        engine = ServiceEngine(cloud, store)
        record = engine.submit(APP)
        engine.run(max_steps=10)
        assert engine.job(record.job_id).state == MONITORING
        del engine

        resumed = ServiceEngine(cloud, store)
        assert resumed.recover() == 1
        assert record.job_id in resumed.fleet.workflows
        cloud.env.run(until=cloud.now() + SECONDS_PER_DAY)
        assert len(
            resumed.fleet.manager_for(record.job_id).reports
        ) >= 1

    def test_crash_before_persist_replays_step_idempotently(self):
        """Crash between cloud side effects and the store save: the
        record still says the step is pending, so the resumed engine
        re-runs it — replace-style cloud semantics make that a no-op."""
        cloud = SimulatedCloud(seed=13)
        store = MemoryJobStore()
        engine = ServiceEngine(cloud, store)
        record = engine.submit(APP)
        snapshot = store.get(record.job_id).to_dict()  # pre-deploy doc
        engine.tick()  # deploy completes AND persists
        # Undo the persistence only — as if the save never hit disk.
        store.save(JobRecord.from_dict(snapshot))
        del engine

        resumed = ServiceEngine(cloud, store)
        resumed.recover()
        resumed.run(max_steps=10)
        final = resumed.job(record.job_id)
        assert final.state == MONITORING
        # The replayed deploy displaced (not duplicated) the original:
        # one home deployment per function.
        deployments = cloud.functions.deployments_of(record.job_id)
        home = [d for d in deployments if d.region == "us-east-1"]
        assert len(home) == len({d.function for d in home})

    def test_fresh_cloud_recovery_reapplies_persisted_plan(self, tmp_path):
        """Cross-process serve: a brand-new cloud has none of the old
        deployments, so recovery re-establishes them and re-applies the
        persisted plan artifact instead of re-solving."""
        store = LocalJobStore(str(tmp_path / "jobs.json"))
        cloud1 = SimulatedCloud(seed=3)
        engine1 = ServiceEngine(cloud1, store)
        record = engine1.submit(APP)
        engine1.tick(); engine1.tick(); engine1.tick()  # -> DEPLOYED
        persisted = store.get(record.job_id).artifacts["plan_set"]
        del engine1, cloud1

        cloud2 = SimulatedCloud(seed=3)
        engine2 = ServiceEngine(cloud2, store)
        engine2.recover()
        engine2.run(max_steps=5)
        assert engine2.job(record.job_id).state == MONITORING
        assert engine2.solver_stats.simulations_run == 0  # never re-solved
        staged, _ = cloud2.kvstore("us-east-1").get(
            f"meta:{record.job_id}", "active_plan"
        )
        assert staged["plans_by_hour"] == persisted["plans_by_hour"]


# --------------------------------------------------------------------------
# Retry / backoff on injected faults
# --------------------------------------------------------------------------
class TestRetryBackoff:
    def test_step_retries_after_injected_kv_fault(self):
        # KV errors for the first virtual second: the deploy step's
        # metadata upload fails, the job backs off, and the retry after
        # the fault window succeeds.
        plan = FaultPlan().with_kv_errors(1.0, end_s=1.0)
        cloud, _store, engine = make_engine(
            seed=5, fault_plan=plan, backoff_s=10.0
        )
        record = engine.submit(APP)
        assert engine.tick() == 0  # first attempt fails
        record = engine.job(record.job_id)
        assert record.state == SUBMITTED
        assert record.attempts["deploy"] == 1
        assert record.not_before_s == pytest.approx(10.0)
        retry_notes = [e for e in record.journal if "attempt 1" in e.note]
        assert retry_notes and retry_notes[0].step == "deploy"
        # run() jumps the clock over the backoff window and retries.
        engine.run(max_steps=10)
        final = engine.job(record.job_id)
        assert final.state == MONITORING
        assert final.not_before_s == 0.0

    def test_job_fails_after_max_attempts(self):
        plan = FaultPlan().with_kv_errors(1.0)  # KV never recovers
        cloud, _store, engine = make_engine(
            seed=5, fault_plan=plan, backoff_s=10.0, max_attempts=3
        )
        record = engine.submit(APP)
        engine.run(max_steps=20)
        final = engine.job(record.job_id)
        assert final.state == FAILED
        assert final.attempts["deploy"] == 3
        assert "deploy" in final.error
        # Terminal: nothing left to run.
        assert engine.runnable() == []

    def test_backoff_is_exponential(self):
        plan = FaultPlan().with_kv_errors(1.0, end_s=100.0)
        cloud, _store, engine = make_engine(
            seed=5, fault_plan=plan, backoff_s=8.0, max_attempts=5
        )
        record = engine.submit(APP)
        engine.tick()
        first = engine.job(record.job_id).not_before_s
        cloud.env.run(until=first)
        engine.tick()
        second = engine.job(record.job_id).not_before_s
        assert first == pytest.approx(8.0)
        assert second == pytest.approx(first + 16.0)


# --------------------------------------------------------------------------
# Builder API
# --------------------------------------------------------------------------
@task(memory_mb=512)
def fetch(payload):
    return payload


@task()
def left(payload):
    return payload


@task()
def right(payload):
    return payload


@task()
def merge(payloads):
    return Payload(content=payloads, size_bytes=2048.0)


class TestBuilder:
    def test_diamond_compiles_to_dag(self):
        compiled = (
            workflow("diamond").then(fetch).branch(left, right).join(merge)
            .build()
        )
        dag = compiled.dag
        assert set(dag.node_names) == {"fetch", "left", "right", "merge"}
        assert dag.start_node == "fetch"
        assert dag.sync_nodes == ("merge",)
        assert dag.node("fetch").memory_mb == 512
        assert compiled.workflow.entry_function.name == "fetch"
        assert compiled.config.home_region == "us-east-1"

    def test_linear_chain(self):
        compiled = workflow("chain").then(fetch).then(left).build()
        assert [e.key for e in compiled.dag.edges] == ["fetch->left"]
        assert compiled.dag.sync_nodes == ()

    def test_duplicate_task_rejected(self):
        from repro.common.errors import WorkflowDefinitionError

        with pytest.raises(WorkflowDefinitionError, match="duplicate"):
            workflow("dup").then(fetch).then(fetch)

    def test_empty_workflow_rejected(self):
        from repro.common.errors import WorkflowDefinitionError

        with pytest.raises(WorkflowDefinitionError, match="no tasks"):
            workflow("empty").build()

    def test_name_override_isolates_jobs(self):
        compiled = workflow("pipe").then(fetch).build(name="pipe-0001")
        assert compiled.workflow.name == "pipe-0001"
        assert compiled.dag.name == "pipe-0001"

    def test_constraints_attach(self):
        @task(allowed_regions=["us-east-1", "us-west-1"])
        def pinned(payload):
            return payload

        compiled = workflow("pinned-wf").then(pinned).build()
        constraints = compiled.workflow.function("pinned").constraints
        assert constraints is not None
        assert constraints.allowed_regions == frozenset(
            {"us-east-1", "us-west-1"}
        )

    def test_builder_workflow_runs_through_engine(self):
        builder = workflow("diamond").then(fetch).branch(left, right).join(merge)
        cloud, _store, engine = make_engine(seed=9)
        engine.register_workflow(builder)
        record = engine.submit("diamond")
        engine.run(max_steps=10)
        final = engine.job(record.job_id)
        assert final.state == MONITORING
        assert final.artifacts["nodes"] == ["fetch", "left", "right", "merge"]
        # The deployed builder workflow serves real invocations: the
        # engine's warm-up traffic completed through the sync node.
        executions = [
            r for r in cloud.ledger.executions if r.workflow == record.job_id
        ]
        assert {r.node for r in executions} == {
            "fetch", "left", "right", "merge",
        }

    def test_builder_workflow_recovers(self):
        builder = workflow("diamond").then(fetch).branch(left, right).join(merge)
        cloud = SimulatedCloud(seed=9)
        store = MemoryJobStore()
        engine = ServiceEngine(cloud, store)
        engine.register_workflow(builder)
        record = engine.submit("diamond")
        engine.tick(); engine.tick()  # -> SOLVED
        del engine

        resumed = ServiceEngine(cloud, store)
        resumed.register_workflow(builder)
        assert resumed.recover() == 1
        resumed.run(max_steps=5)
        assert resumed.job(record.job_id).state == MONITORING
