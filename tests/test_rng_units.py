"""Tests for RNG streams and unit helpers."""

import numpy as np
import pytest

from repro.common.rng import RngRegistry
from repro.common.units import (
    GB,
    KB,
    MB,
    bytes_to_gb,
    gb,
    hours,
    kb,
    mb,
    ms,
    watts_to_kw,
)


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(seed=1)
        assert reg.get("a") is reg.get("a")

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=1)
        a = reg.get("a").random(5)
        b = reg.get("b").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        a = RngRegistry(seed=7).get("net").random(10)
        b = RngRegistry(seed=7).get("net").random(10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).get("x").random(5)
        b = RngRegistry(seed=2).get("x").random(5)
        assert not np.allclose(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(seed=3)
        reg1.get("x").random(3)  # consume
        after_other = reg1.get("x").random(3)

        reg2 = RngRegistry(seed=3)
        reg2.get("x").random(3)
        reg2.get("brand-new")  # create an unrelated stream in between
        assert np.allclose(after_other, reg2.get("x").random(3))

    def test_fresh_resets_stream(self):
        reg = RngRegistry(seed=5)
        first = reg.get("s").random(4)
        reg.fresh("s")
        again = reg.get("s").random(4)
        assert np.allclose(first, again)


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * 1024
        assert GB == 1024**3

    def test_helpers(self):
        assert kb(2) == 2048
        assert mb(1) == MB
        assert gb(0.5) == GB / 2

    def test_bytes_to_gb_roundtrip(self):
        assert bytes_to_gb(gb(3.5)) == pytest.approx(3.5)

    def test_time_helpers(self):
        assert ms(1500) == pytest.approx(1.5)
        assert hours(2) == 7200

    def test_watts(self):
        assert watts_to_kw(750) == pytest.approx(0.75)
