"""Tests for empirical distributions."""

import numpy as np
import pytest

from repro.metrics.distributions import EmpiricalDistribution


class TestEmpiricalDistribution:
    def test_basic_stats(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.mean() == pytest.approx(2.5)
        assert dist.min() == 1.0
        assert dist.max() == 4.0
        assert len(dist) == 4

    def test_percentiles(self):
        dist = EmpiricalDistribution(range(1, 101))
        assert dist.percentile(50) == pytest.approx(50.5)
        assert dist.p95() == pytest.approx(95.05)

    def test_percentile_bounds(self):
        dist = EmpiricalDistribution([1.0])
        with pytest.raises(ValueError):
            dist.percentile(101)

    def test_empty_queries_raise(self):
        dist = EmpiricalDistribution()
        assert not dist
        with pytest.raises(ValueError):
            dist.mean()
        with pytest.raises(ValueError):
            dist.sample(np.random.default_rng(0))

    def test_non_finite_rejected(self):
        dist = EmpiricalDistribution()
        with pytest.raises(ValueError):
            dist.add(float("nan"))
        with pytest.raises(ValueError):
            dist.add(float("inf"))

    def test_sliding_window_caps_samples(self):
        dist = EmpiricalDistribution(max_samples=3)
        dist.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert list(dist.samples) == [3.0, 4.0, 5.0]

    def test_sampling_draws_from_observations(self):
        dist = EmpiricalDistribution([10.0, 20.0])
        rng = np.random.default_rng(0)
        draws = dist.sample(rng, size=100)
        assert set(np.unique(draws)) <= {10.0, 20.0}

    def test_single_sample_draw(self):
        dist = EmpiricalDistribution([7.0])
        assert dist.sample(np.random.default_rng(0)) == 7.0

    def test_scaled(self):
        dist = EmpiricalDistribution([1.0, 2.0])
        scaled = dist.scaled(2.0)
        assert list(scaled.samples) == [2.0, 4.0]
        assert list(dist.samples) == [1.0, 2.0]  # original untouched
        with pytest.raises(ValueError):
            dist.scaled(0.0)

    def test_merged(self):
        a = EmpiricalDistribution([1.0])
        b = EmpiricalDistribution([2.0])
        merged = a.merged_with(b)
        assert sorted(merged.samples) == [1.0, 2.0]

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(max_samples=0)
