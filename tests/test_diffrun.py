"""Tests for run-to-run comparison (`repro.obs.diffrun`)."""

import json

import pytest

from repro.obs.diffrun import (
    diff_reports,
    diff_runs,
    diff_series,
    flatten_report,
    flatten_series,
    regression_direction,
)
from repro.obs.timeseries import export_series


# ---------------------------------------------------------------- direction
class TestRegressionDirection:
    @pytest.mark.parametrize("metric", [
        "per_region.us-east-1.carbon_g",
        "run.mean_service_time_s.p95",
        "reliability.requests_failed",
        "ledger.cost_usd{region=us-east-1}",
        "executor.request_latency_s.p99",
    ])
    def test_lower_is_better(self, metric):
        assert regression_direction(metric) == 1

    @pytest.mark.parametrize("metric", [
        "reliability.requests_completed",
        "bench.executor_events_per_s",
        "slo.compliance",
    ])
    def test_higher_is_better(self, metric):
        assert regression_direction(metric) == -1

    def test_unknown_metrics_never_flagged(self):
        assert regression_direction("run.n_invocations") == 0

    def test_higher_marker_wins_over_lower(self):
        # "completed" outranks the "p95" substring: a completions
        # quantile regresses downward.
        assert regression_direction("completed.p95") == -1


# --------------------------------------------------------------- flattening
class TestFlatten:
    def test_report_nested_paths_and_bools(self):
        flat = flatten_report(
            {"a": {"b": 1, "met": True}, "c": 2.5, "skip": "text"}
        )
        assert flat == {"a.b": 1.0, "a.met": 1.0, "c": 2.5}

    def test_series_histograms_expand_to_stats(self):
        points = [
            {"metric": "m", "window": 0.0, "type": "counter", "value": 3.0},
            {"metric": "h", "window": 0.0, "type": "histogram", "count": 2,
             "sum": 1.0, "p50": 0.4, "p95": 0.9, "p99": 1.0,
             "buckets": {"1": 2}},
        ]
        flat = flatten_series(points)
        assert flat[("m", 0.0)] == 3.0
        assert flat[("h.count", 0.0)] == 2.0
        assert flat[("h.p95", 0.0)] == 0.9
        assert ("h.buckets", 0.0) not in flat


# ------------------------------------------------------------------- diffing
class TestDiffReports:
    def test_identical_reports_show_no_differences(self):
        doc = {"run": {"x": 1}}
        assert "No numeric differences." in diff_reports(doc, doc)

    def test_regression_flagged_with_direction(self):
        a = {"carbon_g": 100.0, "requests_completed": 50.0}
        b = {"carbon_g": 150.0, "requests_completed": 40.0}
        text = diff_reports(a, b)
        # Carbon up AND completions down: both rows flagged.
        flagged = [ln for ln in text.splitlines() if "**regression**" in ln]
        assert len(flagged) == 2
        assert "2 flagged as regressions" in text

    def test_improvement_not_flagged(self):
        text = diff_reports({"carbon_g": 100.0}, {"carbon_g": 50.0})
        assert "**regression**" not in text
        assert "-50.0%" in text

    def test_sub_threshold_change_reported_unflagged(self):
        text = diff_reports({"carbon_g": 1000.0}, {"carbon_g": 1001.0})
        assert "carbon_g" in text
        assert "**regression**" not in text

    def test_new_and_gone_metrics(self):
        text = diff_reports({"old": 1.0}, {"new": 2.0})
        rows = {
            ln.split("|")[1].strip(): ln
            for ln in text.splitlines() if ln.startswith("|")
        }
        assert "gone" in rows["old"]
        assert "new" in rows["new"]

    def test_unchanged_rows_hidden_by_default(self):
        a = {"same": 5.0, "carbon_g": 1.0}
        b = {"same": 5.0, "carbon_g": 2.0}
        assert "same" not in diff_reports(a, b)
        assert "| same |" in diff_reports(a, b, only_changed=False)


class TestDiffSeries:
    A = [
        {"metric": "ledger.carbon_g{region=r1}", "window": 0.0,
         "type": "counter", "value": 10.0},
        {"metric": "ledger.carbon_g{region=r1}", "window": 3600.0,
         "type": "counter", "value": 12.0},
    ]
    B = [
        {"metric": "ledger.carbon_g{region=r1}", "window": 0.0,
         "type": "counter", "value": 10.0},
        {"metric": "ledger.carbon_g{region=r1}", "window": 3600.0,
         "type": "counter", "value": 30.0},
    ]

    def test_per_window_rows_with_window_column(self):
        text = diff_series(self.A, self.B)
        assert "| metric | window |" in text
        # Only the changed window appears.
        assert "| 3600 |" in text
        assert "| 0 |" not in text
        assert "**regression**" in text

    def test_row_order_is_window_then_metric(self):
        a = self.A + [{"metric": "aa", "window": 0.0, "type": "counter",
                       "value": 1.0}]
        b = self.B + [{"metric": "aa", "window": 0.0, "type": "counter",
                       "value": 2.0}]
        body = [ln for ln in diff_series(a, b).splitlines()
                if ln.startswith("| ")][1:]
        assert body[0].startswith("| aa | 0 |")
        assert body[1].startswith("| ledger.carbon_g{region=r1} | 3600 |")


class TestDiffRuns:
    def _series_file(self, tmp_path, name, points):
        path = tmp_path / name
        export_series(points, str(path))
        return str(path)

    def test_auto_detects_series_dumps(self, tmp_path):
        a = self._series_file(tmp_path, "a.jsonl", TestDiffSeries.A)
        b = self._series_file(tmp_path, "b.jsonl", TestDiffSeries.B)
        text = diff_runs(a, b)
        assert text.startswith("## Series diff:")
        assert "**regression**" in text

    def test_auto_detects_reports(self, tmp_path):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps({"carbon_g": 1.0}))
        pb.write_text(json.dumps({"carbon_g": 2.0}))
        text = diff_runs(str(pa), str(pb))
        assert text.startswith("## Report diff:")
        assert str(pa) in text and str(pb) in text

    def test_mixed_kinds_rejected(self, tmp_path):
        series = self._series_file(tmp_path, "a.jsonl", TestDiffSeries.A)
        report = tmp_path / "b.json"
        report.write_text(json.dumps({"x": 1.0}))
        with pytest.raises(ValueError, match="cannot diff"):
            diff_runs(series, str(report))

    def test_non_object_artifact_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            diff_runs(str(bad), str(bad))
