"""Tests for the serverless function runtime (Lambda substitute)."""

import numpy as np
import pytest

from repro.cloud.functions import (
    CONTAINER_KEEPALIVE_S,
    MEMORY_MB_PER_VCPU,
    FunctionDeployment,
    WorkProfile,
)
from repro.common.errors import DeploymentError, RegionUnavailableError
from repro.common.units import mb


def deploy(cloud, name="fn", region="us-east-1", memory_mb=1769, profile=None,
           handler=None):
    deployment = FunctionDeployment(
        workflow="wf",
        function=name,
        region=region,
        handler=handler or (lambda body, ctx: None),
        memory_mb=memory_mb,
        profile=profile or WorkProfile(base_seconds=1.0),
    )
    cloud.functions.deploy(deployment)
    return deployment


class TestWorkProfile:
    def test_mean_duration_scales_with_input(self):
        profile = WorkProfile(base_seconds=1.0, seconds_per_mb=2.0)
        assert profile.mean_duration(0) == 1.0
        assert profile.mean_duration(mb(3)) == pytest.approx(7.0)

    def test_output_size(self):
        profile = WorkProfile(
            base_seconds=1.0, output_bytes_per_input_byte=0.5, output_base_bytes=100
        )
        assert profile.output_size(1000) == pytest.approx(600)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkProfile(base_seconds=-1.0)
        with pytest.raises(ValueError):
            WorkProfile(base_seconds=1.0, cpu_utilization=0.0)
        with pytest.raises(ValueError):
            WorkProfile(base_seconds=1.0, cpu_utilization=1.5)


class TestDeployment:
    def test_vcpu_follows_memory(self, cloud):
        d = deploy(cloud, memory_mb=3538)
        assert d.n_vcpu == pytest.approx(3538 / MEMORY_MB_PER_VCPU)

    def test_invoke_unknown_function_raises(self, cloud):
        with pytest.raises(DeploymentError):
            cloud.functions.invoke("wf", "ghost", "us-east-1", None, 0)

    def test_remove(self, cloud):
        deploy(cloud)
        cloud.functions.remove("wf", "fn", "us-east-1")
        assert not cloud.functions.is_deployed("wf", "fn", "us-east-1")

    def test_region_unavailable_blocks_deploy(self, cloud):
        cloud.functions.set_region_available("us-west-1", False)
        with pytest.raises(RegionUnavailableError):
            deploy(cloud, region="us-west-1")
        cloud.functions.set_region_available("us-west-1", True)
        deploy(cloud, region="us-west-1")  # now fine

    def test_deployments_of(self, cloud):
        deploy(cloud, name="a")
        deploy(cloud, name="b")
        assert {d.function for d in cloud.functions.deployments_of("wf")} == {"a", "b"}


class TestInvocation:
    def test_handler_receives_body_and_context(self, cloud):
        seen = {}

        def handler(body, ctx):
            seen["body"] = body
            seen["region"] = ctx.region
            seen["end"] = ctx.end_s

        deploy(cloud, handler=handler)
        ctx = cloud.functions.invoke("wf", "fn", "us-east-1", {"k": 1}, 100)
        assert seen["body"] == {"k": 1}
        assert seen["region"] == "us-east-1"
        assert seen["end"] == pytest.approx(ctx.start_s + ctx.duration_s)

    def test_first_invocation_is_cold(self, cloud):
        deploy(cloud)
        ctx = cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        assert ctx.cold_start
        assert ctx.start_s > 0  # provisioning delay

    def test_warm_within_keepalive(self, cloud):
        deploy(cloud)
        cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        cloud.env.clock.advance(60.0)
        ctx = cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        assert not ctx.cold_start

    def test_cold_again_after_keepalive(self, cloud):
        deploy(cloud)
        ctx1 = cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        cloud.env.clock.advance(ctx1.duration_s + CONTAINER_KEEPALIVE_S + 1)
        ctx2 = cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        assert ctx2.cold_start

    def test_duration_scales_with_payload(self, cloud):
        deploy(cloud, profile=WorkProfile(base_seconds=0.5, seconds_per_mb=1.0,
                                          noise_cv=0.0))
        small = cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        big = cloud.functions.invoke("wf", "fn", "us-east-1", None, mb(10))
        assert big.duration_s > small.duration_s * 10

    def test_duration_noise_is_lognormal_around_mean(self, cloud):
        deploy(cloud, profile=WorkProfile(base_seconds=1.0, noise_cv=0.1))
        durations = [
            cloud.functions.invoke("wf", "fn", "us-east-1", None, 0).duration_s
            for _ in range(300)
        ]
        # Region speed factor is within +-4 %, noise mean-one.
        assert 0.9 < np.mean(durations) < 1.1

    def test_execution_record_fields(self, cloud):
        deploy(cloud, profile=WorkProfile(base_seconds=1.0, cpu_utilization=0.5,
                                          noise_cv=0.0))
        cloud.functions.invoke(
            "wf", "fn", "us-east-1", None, 123.0, node="n1", request_id="r1"
        )
        rec = cloud.ledger.executions[-1]
        assert rec.workflow == "wf"
        assert rec.node == "n1"
        assert rec.request_id == "r1"
        assert rec.payload_bytes == 123.0
        assert rec.cpu_total_time_s == pytest.approx(
            rec.duration_s * rec.n_vcpu * 0.5
        )

    def test_handler_override_used(self, cloud):
        deploy(cloud, handler=lambda body, ctx: pytest.fail("original ran"))
        called = []
        cloud.functions.invoke(
            "wf", "fn", "us-east-1", None, 0,
            handler_override=lambda body, ctx: called.append(1),
        )
        assert called == [1]

    def test_output_size_from_handler_return(self, cloud):
        class Sized:
            size_bytes = 4096.0

        deploy(cloud, handler=lambda body, ctx: Sized())
        cloud.functions.invoke("wf", "fn", "us-east-1", None, 0)
        assert cloud.ledger.executions[-1].output_bytes == 4096.0

    def test_region_speed_varies_by_region(self, cloud):
        from repro.cloud.functions import _region_speed_factor

        factors = {_region_speed_factor(r) for r in
                   ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")}
        assert len(factors) > 1
        assert all(0.95 < f < 1.05 for f in factors)
