"""Golden-trace regression tests.

A fixed-seed quickstart-style run must reproduce its committed JSONL
trace *byte for byte*.  Any intentional change to the span taxonomy,
timing model, or serialisation shows up here as a diff; regenerate the
snapshot with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py

and review the diff like any other code change.
"""

import json
import os
import pathlib

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.experiments.harness import deploy_benchmark
from repro.obs.trace import SPAN_KINDS, Tracer

GOLDEN = pathlib.Path(__file__).parent / "golden" / "quickstart_trace.jsonl"
SEED = 1234


def quickstart_trace() -> Tracer:
    """The reference scenario: two seeded invocations of the sync-node
    benchmark, routed entirely at the home region (no solver — its
    iteration spans would dwarf the snapshot)."""
    tracer = Tracer()
    cloud = SimulatedCloud(seed=SEED, tracer=tracer)
    app = get_app("text2speech_censoring")
    deployed, executor, _utility = deploy_benchmark(app, cloud)
    for _ in range(2):
        executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
    tracer.finalize()
    return tracer


class TestGoldenTrace:
    def test_trace_matches_snapshot(self):
        tracer = quickstart_trace()
        produced = tracer.to_jsonl()
        if os.environ.get("UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(produced, encoding="utf-8")
        assert GOLDEN.exists(), (
            "golden trace missing; regenerate with UPDATE_GOLDEN=1"
        )
        expected = GOLDEN.read_text(encoding="utf-8")
        assert produced == expected, (
            "trace drifted from the golden snapshot; if intentional, "
            "regenerate with UPDATE_GOLDEN=1 and review the diff"
        )

    def test_two_runs_byte_identical(self):
        assert quickstart_trace().to_jsonl() == quickstart_trace().to_jsonl()

    def test_snapshot_is_valid_jsonl_with_known_kinds(self):
        for line in GOLDEN.read_text(encoding="utf-8").splitlines():
            span = json.loads(line)
            assert span["kind"] in SPAN_KINDS
            assert span["t1"] >= span["t0"]


class TestTracingIsPureObservation:
    def test_traced_and_untraced_ledgers_identical(self):
        def ledger_lines(tracer):
            cloud = SimulatedCloud(seed=SEED, tracer=tracer)
            app = get_app("text2speech_censoring")
            deployed, executor, _ = deploy_benchmark(app, cloud)
            executor.invoke(app.make_input("small"), force_home=True)
            cloud.run_until_idle()
            return [
                (r.node, r.region, r.start_s, r.end_s)
                for r in cloud.ledger.executions
            ], [
                (r.src_region, r.dst_region, r.size_bytes, r.latency_s)
                for r in cloud.ledger.transmissions
            ]

        assert ledger_lines(None) == ledger_lines(Tracer())
