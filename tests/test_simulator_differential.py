"""Differential tests: the slotted event loop vs the legacy oracle.

The PR that rebuilt :mod:`repro.cloud.simulator` (slotted records, lazy
cancellation + compaction, batched same-timestamp dispatch) promised
byte-identical event ordering — FIFO among timestamp ties — and clock
trajectories.  These tests drive the *same* deterministic workload
through the new loop and through the preserved pre-rewrite loop
(:mod:`repro.cloud._legacy_simulator`) and compare what both promise:
execution order, execution times, and the final clock.

Two layers:

* scripted chaos storms against bare environments (nested scheduling,
  same-timestamp ties, cancellation storms heavy enough to trigger
  compaction mid-run);
* a full simulated-cloud serving run (open-loop trace + injected
  invocation failures, so pub/sub retry timers churn), compared via the
  tracer's JSONL — every span's virtual start/end on both loops.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.cloud._legacy_simulator import LegacySimulationEnvironment
from repro.cloud.simulator import SimulationEnvironment


def _chaos_storm(env, seed: int, n_roots: int = 40, max_depth: int = 4):
    """Run one deterministic chaos storm; returns the execution log.

    Every event's behaviour (children spawned, delays, which recent
    handles it cancels) derives from an RNG seeded by ``(seed, event
    id)`` alone, so the two environments make identical decisions as
    long as they execute identically — any ordering divergence cascades
    into a log mismatch.
    """
    log = []
    handles = []
    counter = itertools.count()

    def make_action(eid: int, depth: int):
        def action() -> None:
            log.append((eid, round(env.now(), 9)))
            rng = np.random.default_rng((seed, eid))
            # Cancellation storm: revoke a few of the most recently
            # scheduled events (the pub/sub retry-timer pattern).
            for h in handles[-6:]:
                if rng.random() < 0.5:
                    h.cancel()
            if depth < max_depth:
                for _ in range(int(rng.integers(0, 4))):
                    cid = next(counter)
                    # 0.0 exercises same-timestamp self-scheduling into
                    # the current dispatch batch.
                    delay = float(rng.choice([0.0, 0.25, 0.5, 1.0]))
                    handles.append(
                        env.schedule(delay, make_action(cid, depth + 1))
                    )

        return action

    for i in range(n_roots):
        eid = next(counter)
        handles.append(env.schedule(float(i % 7) * 0.5, make_action(eid, 0)))
    env.run_until_idle()
    return log


class TestScriptedChaos:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_order_and_times_match_legacy(self, seed):
        new_env = SimulationEnvironment(seed=seed)
        old_env = LegacySimulationEnvironment(seed=seed)
        new_log = _chaos_storm(new_env, seed)
        old_log = _chaos_storm(old_env, seed)
        assert new_log == old_log
        assert new_env.now() == old_env.now()
        assert new_env.events_executed == old_env.events_executed

    def test_compaction_storm_matches_legacy(self):
        """Watchdog churn (schedule far-future timers, cancel them each
        tick) must trigger compaction mid-run on the new loop — and the
        execution log must still match the legacy loop exactly."""

        def watchdog_churn(env, n_ticks: int = 200):
            log = []
            watchdogs = []

            def tick(i: int) -> None:
                log.append((i, env.now()))
                for h in watchdogs:
                    h.cancel()
                watchdogs.clear()
                if i < n_ticks:
                    for k in range(3):
                        watchdogs.append(
                            env.schedule(
                                600.0 + k,
                                lambda i=i, k=k: log.append(("wd", i, k)),
                            )
                        )
                    env.schedule(1.0, lambda: tick(i + 1))

            env.schedule(0.0, lambda: tick(0))
            env.run_until_idle()
            return log

        new_env = SimulationEnvironment(seed=3)
        new_log = watchdog_churn(new_env)
        assert new_env.compactions > 0  # the storm reached the path under test
        old_log = watchdog_churn(LegacySimulationEnvironment(seed=3))
        assert new_log == old_log

    def test_horizon_and_max_events_agree(self):
        for kwargs in ({"until": 2.0}, {"max_events": 57}, {"until": 3.0, "max_events": 30}):
            new_env = SimulationEnvironment(seed=5)
            old_env = LegacySimulationEnvironment(seed=5)
            logs = []
            for env in (new_env, old_env):
                log = []

                def tick(env=env, log=log):
                    log.append(env.now())
                    env.schedule(0.1, tick)

                for i in range(5):
                    env.schedule(i * 0.05, tick)
                executed = env.run(**kwargs)
                logs.append((executed, log, env.now()))
            assert logs[0] == logs[1], kwargs


class TestFullCloudDifferential:
    """Same serving workload through both loops, compared span-by-span."""

    def _traced_run(self, monkeypatch, legacy: bool) -> str:
        from repro.cloud.faults import FaultPlan
        from repro.cloud.provider import SimulatedCloud
        from repro.apps import get_app
        from repro.common.rng import RngRegistry
        from repro.data.workload import (
            OpenLoopInjector,
            WorkloadSpec,
            generate_trace,
        )
        from repro.experiments.harness import deploy_benchmark
        from repro.obs.trace import Tracer

        if legacy:
            monkeypatch.setattr(
                "repro.cloud.provider.SimulationEnvironment",
                LegacySimulationEnvironment,
            )
        # Failures force pub/sub retries -> retry-timer churn on the
        # loop under test (scheduling AND cancellation on the hot path).
        plan = FaultPlan().with_invocation_failures(0.05)
        tracer = Tracer()
        cloud = SimulatedCloud(seed=17, fault_plan=plan, tracer=tracer)
        app = get_app("text2speech_censoring")
        _deployed, executor, _ = deploy_benchmark(app, cloud)
        spec = WorkloadSpec(base_rate_per_s=1.5, duration_s=90.0, profile="steady")
        trace = generate_trace(spec, RngRegistry(17).get("workload"))
        injector = OpenLoopInjector(executor, trace)
        injector.start()
        cloud.env.run_until_idle()
        tracer.finalize()
        return tracer.to_jsonl()

    def test_tracer_output_byte_identical(self, monkeypatch):
        new_jsonl = self._traced_run(monkeypatch, legacy=False)
        old_jsonl = self._traced_run(monkeypatch, legacy=True)
        assert new_jsonl, "differential run produced no spans"
        assert new_jsonl == old_jsonl
