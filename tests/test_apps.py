"""Tests for the five benchmark workflows (Table 1)."""

import pytest

from repro.apps import ALL_APPS, get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.units import kb, mb
from repro.core.analysis import analyze_workflow
from repro.experiments.harness import deploy_benchmark

TABLE_1 = {
    "dna_visualization": dict(sync=False, cond=False, stages=1,
                              small=kb(69), large=mb(1.1)),
    "rag_ingestion": dict(sync=False, cond=False, stages=2,
                          small=33 * kb(60), large=115 * kb(60)),
    "image_processing": dict(sync=True, cond=False, stages=7,
                             small=kb(222), large=mb(2.4)),
    "text2speech_censoring": dict(sync=True, cond=True, stages=5,
                                  small=kb(1), large=kb(12)),
    "video_analytics": dict(sync=True, cond=False, stages=6,
                            small=kb(206), large=mb(2.4)),
}


class TestRegistry:
    def test_all_five_registered(self):
        assert set(ALL_APPS) == set(TABLE_1)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="known"):
            get_app("nope")


@pytest.mark.parametrize("name", sorted(TABLE_1))
class TestTable1Facts:
    def test_structure_matches_table1(self, name):
        app = get_app(name)
        facts = TABLE_1[name]
        assert app.has_sync == facts["sync"]
        assert app.has_conditional == facts["cond"]
        assert app.n_stages == facts["stages"]

    def test_input_sizes_match_table1(self, name):
        app = get_app(name)
        facts = TABLE_1[name]
        assert app.input_sizes["small"] == pytest.approx(facts["small"])
        assert app.input_sizes["large"] == pytest.approx(facts["large"])
        assert app.make_input("small").size_bytes == pytest.approx(facts["small"])
        assert app.make_input("large").size_bytes == pytest.approx(facts["large"])

    def test_dag_extraction_matches_declared_structure(self, name):
        app = get_app(name)
        dag = analyze_workflow(app.build_workflow())
        assert len(dag) == app.n_stages
        assert bool(dag.sync_nodes) == app.has_sync
        assert dag.has_conditional_edges == app.has_conditional

    def test_invalid_size_rejected(self, name):
        app = get_app(name)
        with pytest.raises(ValueError):
            app.make_input("medium")

    def test_fresh_workflow_instances_independent(self, name):
        app = get_app(name)
        wf1 = app.build_workflow()
        wf2 = app.build_workflow()
        assert wf1 is not wf2
        assert {f.name for f in wf1.functions} == {f.name for f in wf2.functions}

    @pytest.mark.parametrize("size", ["small", "large"])
    def test_end_to_end_execution(self, name, size):
        cloud = SimulatedCloud(seed=31)
        app = get_app(name)
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rid = executor.invoke(app.make_input(size), force_home=True)
        cloud.run_until_idle()
        executed = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert executed == set(deployed.dag.node_names)
        assert not cloud.pubsub.dead_letters


class TestAppSemantics:
    def test_dna_computes_gc_content(self):
        from repro.apps.dna_visualization import _synthetic_sequence, build_workflow

        seq = _synthetic_sequence(100)
        assert len(seq) == 100
        assert set(seq) <= set("ACGT")

    def test_t2s_compliance_pins_upload_to_us(self):
        cloud = SimulatedCloud(seed=31)
        app = get_app("text2speech_censoring")
        deployed, _, _ = deploy_benchmark(app, cloud)
        assert not deployed.config.permits("upload", "ca-central-1")
        assert deployed.config.permits("upload", "us-west-2")
        assert deployed.config.permits("censoring", "ca-central-1")

    def test_t2s_audio_expansion(self):
        # Intermediate audio dwarfs the text input (critical for the
        # transmission-carbon trade-off).
        cloud = SimulatedCloud(seed=32)
        app = get_app("text2speech_censoring")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        edges = {
            r.edge: r.size_bytes
            for r in cloud.ledger.transmissions_for(deployed.name, rid)
        }
        assert edges["text2speech->conversion"] > 50 * kb(1)

    def test_video_analytics_chunk_fanout(self):
        cloud = SimulatedCloud(seed=33)
        app = get_app("video_analytics")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rid = executor.invoke(app.make_input("large"), force_home=True)
        cloud.run_until_idle()
        recognize_execs = [
            e for e in cloud.ledger.executions_for(deployed.name, rid)
            if e.node.startswith("recognize")
        ]
        assert len(recognize_execs) == 4
        # Each chunk carries ~1/4 of the clip.
        for e in recognize_execs:
            assert e.payload_bytes == pytest.approx(mb(2.4) / 4)

    def test_image_processing_results_collected(self):
        cloud = SimulatedCloud(seed=34)
        app = get_app("image_processing")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        stored, _ = deployed.kv().get(deployed.data_table, f"{rid}:collect")
        ops = sorted(p["content"]["op"] for p in stored)
        assert ops == ["blur", "flip", "grayscale", "resize", "rotate"]

    def test_external_data_declared_where_expected(self):
        # Apps that write results home must declare the dependency so
        # the solver models the return traffic (§9.1 rule 1).
        for name in ("dna_visualization", "rag_ingestion",
                     "text2speech_censoring", "video_analytics"):
            app = get_app(name)
            workflow = app.build_workflow()
            assert any(
                s.external_data is not None for s in workflow.functions
            ), name
