"""Tests for the Metrics Manager (§7.2): ingestion, selective
forgetting, model data, and forecasting integration."""

import pytest

from repro.cloud.ledger import ExecutionRecord, MeteringLedger, TransmissionRecord
from repro.common.clock import SECONDS_PER_DAY
from repro.data.carbon import CarbonIntensitySource
from repro.metrics.manager import MetricsManager
from repro.model.config import WorkflowConfig


def exec_rec(node, region, rid, start=0.0, duration=1.0, workflow="chain",
             util=0.7):
    return ExecutionRecord(
        workflow=workflow, node=node, function=node, region=region,
        request_id=rid, start_s=start, duration_s=duration, memory_mb=1769,
        n_vcpu=1.0, cpu_total_time_s=duration * util, cold_start=False,
        payload_bytes=0.0, output_bytes=0.0,
    )


def trans_rec(src, dst, src_region, dst_region, rid, size=1e6, start=0.0,
              workflow="chain"):
    return TransmissionRecord(
        workflow=workflow, src_region=src_region, dst_region=dst_region,
        size_bytes=size, start_s=start, latency_s=0.01, request_id=rid,
        kind="data", edge=f"{src}->{dst}",
    )


@pytest.fixture
def setup(chain_dag):
    ledger = MeteringLedger()
    config = WorkflowConfig(home_region="us-east-1")
    carbon = CarbonIntensitySource(hours=24 * 14, seed=0)
    mm = MetricsManager(chain_dag, config, ledger, carbon)
    return mm, ledger


class TestIngestion:
    def test_collect_builds_invocations(self, setup):
        mm, ledger = setup
        for node in ("a", "b", "c"):
            ledger.record_execution(exec_rec(node, "us-east-1", "r1"))
        assert mm.collect(now_s=10.0) == 3
        assert mm.invocation_count == 1

    def test_collect_is_incremental(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1"))
        mm.collect(10.0)
        ledger.record_execution(exec_rec("a", "us-east-1", "r2"))
        assert mm.collect(20.0) == 1
        assert mm.invocation_count == 2

    def test_other_workflows_ignored(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1", workflow="other"))
        assert mm.collect(10.0) == 0

    def test_execution_time_dist_from_history(self, setup):
        mm, ledger = setup
        for i, duration in enumerate((1.0, 2.0, 3.0)):
            ledger.record_execution(
                exec_rec("a", "us-east-1", f"r{i}", duration=duration)
            )
        mm.collect(10.0)
        dist = mm.execution_time_dist("a", "us-east-1")
        assert dist.mean() == pytest.approx(2.0)

    def test_missing_region_falls_back_to_home(self, setup):
        # §7.1: new regions borrow the home region's distribution.
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1", duration=5.0))
        mm.collect(10.0)
        dist = mm.execution_time_dist("a", "ca-central-1")
        assert dist.mean() == pytest.approx(5.0)

    def test_no_history_anywhere_raises(self, setup):
        mm, _ = setup
        with pytest.raises(ValueError, match="home"):
            mm.execution_time_dist("a", "us-east-1")

    def test_priors_used_before_history(self, setup):
        mm, _ = setup
        mm.register_execution_prior("a", "us-east-1", [4.0])
        assert mm.execution_time_dist("a", "us-east-1").mean() == 4.0

    def test_edge_size_dist(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1"))
        ledger.record_transmission(
            trans_rec("a", "b", "us-east-1", "us-east-1", "r1", size=5e6)
        )
        mm.collect(10.0)
        assert mm.edge_size_dist("a", "b").mean() == pytest.approx(5e6)

    def test_edge_size_prior_fallback(self, setup):
        mm, _ = setup
        mm.register_size_prior("a", "b", [123.0])
        assert mm.edge_size_dist("a", "b").mean() == 123.0
        with pytest.raises(ValueError):
            mm.edge_size_dist("b", "c")

    def test_utilization_from_insights(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1", util=0.4))
        ledger.record_execution(exec_rec("a", "us-east-1", "r2", util=0.6))
        mm.collect(10.0)
        assert mm.node_cpu_utilization("a") == pytest.approx(0.5)

    def test_utilization_default_without_data(self, setup):
        mm, _ = setup
        assert mm.node_cpu_utilization("a") == pytest.approx(0.7)

    def test_external_data_declaration(self, setup):
        mm, _ = setup
        mm.declare_external_data("b", "us-east-1", 1e6)
        assert mm.node_external_bytes("b") == ("us-east-1", 1e6)
        assert mm.node_external_bytes("a") == (None, 0.0)


class TestEdgeProbability:
    def test_unconditional_edge_is_one(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1"))
        mm.collect(10.0)
        assert mm.edge_probability("a", "b") == 1.0

    def test_conditional_probability_learned(self, diamond_dag):
        ledger = MeteringLedger()
        config = WorkflowConfig(home_region="us-east-1")
        carbon = CarbonIntensitySource(hours=24, seed=0)
        mm = MetricsManager(diamond_dag, config, ledger, carbon)
        # a ran 4 times; conditional edge a->c taken twice.
        for i in range(4):
            ledger.record_execution(
                exec_rec("a", "us-east-1", f"r{i}", workflow="diamond")
            )
        for i in range(2):
            ledger.record_transmission(
                trans_rec("a", "c", "us-east-1", "us-east-1", f"r{i}",
                          workflow="diamond")
            )
        mm.collect(10.0)
        assert mm.edge_probability("a", "c") == pytest.approx(0.5)

    def test_conditional_default_without_history(self, diamond_dag):
        ledger = MeteringLedger()
        mm = MetricsManager(
            diamond_dag, WorkflowConfig(home_region="us-east-1"), ledger,
            CarbonIntensitySource(hours=24),
        )
        assert mm.edge_probability("a", "c") == 0.0
        assert mm.edge_probability("a", "b") == 1.0


class TestRetention:
    def test_thirty_day_window(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "old", start=0.0))
        ledger.record_execution(
            exec_rec("a", "us-east-1", "new", start=31 * SECONDS_PER_DAY)
        )
        mm.collect(31 * SECONDS_PER_DAY + 10)
        assert mm.invocation_count == 1
        assert mm.invocations_since(0.0) == 1

    def test_cap_evicts_fifo(self, chain_dag):
        ledger = MeteringLedger()
        mm = MetricsManager(
            chain_dag, WorkflowConfig(home_region="us-east-1"), ledger,
            CarbonIntensitySource(hours=24), max_invocations=10,
        )
        for i in range(25):
            ledger.record_execution(exec_rec("a", "us-east-1", f"r{i:03d}"))
        mm.collect(10.0)
        assert mm.invocation_count == 10

    def test_selective_forgetting_keeps_unique_dag_info(self, chain_dag):
        # §7.2: the only invocation representing a (node, region) pair
        # survives eviction even when it is the oldest.
        ledger = MeteringLedger()
        mm = MetricsManager(
            chain_dag, WorkflowConfig(home_region="us-east-1"), ledger,
            CarbonIntensitySource(hours=24), max_invocations=5,
        )
        # Oldest invocation ran node a in ca-central-1 — nothing else did.
        ledger.record_execution(exec_rec("a", "ca-central-1", "unique", start=0.0))
        for i in range(10):
            ledger.record_execution(
                exec_rec("a", "us-east-1", f"r{i:03d}", start=1.0 + i)
            )
        mm.collect(100.0)
        assert mm.invocation_count <= 6  # cap honoured (plus the survivor)
        # The unique ca-central-1 sample is still available.
        dist = mm.execution_time_dist("a", "ca-central-1")
        assert len(dist) == 1

    def test_average_runtime(self, setup):
        mm, ledger = setup
        for node, dur in (("a", 1.0), ("b", 2.0)):
            ledger.record_execution(exec_rec(node, "us-east-1", "r1", duration=dur))
        ledger.record_execution(exec_rec("a", "us-east-1", "r2", duration=5.0))
        mm.collect(10.0)
        assert mm.average_runtime_s() == pytest.approx((3.0 + 5.0) / 2)


class TestForecastIntegration:
    def test_refit_requires_week_of_history(self, setup):
        mm, _ = setup
        assert not mm.forecasts.refit("us-east-1", now_hour=100)
        assert mm.forecasts.refit("us-east-1", now_hour=24 * 7)
        assert mm.forecasts.has_forecast("us-east-1")

    def test_carbon_for_hour_uses_forecast_when_available(self, setup):
        mm, _ = setup
        hour = 24 * 7 + 5
        actual = mm.carbon_for_hour("us-east-1", hour, use_forecast=True)
        mm.forecasts.refit("us-east-1", now_hour=24 * 7)
        forecast = mm.carbon_for_hour("us-east-1", hour, use_forecast=True)
        raw = mm.carbon_for_hour("us-east-1", hour, use_forecast=False)
        assert actual == raw  # before refit: actuals
        assert forecast != raw or abs(forecast - raw) < 50  # plausible forecast

    def test_forecast_before_fit_raises(self, setup):
        mm, _ = setup
        with pytest.raises(RuntimeError):
            mm.forecasts.forecast_at("us-east-1", 200)

    def test_past_hours_return_actuals(self, setup):
        mm, _ = setup
        mm.forecasts.refit("us-east-1", now_hour=24 * 7)
        past = mm.forecasts.forecast_at("us-east-1", 24 * 7 - 10)
        assert past == mm.carbon_for_hour("us-east-1", 24 * 7 - 10,
                                          use_forecast=False)


class TestInputSizeLearning:
    def test_input_sizes_learned_from_client_transfers(self, setup):
        mm, ledger = setup
        ledger.record_execution(exec_rec("a", "us-east-1", "r1"))
        ledger.record_transmission(TransmissionRecord(
            workflow="chain", src_region="us-east-1", dst_region="us-east-1",
            size_bytes=7e5, start_s=0.0, latency_s=0.01, request_id="r1",
            kind="data", edge="$input->a",
        ))
        mm.collect(10.0)
        assert mm.input_size_dist().mean() == pytest.approx(7e5)

    def test_input_prior_fallback(self, setup):
        mm, _ = setup
        mm.register_input_prior([1234.0])
        assert mm.input_size_dist().mean() == 1234.0

    def test_zero_default_without_data(self, setup):
        mm, _ = setup
        assert mm.input_size_dist().mean() == 0.0
