"""Cross-module integration scenarios exercising full paper workflows."""

import numpy as np

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.manager import DeploymentManager
from repro.core.solver import SolverSettings
from repro.core.trigger import TriggerSettings
from repro.data.traces import azure_like_trace
from repro.experiments.harness import deploy_benchmark, warm_up
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel

FAST = SolverSettings(batch_size=30, max_samples=60, cov_threshold=0.2,
                      alpha_per_node_region=2)


class TestLifecycle:
    """Deploy -> learn -> solve -> migrate -> route -> save carbon."""

    def test_full_lifecycle_saves_carbon(self):
        cloud = SimulatedCloud(seed=50)
        app = get_app("video_analytics")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        scenario = TransmissionScenario.best_case()
        accountant = CarbonAccountant(
            cloud.carbon_source, CarbonModel(scenario),
            CostModel(cloud.pricing_source),
        )

        home_rids = warm_up(executor, app, "small", n=8)
        home_carbons = [
            accountant.price_workflow(cloud.ledger, deployed.name, rid).carbon_g
            for rid in home_rids
        ]

        dm = DeploymentManager(
            deployed, executor, utility, scenario=scenario,
            solver_settings=FAST, use_token_bucket=False, use_forecast=False,
        )
        report = dm.check()
        assert report.solved and report.migration.activated

        routed_rids = []
        for i in range(8):
            cloud.env.schedule(
                i * 200.0,
                lambda: routed_rids.append(executor.invoke(app.make_input("small"))),
            )
        cloud.run_until_idle()
        routed_carbons = [
            accountant.price_workflow(cloud.ledger, deployed.name, rid).carbon_g
            for rid in routed_rids
        ]
        # Compute-heavy workflow + clean region available => real savings.
        assert np.mean(routed_carbons) < 0.6 * np.mean(home_carbons)

    def test_metrics_learned_from_multiple_regions(self):
        """After routing, the MM holds per-region distributions."""
        cloud = SimulatedCloud(seed=51)
        app = get_app("rag_ingestion")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        warm_up(executor, app, "small", n=5)
        dm = DeploymentManager(
            deployed, executor, utility,
            scenario=TransmissionScenario.best_case(),
            solver_settings=FAST, use_token_bucket=False, use_forecast=False,
        )
        dm.check()
        for i in range(5):
            cloud.env.schedule(
                i * 100.0, lambda: executor.invoke(app.make_input("small"))
            )
        cloud.run_until_idle()
        dm.metrics.collect(cloud.now())
        regions_seen = {
            region
            for s in dm.metrics._invocations.values()
            for region, _d in s.node_executions.values()
        }
        assert len(regions_seen) >= 2

    def test_failure_injection_workflow_survives(self):
        """A failed migration never blackholes traffic (§6.1)."""
        cloud = SimulatedCloud(seed=52)
        app = get_app("rag_ingestion")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        warm_up(executor, app, "small", n=5)
        cloud.functions.set_region_available("ca-central-1", False)
        dm = DeploymentManager(
            deployed, executor, utility,
            scenario=TransmissionScenario.best_case(),
            solver_settings=FAST, use_token_bucket=False, use_forecast=False,
        )
        report = dm.check()
        # Whatever the solver wanted, traffic still completes (home).
        rid = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        execs = cloud.ledger.executions_for(deployed.name, rid)
        assert len(execs) == len(deployed.dag)
        assert all(e.region != "ca-central-1" for e in execs)
        # Recovery: the pending rollout eventually lands.
        cloud.functions.set_region_available("ca-central-1", True)
        if dm.migrator.pending is not None:
            retry = dm.migrator.retry_pending()
            assert retry.activated


class TestConcurrency:
    def test_interleaved_invocations_do_not_cross_talk(self):
        """Many in-flight requests share topics/KV without mixing state."""
        cloud = SimulatedCloud(seed=53)
        app = get_app("image_processing")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rids = []
        for i in range(10):
            cloud.env.schedule(
                i * 0.05,  # heavy overlap: all in flight at once
                lambda: rids.append(
                    executor.invoke(app.make_input("small"), force_home=True)
                ),
            )
        cloud.run_until_idle()
        for rid in rids:
            execs = cloud.ledger.executions_for(deployed.name, rid)
            assert len(execs) == len(deployed.dag), rid
            stored, _ = deployed.kv().get(deployed.data_table, f"{rid}:collect")
            assert len(stored) == 5  # exactly this request's fan-out

    def test_token_bucket_loop_under_bursty_traffic(self):
        """The dynamic trigger self-regulates under a real trace."""
        cloud = SimulatedCloud(seed=54)
        app = get_app("text2speech_censoring")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        dm = DeploymentManager(
            deployed, executor, utility,
            scenario=TransmissionScenario.best_case(),
            solver_settings=FAST,
            trigger_settings=TriggerSettings(
                min_check_period_s=2 * SECONDS_PER_HOUR,
                max_check_period_s=12 * SECONDS_PER_HOUR,
            ),
            use_forecast=False,
        )
        trace = azure_like_trace(days=1.5, mean_daily_invocations=120, seed=54)
        for t in trace:
            cloud.env.schedule(
                t, lambda: executor.invoke(app.make_input("small"))
            )
        dm.run_for(1.5 * SECONDS_PER_DAY, first_check_delay_s=3600.0)
        cloud.run_until_idle()
        assert len(dm.reports) >= 2
        # All traffic completed despite plan changes mid-stream.
        rids = cloud.ledger.request_ids(deployed.name)
        for rid in rids:
            assert cloud.ledger.service_time(deployed.name, rid) > 0
        assert not cloud.pubsub.dead_letters


class TestDeterminism:
    def test_same_seed_same_world(self):
        def run(seed):
            cloud = SimulatedCloud(seed=seed)
            app = get_app("text2speech_censoring")
            deployed, executor, _ = deploy_benchmark(app, cloud)
            rid = executor.invoke(app.make_input("small"), force_home=True)
            cloud.run_until_idle()
            return [
                (e.node, e.region, round(e.start_s, 9), round(e.duration_s, 9))
                for e in cloud.ledger.executions_for(deployed.name, rid)
            ]

        assert run(77) == run(77)
        assert run(77) != run(78)
