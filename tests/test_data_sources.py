"""Tests for the synthetic data layer: regions, carbon, pricing, latency."""

import numpy as np
import pytest

from repro.data.carbon import CarbonIntensitySource, generate_carbon_trace
from repro.data.latency import LatencySource, great_circle_km
from repro.data.pricing import PricingSource
from repro.data.regions import (
    EVALUATION_REGIONS,
    all_regions,
    evaluation_regions,
    get_region,
)


class TestRegions:
    def test_six_na_regions(self):
        # §2.1: six public AWS North American regions.
        assert len(all_regions()) == 6

    def test_evaluation_subset(self):
        # §9.1 limits the evaluation to four regions.
        assert set(EVALUATION_REGIONS) == {
            "us-east-1", "us-west-1", "us-west-2", "ca-central-1",
        }
        assert len(evaluation_regions()) == 4

    def test_us_east_regions_share_grid(self):
        # §2.1: us-east-1 and us-east-2 are on the same grid.
        assert get_region("us-east-1").grid_zone == get_region("us-east-2").grid_zone

    def test_canadian_regions_have_ca_country(self):
        assert get_region("ca-central-1").country == "CA"
        assert get_region("ca-west-1").country == "CA"

    def test_unknown_region_raises_with_guidance(self):
        with pytest.raises(KeyError, match="known regions"):
            get_region("mars-north-1")


class TestCarbonTraces:
    def test_trace_length_and_positivity(self):
        trace = generate_carbon_trace("US-PJM", 24 * 7)
        assert len(trace) == 24 * 7
        assert np.all(trace > 0)

    def test_deterministic_per_seed(self):
        a = generate_carbon_trace("CA-QC", 48, seed=1)
        b = generate_carbon_trace("CA-QC", 48, seed=1)
        assert np.allclose(a, b)

    def test_seeds_change_noise(self):
        a = generate_carbon_trace("US-BPA", 48, seed=1)
        b = generate_carbon_trace("US-BPA", 48, seed=2)
        assert not np.allclose(a, b)

    def test_invalid_zone(self):
        with pytest.raises(KeyError, match="known zones"):
            generate_carbon_trace("NOWHERE", 24)

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            generate_carbon_trace("US-PJM", 0)

    def test_quebec_far_below_pjm(self):
        # §9.2 I1: ca-central-1 averaged 91.5 % below us-east-1.
        pjm = generate_carbon_trace("US-PJM", 24 * 7).mean()
        qc = generate_carbon_trace("CA-QC", 24 * 7).mean()
        assert qc < 0.15 * pjm

    def test_caiso_solar_diurnal_swing(self):
        # §2.1: solar-heavy grid -> night intensity much higher than day.
        trace = generate_carbon_trace("US-CAISO", 24 * 7)
        by_hour = trace.reshape(7, 24).mean(axis=0)
        assert by_hour.max() > 1.5 * by_hour.min()

    def test_caiso_peaks_at_night(self):
        trace = generate_carbon_trace("US-CAISO", 24 * 7)
        by_hour = trace.reshape(7, 24).mean(axis=0)
        peak_hour = int(np.argmax(by_hour))
        assert peak_hour >= 20 or peak_hour <= 4

    def test_bpa_comparable_to_pjm(self):
        # §9.2 I1: us-west-2 has comparable average intensity.
        pjm = generate_carbon_trace("US-PJM", 24 * 7).mean()
        bpa = generate_carbon_trace("US-BPA", 24 * 7).mean()
        assert 0.85 * pjm < bpa < 1.15 * pjm


class TestCarbonIntensitySource:
    def test_intensity_lookup_consistent_with_trace(self):
        source = CarbonIntensitySource(hours=48, seed=0)
        trace = source.trace("us-east-1")
        assert source.intensity_at("us-east-1", 3600.0 * 5 + 10) == trace[5]

    def test_wraps_past_horizon(self):
        source = CarbonIntensitySource(hours=24, seed=0)
        assert source.intensity_at_hour("us-west-1", 25) == source.intensity_at_hour(
            "us-west-1", 1
        )

    def test_trace_read_only(self):
        source = CarbonIntensitySource(hours=24)
        with pytest.raises(ValueError):
            source.trace("us-east-1")[0] = 0.0

    def test_route_intensity_is_endpoint_mean(self):
        source = CarbonIntensitySource(hours=24)
        a = source.intensity_at("us-east-1", 0.0)
        b = source.intensity_at("ca-central-1", 0.0)
        assert source.route_intensity_at("us-east-1", "ca-central-1", 0.0) == (
            pytest.approx((a + b) / 2)
        )

    def test_average_window(self):
        source = CarbonIntensitySource(hours=48)
        full = source.trace("us-west-2")
        assert source.average("us-west-2", 0, 10) == pytest.approx(full[:10].mean())

    def test_overrides_respected(self):
        override = [100.0] * 24
        source = CarbonIntensitySource(
            hours=24, overrides={"US-PJM": override}
        )
        assert source.intensity_at_hour("us-east-1", 5) == 100.0
        # Other zones still synthetic.
        assert source.intensity_at_hour("ca-central-1", 5) != 100.0

    def test_short_override_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensitySource(hours=48, overrides={"US-PJM": [1.0] * 24})

    def test_unknown_override_zone_rejected(self):
        with pytest.raises(KeyError):
            CarbonIntensitySource(hours=24, overrides={"XX": [1.0] * 24})

    def test_hourly_window(self):
        source = CarbonIntensitySource(hours=48)
        window = source.hourly_window("us-east-1", 10, 5)
        trace = source.trace("us-east-1")
        assert np.allclose(window, trace[10:15])


class TestPricing:
    def test_base_lambda_price(self):
        prices = PricingSource().prices("us-east-1")
        assert prices.lambda_gb_second == pytest.approx(1.66667e-5)
        assert prices.lambda_invocation == pytest.approx(2e-7)

    def test_regional_multiplier(self):
        src = PricingSource()
        assert src.prices("us-west-1").lambda_gb_second > src.prices(
            "us-east-1"
        ).lambda_gb_second

    def test_intra_region_egress_free(self):
        assert PricingSource().egress_per_gb("us-east-1", "us-east-1") == 0.0

    def test_cross_region_egress_charged_to_sender(self):
        src = PricingSource()
        assert src.egress_per_gb("us-east-1", "ca-central-1") == pytest.approx(0.09)

    def test_unit_prices_derived(self):
        prices = PricingSource().prices("us-east-1")
        assert prices.sns_publish == pytest.approx(0.5e-6)
        assert prices.dynamodb_write == pytest.approx(1.25e-6)
        assert prices.dynamodb_read == pytest.approx(0.25e-6)

    def test_unknown_region(self):
        with pytest.raises(KeyError, match="known"):
            PricingSource().prices("nowhere-1")


class TestLatency:
    def test_intra_region_rtt_small(self):
        assert LatencySource().rtt("us-east-1", "us-east-1") == pytest.approx(
            0.001
        )

    def test_symmetry(self):
        src = LatencySource()
        assert src.rtt("us-east-1", "us-west-2") == pytest.approx(
            src.rtt("us-west-2", "us-east-1")
        )

    def test_coast_to_coast_magnitude(self):
        # CloudPing reports ~60-75 ms us-east-1 <-> us-west-1.
        rtt = LatencySource().rtt("us-east-1", "us-west-1")
        assert 0.04 < rtt < 0.09

    def test_nearby_regions_fast(self):
        # us-east-1 <-> ca-central-1 is ~15-20 ms on CloudPing.
        rtt = LatencySource().rtt("us-east-1", "ca-central-1")
        assert 0.008 < rtt < 0.03

    def test_one_way_is_half_rtt(self):
        src = LatencySource()
        assert src.one_way("us-east-1", "us-west-2") == pytest.approx(
            src.rtt("us-east-1", "us-west-2") / 2
        )

    def test_great_circle_reasonable(self):
        a = get_region("us-east-1")
        b = get_region("us-west-1")
        km = great_circle_km(a, b)
        assert 3500 < km < 4500  # Virginia <-> N. California
