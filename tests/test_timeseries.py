"""Tests for windowed telemetry (`repro.obs.timeseries`).

Covers the sampler's window mechanics on a bare simulation environment
(grid alignment, counter deltas, gauge last-values, histogram bucket
deltas + quantiles, sparse emission, partial close), the simulator's
:class:`RepeatingEvent` liveness contract (never keeps the queue alive
on its own), the ledger-derived per-window carbon series, the JSONL and
Prometheus exporters, and the end-to-end determinism contract: a
telemetered ``run_caribou`` produces byte-identical series across
same-seed reruns and across serial vs threaded solver backends.
"""

import io
import json

import pytest

from repro.apps import get_app
from repro.cloud.simulator import RepeatingEvent, SimulationEnvironment
from repro.experiments.harness import run_caribou
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    SERIES_SCHEMA,
    TelemetryConfig,
    WindowedSampler,
    bucket_quantile,
    export_series,
    load_series_jsonl,
    merge_series,
    render_prometheus,
    series_to_jsonl,
)

REGIONS = ("us-east-1", "ca-central-1")


# ------------------------------------------------------------- bucket_quantile
class TestBucketQuantile:
    def test_empty_window_is_zero(self):
        assert bucket_quantile((1.0, 2.0), (0, 0, 0), 0.95) == 0.0

    def test_interpolates_within_bucket(self):
        # 10 observations all in (1, 2]: p50 lands mid-bucket.
        assert bucket_quantile((1.0, 2.0), (0, 10, 0), 0.5) == pytest.approx(1.5)

    def test_first_bucket_lower_bound_is_zero(self):
        # All mass in the first bucket: interpolation starts at 0.
        assert bucket_quantile((4.0,), (10, 0), 0.5) == pytest.approx(2.0)

    def test_overflow_clamps_to_last_finite_bound(self):
        assert bucket_quantile((1.0, 2.0), (0, 0, 5), 0.99) == 2.0

    def test_no_bounds_degenerates_to_zero(self):
        assert bucket_quantile((), (3,), 0.5) == 0.0

    def test_monotone_in_q(self):
        bounds = (0.5, 1.0, 2.0, 4.0)
        counts = (3, 7, 5, 2, 1)
        qs = [bucket_quantile(bounds, counts, q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)


# -------------------------------------------------------------- RepeatingEvent
class TestRepeatingEvent:
    def test_fires_on_absolute_grid(self):
        env = SimulationEnvironment()
        boundaries = []
        env.schedule_at(3.0, lambda: None)
        env.schedule_at(25.0, lambda: None)
        rep = env.every(10.0, boundaries.append)
        env.run_until_idle()
        # Grid-aligned to absolute multiples of the interval, not to arm
        # time.  The firing armed while work was still pending (at 20.0,
        # the 25.0 event was queued) runs as one trailing fire at 30.0,
        # then the event parks instead of spinning forever.
        assert boundaries == [10.0, 20.0, 30.0]
        assert rep.fired == 3
        assert not rep.armed

    def test_parks_after_one_trailing_fire(self):
        env = SimulationEnvironment()
        rep = env.every(5.0, lambda b: None)
        env.run_until_idle()
        # No real work scheduled: exactly the already-armed firing runs,
        # then the event parks — run_until_idle terminates.
        assert env.now() == 5.0
        assert rep.fired == 1

    def test_rearm_after_drain(self):
        env = SimulationEnvironment()
        boundaries = []
        env.schedule_at(7.0, lambda: None)
        rep = env.every(10.0, boundaries.append)
        env.run_until_idle()
        assert boundaries == [10.0]
        env.schedule_at(env.now() + 15.0, lambda: None)
        rep.arm()
        env.run_until_idle()
        assert boundaries == [10.0, 20.0, 30.0]

    def test_arm_is_idempotent_while_armed(self):
        env = SimulationEnvironment()
        rep = env.every(10.0, lambda b: None)
        assert rep.armed
        rep.arm()
        env.schedule_at(12.0, lambda: None)
        env.run_until_idle()
        assert rep.fired == 2

    def test_stop_cancels_pending_fire(self):
        env = SimulationEnvironment()
        boundaries = []
        env.schedule_at(50.0, lambda: None)
        rep = env.every(10.0, boundaries.append)
        rep.stop()
        env.run_until_idle()
        assert boundaries == []
        assert not rep.armed

    def test_rejects_bad_interval(self):
        env = SimulationEnvironment()
        with pytest.raises(ValueError):
            RepeatingEvent(env, 0.0, lambda b: None)


# ------------------------------------------------------------- WindowedSampler
class TestWindowedSampler:
    def _env_reg(self):
        return SimulationEnvironment(), MetricsRegistry()

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedSampler(MetricsRegistry(), window_s=0.0)

    def test_arm_requires_attach(self):
        with pytest.raises(RuntimeError):
            WindowedSampler(MetricsRegistry()).arm()

    def test_counter_deltas_per_window(self):
        env, reg = self._env_reg()
        c = reg.counter("jobs.done")
        env.schedule_at(2.0, lambda: c.inc(3))
        env.schedule_at(12.0, lambda: c.inc(5))
        env.schedule_at(23.0, lambda: c.inc(1))
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)
        env.run_until_idle()
        sampler.close()
        assert [(p["window"], p["value"]) for p in sampler.points] == [
            (0.0, 3.0), (10.0, 5.0), (20.0, 1.0),
        ]
        assert all(p["type"] == "counter" for p in sampler.points)

    def test_quiet_windows_emit_nothing(self):
        env, reg = self._env_reg()
        c = reg.counter("sparse")
        env.schedule_at(1.0, lambda: c.inc())
        env.schedule_at(35.0, lambda: c.inc())
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)
        env.run_until_idle()
        sampler.close()
        # Windows 10 and 20 are silent: no zero-valued filler points.
        assert [p["window"] for p in sampler.points] == [0.0, 30.0]

    def test_pre_attach_activity_is_baselined_out(self):
        env, reg = self._env_reg()
        c = reg.counter("warmup")
        c.inc(100)
        env.schedule_at(3.0, lambda: c.inc(2))
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)
        env.run_until_idle()
        sampler.close()
        assert [p["value"] for p in sampler.points] == [2.0]

    def test_gauge_last_value_and_only_on_change(self):
        env, reg = self._env_reg()
        g = reg.gauge("queue.depth")
        env.schedule_at(1.0, lambda: g.set(4))
        env.schedule_at(8.0, lambda: g.set(7))   # same window: last wins
        env.schedule_at(25.0, lambda: g.set(7))  # unchanged: no point
        env.schedule_at(31.0, lambda: g.set(0))
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)
        env.run_until_idle()
        sampler.close()
        gauges = [p for p in sampler.points if p["type"] == "gauge"]
        assert [(p["window"], p["value"]) for p in gauges] == [
            (0.0, 7.0), (30.0, 0.0),
        ]

    def test_histogram_window_deltas_and_quantiles(self):
        env, reg = self._env_reg()
        h = reg.histogram("latency", bounds=(1.0, 2.0, 4.0))
        for t, v in ((1.0, 0.5), (2.0, 1.5), (3.0, 1.6), (15.0, 3.0)):
            env.schedule_at(t, lambda v=v: h.observe(v))
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)
        env.run_until_idle()
        sampler.close()
        pts = [p for p in sampler.points if p["type"] == "histogram"]
        assert len(pts) == 2
        first, second = pts
        assert first["window"] == 0.0 and first["count"] == 3
        assert first["sum"] == pytest.approx(3.6)
        # Only non-empty delta buckets appear.
        assert first["buckets"] == {"1": 1, "2": 2}
        # Window quantile reflects only the window's own observations.
        assert first["p50"] == pytest.approx(1.25)
        assert second["count"] == 1 and second["buckets"] == {"4": 1}
        # Second window's quantiles ignore the first window's mass: the
        # single observation interpolates inside the (2, 4] bucket.
        assert second["p50"] == pytest.approx(3.0)

    def test_close_flushes_partial_window(self):
        env, reg = self._env_reg()
        c = reg.counter("tail")
        env.schedule_at(43.5, lambda: None)
        env.run_until_idle()  # park the clock mid-window at 43.5
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)   # window grid: last boundary is 40.0
        c.inc(3)
        sampler.close()       # no boundary ever fired: partial flush
        assert [(p["window"], p["value"]) for p in sampler.points] == [
            (40.0, 3.0)
        ]
        sampler.close()  # idempotent
        assert len(sampler.points) == 1

    def test_points_sorted_by_metric_within_window(self):
        env, reg = self._env_reg()
        b = reg.counter("zz.last")
        a = reg.counter("aa.first")
        env.schedule_at(1.0, lambda: (b.inc(), a.inc()))
        sampler = WindowedSampler(reg, window_s=10.0)
        sampler.attach(env)
        env.run_until_idle()
        sampler.close()
        assert [p["metric"] for p in sampler.points] == ["aa.first", "zz.last"]

    def test_to_jsonl_has_header(self):
        sampler = WindowedSampler(MetricsRegistry(), window_s=60.0)
        header = json.loads(sampler.to_jsonl().splitlines()[0])
        assert header == {"schema": SERIES_SCHEMA, "window_s": 60.0}


# ------------------------------------------------------------------ exporters
class TestSeriesJsonl:
    POINTS = [
        {"metric": "a", "window": 0.0, "type": "counter", "value": 1.0},
        {"metric": "b", "window": 3600.0, "type": "gauge", "value": 2.5},
    ]

    def test_round_trip_text(self):
        text = series_to_jsonl(self.POINTS, window_s=1800.0)
        points, window_s = load_series_jsonl(text)
        assert points == self.POINTS
        assert window_s == 1800.0

    def test_round_trip_path_and_file_object(self, tmp_path):
        path = tmp_path / "run.series.jsonl"
        export_series(self.POINTS, str(path), window_s=60.0)
        points, window_s = load_series_jsonl(str(path))
        assert (points, window_s) == (self.POINTS, 60.0)
        buf = io.StringIO()
        export_series(self.POINTS, buf, window_s=60.0)
        points2, _ = load_series_jsonl(io.StringIO(buf.getvalue()))
        assert points2 == self.POINTS

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a series dump"):
            load_series_jsonl('{"schema":"something.else/v9"}\n')

    def test_empty_input(self):
        assert load_series_jsonl("") == ([], DEFAULT_WINDOW_S)

    def test_lines_are_compact_and_sorted(self):
        for line in series_to_jsonl(self.POINTS).splitlines():
            doc = json.loads(line)
            assert list(doc) == sorted(doc)
            assert ": " not in line and ", " not in line

    def test_merge_series_sorts_by_window_then_metric(self):
        a = [{"metric": "z", "window": 0.0, "type": "counter", "value": 1.0}]
        b = [
            {"metric": "a", "window": 3600.0, "type": "counter", "value": 1.0},
            {"metric": "a", "window": 0.0, "type": "counter", "value": 1.0},
        ]
        merged = merge_series(a, b)
        assert [(p["window"], p["metric"]) for p in merged] == [
            (0.0, "a"), (0.0, "z"), (3600.0, "a"),
        ]


class TestPrometheus:
    def test_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("exec.requests", workflow="wf").inc(3)
        reg.gauge("queue depth").set(1.5)
        h = reg.histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE caribou_exec_requests counter" in lines
        assert 'caribou_exec_requests{workflow="wf"} 3' in lines
        # Non-alphanumeric characters sanitised to underscores.
        assert "caribou_queue_depth 1.5" in lines
        # Histogram buckets are cumulative and end at +Inf == count.
        assert 'caribou_lat_bucket{le="1"} 1' in lines
        assert 'caribou_lat_bucket{le="2"} 1' in lines
        assert 'caribou_lat_bucket{le="+Inf"} 2' in lines
        assert "caribou_lat_sum 5.5" in lines
        assert "caribou_lat_count 2" in lines
        # Families sort by name; every family gets exactly one TYPE line.
        types = [ln for ln in lines if ln.startswith("# TYPE")]
        assert types == sorted(types)
        assert render_prometheus(reg) == text  # deterministic

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


# --------------------------------------------------------- registry iteration
class TestRegistryIteration:
    def test_iterators_are_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b.counter")
        reg.counter("a.counter")
        reg.gauge("g")
        reg.histogram("h")
        assert [k for k, _ in reg.iter_counters()] == ["a.counter", "b.counter"]
        assert [k for k, _ in reg.iter_gauges()] == ["g"]
        assert [k for k, _ in reg.iter_histograms()] == ["h"]

    def test_snapshot_histogram_exposes_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        h.observe(3.0)
        entry = reg.snapshot()["lat"]
        assert entry["buckets"] == {"1": 1, "2": 0, "+Inf": 1}
        assert entry["count"] == 2


# ------------------------------------------------------------ end-to-end runs
@pytest.fixture(scope="module")
def telemetered_outcome():
    return run_caribou(
        get_app("text2speech_censoring"), "small", REGIONS,
        seed=3, n_invocations=4,
        telemetry=TelemetryConfig(window_s=3600.0),
    )


class TestHarnessTelemetry:
    def test_outcome_carries_series_and_prom(self, telemetered_outcome):
        out = telemetered_outcome
        assert out.series and out.series_window_s == 3600.0
        assert out.prom.startswith("# TYPE caribou_")
        metrics = {p["metric"].split("{")[0] for p in out.series}
        assert "executor.requests" in metrics
        assert "executor.request_latency_s" in metrics
        assert "ledger.carbon_g" in metrics
        assert "ledger.requests" in metrics

    def test_ledger_requests_match_invocations(self, telemetered_outcome):
        total = sum(
            p["value"] for p in telemetered_outcome.series
            if p["metric"].startswith("ledger.requests{")
        )
        # Warm-up + measured invocations each start one request.
        assert total >= 4

    def test_series_sorted_and_serialisable(self, telemetered_outcome):
        pts = telemetered_outcome.series
        keys = [(p["window"], p["metric"]) for p in pts]
        assert keys == sorted(keys)
        points, _ = load_series_jsonl(series_to_jsonl(pts))
        assert points == pts

    def test_same_seed_reruns_byte_identical(self, telemetered_outcome):
        again = run_caribou(
            get_app("text2speech_censoring"), "small", REGIONS,
            seed=3, n_invocations=4,
            telemetry=TelemetryConfig(window_s=3600.0),
        )
        assert series_to_jsonl(again.series) == series_to_jsonl(
            telemetered_outcome.series
        )
        assert again.prom == telemetered_outcome.prom

    def test_thread_backend_series_identical(self, telemetered_outcome):
        threaded = run_caribou(
            get_app("text2speech_censoring"), "small", REGIONS,
            seed=3, n_invocations=4, jobs=2, backend="thread",
            telemetry=TelemetryConfig(window_s=3600.0),
        )
        assert series_to_jsonl(threaded.series) == series_to_jsonl(
            telemetered_outcome.series
        )

    def test_untelemetered_run_unchanged(self):
        """NullTracer contract, extended: no TelemetryConfig => no series,
        no prom, and the measured means match a telemetered twin."""
        plain = run_caribou(
            get_app("text2speech_censoring"), "small", REGIONS,
            seed=3, n_invocations=4,
        )
        assert plain.series is None and plain.prom is None
        telemetered = run_caribou(
            get_app("text2speech_censoring"), "small", REGIONS,
            seed=3, n_invocations=4,
            telemetry=TelemetryConfig(window_s=3600.0),
        )
        assert plain.mean_service_time_s == telemetered.mean_service_time_s
        assert plain.per_scenario == telemetered.per_scenario
