"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings as hypothesis_settings

from repro.cloud.provider import SimulatedCloud
from repro.model.dag import Edge, Node, WorkflowDAG

# One deterministic hypothesis profile for the whole suite: derandomized
# (fixed example stream, so CI failures reproduce locally byte-for-byte)
# and without the wall-clock deadline, which misfires on the Monte-Carlo
# solver paths where the first call pays one-off cache warm-up costs.
hypothesis_settings.register_profile(
    "repro-deterministic", derandomize=True, deadline=None
)
hypothesis_settings.load_profile("repro-deterministic")


@pytest.fixture
def cloud() -> SimulatedCloud:
    """A fresh four-region simulated cloud with a fixed seed."""
    return SimulatedCloud(seed=42)


@pytest.fixture
def diamond_dag() -> WorkflowDAG:
    """a -> {b, c} -> d with one conditional edge and d a sync node."""
    dag = WorkflowDAG("diamond")
    for name in ("a", "b", "c", "d"):
        dag.add_node(Node(name=name, function=name))
    dag.add_edge(Edge("a", "b"))
    dag.add_edge(Edge("a", "c", conditional=True))
    dag.add_edge(Edge("b", "d"))
    dag.add_edge(Edge("c", "d"))
    dag.validate()
    return dag


@pytest.fixture
def chain_dag() -> WorkflowDAG:
    """a -> b -> c, the simplest multi-stage shape."""
    dag = WorkflowDAG("chain")
    for name in ("a", "b", "c"):
        dag.add_node(Node(name=name, function=name))
    dag.add_edge(Edge("a", "b"))
    dag.add_edge(Edge("b", "c"))
    dag.validate()
    return dag
