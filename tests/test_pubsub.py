"""Tests for the pub/sub messaging service (SNS substitute)."""

import pytest

from repro.cloud.pubsub import (
    DELIVERY_OVERHEAD_S,
    MAX_DELIVERY_ATTEMPTS,
    PUBLISH_OVERHEAD_S,
    Message,
)
from repro.common.errors import MessageDeliveryError, WorkflowDefinitionError


class TestTopics:
    def test_create_and_exists(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        assert cloud.pubsub.topic_exists("t", "us-east-1")
        assert not cloud.pubsub.topic_exists("t", "us-west-1")

    def test_delete(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        cloud.pubsub.delete_topic("t", "us-east-1")
        assert not cloud.pubsub.topic_exists("t", "us-east-1")

    def test_publish_to_missing_topic_raises(self, cloud):
        with pytest.raises(MessageDeliveryError):
            cloud.pubsub.publish(
                "ghost", "us-east-1", Message(body={}, size_bytes=10),
                source_region="us-east-1",
            )


class TestDelivery:
    def test_message_reaches_subscriber(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        received = []
        cloud.pubsub.subscribe("t", "us-east-1", lambda m: received.append(m.body))
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body={"x": 1}, size_bytes=100),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert received == [{"x": 1}]

    def test_delivery_is_delayed_by_overheads(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        times = []
        cloud.pubsub.subscribe("t", "us-east-1", lambda m: times.append(cloud.now()))
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=0),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert times[0] >= PUBLISH_OVERHEAD_S + DELIVERY_OVERHEAD_S

    def test_cross_region_publish_transfers_body(self, cloud):
        cloud.pubsub.create_topic("t", "ca-central-1")
        cloud.pubsub.subscribe("t", "ca-central-1", lambda m: None)
        cloud.pubsub.publish(
            "t", "ca-central-1",
            Message(body=None, size_bytes=5000, workflow="wf"),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        recs = cloud.ledger.transmissions_for("wf")
        assert recs[0].src_region == "us-east-1"
        assert recs[0].dst_region == "ca-central-1"

    def test_edge_label_propagates_to_transfer(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        cloud.pubsub.subscribe("t", "us-east-1", lambda m: None)
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=10, workflow="wf"),
            source_region="us-east-1", edge_label="a->b",
        )
        assert cloud.ledger.transmissions_for("wf")[0].edge == "a->b"

    def test_publish_metered(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        cloud.pubsub.subscribe("t", "us-east-1", lambda m: None)
        cloud.pubsub.publish(
            "t", "us-east-1",
            Message(body=None, size_bytes=10, workflow="wf", request_id="r"),
            source_region="us-east-1",
        )
        msgs = cloud.ledger.messages_for("wf")
        assert len(msgs) == 1
        assert msgs[0].topic == "t"


class TestRetrySemantics:
    def test_failing_subscriber_is_retried(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        attempts = []

        def flaky(message):
            attempts.append(cloud.now())
            if len(attempts) < 2:
                raise RuntimeError("transient")

        cloud.pubsub.subscribe("t", "us-east-1", flaky)
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=0),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert len(attempts) == 2
        assert cloud.pubsub.topic_stats("t", "us-east-1") == (1, 0)

    def test_message_dead_lettered_after_max_attempts(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        attempts = []

        def broken(message):
            attempts.append(1)
            raise RuntimeError("permanent")

        cloud.pubsub.subscribe("t", "us-east-1", broken)
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body="b", size_bytes=0),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert len(attempts) == MAX_DELIVERY_ATTEMPTS
        assert cloud.pubsub.topic_stats("t", "us-east-1") == (0, 1)
        assert len(cloud.pubsub.dead_letters) == 1

    def test_no_subscriber_dead_letters(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=0),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert len(cloud.pubsub.dead_letters) == 1

    def test_retry_backoff_spacing(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        attempts = []

        def broken(message):
            attempts.append(cloud.now())
            raise RuntimeError("nope")

        cloud.pubsub.subscribe("t", "us-east-1", broken)
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=0),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        gaps = [b - a for a, b in zip(attempts, attempts[1:])]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))  # exponential

    def test_non_retryable_error_dead_letters_immediately(self, cloud):
        """A deterministic error (``retryable = False``) cannot be fixed
        by re-running the handler: it must skip the retry loop."""
        cloud.pubsub.create_topic("t", "us-east-1")
        attempts = []

        def malformed(message):
            attempts.append(1)
            raise WorkflowDefinitionError("bad DAG")

        cloud.pubsub.subscribe("t", "us-east-1", malformed)
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=0, workflow="wf"),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert len(attempts) == 1
        assert cloud.pubsub.topic_stats("t", "us-east-1") == (0, 1)
        assert cloud.pubsub.dead_letter_count("wf") == 1
        assert cloud.pubsub.retry_count("wf") == 0

    def test_per_workflow_counters(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")

        def broken(message):
            raise RuntimeError("nope")

        cloud.pubsub.subscribe("t", "us-east-1", broken)
        for wf in ("alpha", "alpha", "beta"):
            cloud.pubsub.publish(
                "t", "us-east-1", Message(body=None, size_bytes=0, workflow=wf),
                source_region="us-east-1",
            )
        cloud.run_until_idle()
        assert cloud.pubsub.retry_count("alpha") == 2 * (MAX_DELIVERY_ATTEMPTS - 1)
        assert cloud.pubsub.retry_count("beta") == MAX_DELIVERY_ATTEMPTS - 1
        assert cloud.pubsub.dead_letter_count("alpha") == 2
        assert cloud.pubsub.dead_letter_count("beta") == 1
        assert cloud.pubsub.retry_count("unknown") == 0
        assert cloud.pubsub.dead_letter_count("unknown") == 0

    def test_dead_letter_listener_notified(self, cloud):
        cloud.pubsub.create_topic("t", "us-east-1")
        seen = []
        cloud.pubsub.add_dead_letter_listener(
            lambda topic, message, error: seen.append((topic, error))
        )
        cloud.pubsub.publish(
            "t", "us-east-1", Message(body=None, size_bytes=0, workflow="wf"),
            source_region="us-east-1",
        )
        cloud.run_until_idle()
        assert seen == [("t", "no subscriber")]

    def test_direct_dead_letter_counts_without_delivery(self, cloud):
        """Publishers that can prove delivery is impossible record the
        loss up-front instead of raising inside a scheduled callback."""
        seen = []
        cloud.pubsub.add_dead_letter_listener(
            lambda topic, message, error: seen.append(topic)
        )
        message = Message(body=None, size_bytes=0, workflow="wf")
        cloud.pubsub.dead_letter("ghost", message, "no deliverable region")
        assert cloud.pubsub.dead_letter_count("wf") == 1
        assert ("ghost", message, "no deliverable region") in cloud.pubsub.dead_letters
        assert seen == ["ghost"]


class TestRetryHandles:
    """The per-workflow retry-timer ledger (``pending_retries`` /
    ``cancel_pending_retries``) that workflow teardown relies on."""

    def _arm(self, cloud, *workflows):
        """Publish one always-failing message per workflow and advance
        the clock past the first delivery attempts but short of the
        0.5 s backoff, leaving each message's retry timer armed."""
        cloud.pubsub.create_topic("t", "us-east-1")
        attempts = []

        def broken(message):
            attempts.append(message.workflow)
            raise RuntimeError("transient")

        cloud.pubsub.subscribe("t", "us-east-1", broken)
        for wf in workflows:
            cloud.pubsub.publish(
                "t", "us-east-1", Message(body=None, size_bytes=0, workflow=wf),
                source_region="us-east-1",
            )
        cloud.env.run(until=0.3)
        assert sorted(attempts) == sorted(workflows)  # first attempts done
        return attempts

    def test_pending_retries_counts_armed_timers(self, cloud):
        self._arm(cloud, "wf", "wf", "wf")
        assert cloud.pubsub.pending_retries("wf") == 3
        assert cloud.pubsub.pending_retries("other") == 0

    def test_cancel_suppresses_redelivery_without_dead_lettering(self, cloud):
        attempts = self._arm(cloud, "wf", "wf")
        assert cloud.pubsub.cancel_pending_retries("wf") == 2
        assert cloud.pubsub.pending_retries("wf") == 0
        cloud.run_until_idle()
        # No redelivery happened, and the messages were NOT dead-lettered
        # (the workflow is going away; counting them as losses would lie).
        assert len(attempts) == 2
        assert cloud.pubsub.dead_letter_count("wf") == 0
        assert cloud.pubsub.topic_stats("t", "us-east-1") == (0, 0)

    def test_cancel_is_scoped_to_one_workflow(self, cloud):
        attempts = self._arm(cloud, "alpha", "beta")
        assert cloud.pubsub.cancel_pending_retries("alpha") == 1
        assert cloud.pubsub.pending_retries("beta") == 1
        cloud.run_until_idle()
        # beta kept retrying to exhaustion; alpha stopped after attempt 1.
        assert attempts.count("alpha") == 1
        assert attempts.count("beta") == MAX_DELIVERY_ATTEMPTS
        assert cloud.pubsub.dead_letter_count("beta") == 1

    def test_fired_timers_cancel_as_noops(self, cloud):
        """After natural exhaustion every handle has fired: the ledger
        reports nothing pending and a late cancel cancels nothing."""
        self._arm(cloud, "wf")
        cloud.run_until_idle()
        assert cloud.pubsub.pending_retries("wf") == 0
        assert cloud.pubsub.cancel_pending_retries("wf") == 0
        assert cloud.pubsub.dead_letter_count("wf") == 1

    def test_cancel_unknown_workflow_returns_zero(self, cloud):
        assert cloud.pubsub.cancel_pending_retries("ghost") == 0
