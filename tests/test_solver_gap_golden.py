"""Golden solver-gap table (satellite of the exact-solver tentpole).

For every example application, solve one fixed-seed hour with the
branch-and-bound optimum, HBSS, and the coarse single-region heuristic
over one *shared* evaluator, and pin the resulting optimality gaps
(per cent above the certified optimum) in a committed JSON table.  This
is the paper's near-optimal-HBSS claim (§9.2) as a regression test: a
solver change that silently degrades HBSS search quality — or breaks
the exact solver — shows up as a reviewable diff.  Regenerate with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_solver_gap_golden.py
"""

import json
import os
import pathlib

from repro.apps import ALL_APPS
from repro.cloud.provider import SimulatedCloud
from repro.core.solver import CoarseSolver, ExactSolver, HBSSSolver
from repro.experiments.harness import (
    build_plan_evaluator,
    deploy_benchmark,
    warm_up,
)
from repro.metrics.carbon import TransmissionScenario

GOLDEN = pathlib.Path(__file__).parent / "golden" / "solver_gap.json"
SEED = 1234
HOUR = 0


def _gap_pct(metric: float, optimum: float) -> float:
    if optimum <= 0:
        return 0.0
    return round((metric - optimum) / optimum * 100.0, 6)


def solver_gap_table() -> dict:
    """Per-app optimality gaps at default tolerances, fixed seed."""
    table = {}
    for name in sorted(ALL_APPS):
        app = ALL_APPS[name]
        cloud = SimulatedCloud(seed=SEED)
        deployed, executor, _ = deploy_benchmark(app, cloud)
        warm_up(executor, app, "small", n=6)
        ev = build_plan_evaluator(deployed, TransmissionScenario.best_case())
        exact_plan, _ = ExactSolver(ev).solve_hour(HOUR)
        optimum = ev.metric(exact_plan, HOUR)
        hbss = HBSSSolver(
            ev, cloud.env.rng.get(f"solver:{deployed.name}:gap")
        )
        hbss_metric = ev.metric(hbss.solve_hour(HOUR).best_plan, HOUR)
        coarse_plan, _ = CoarseSolver(ev).solve_hour(HOUR)
        coarse_metric = ev.metric(coarse_plan, HOUR)
        table[name] = {
            "exact_carbon_g": round(optimum, 9),
            "hbss_gap_pct": _gap_pct(hbss_metric, optimum),
            "coarse_gap_pct": _gap_pct(coarse_metric, optimum),
        }
    return table


def _render(table: dict) -> str:
    return json.dumps(table, indent=2, sort_keys=True) + "\n"


class TestSolverGapGolden:
    def test_gap_table_matches_snapshot(self):
        produced = _render(solver_gap_table())
        if os.environ.get("UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(produced, encoding="utf-8")
        assert GOLDEN.exists(), (
            "golden gap table missing; regenerate with UPDATE_GOLDEN=1"
        )
        expected = GOLDEN.read_text(encoding="utf-8")
        assert produced == expected, (
            "solver optimality gaps drifted from the golden table; if "
            "intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
        )

    def test_snapshot_covers_every_app(self):
        table = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert sorted(table) == sorted(ALL_APPS)
        for name, row in table.items():
            # exact is the proven optimum, so no heuristic may beat it.
            assert row["hbss_gap_pct"] >= 0.0, name
            assert row["coarse_gap_pct"] >= 0.0, name
            assert row["exact_carbon_g"] > 0.0, name

    def test_snapshot_reproduces_paper_claim(self):
        # §9.2: HBSS lands within a few per cent of the optimum while
        # evaluating a vanishing fraction of the space.  The committed
        # numbers must stay inside that envelope.
        table = json.loads(GOLDEN.read_text(encoding="utf-8"))
        for name, row in table.items():
            assert row["hbss_gap_pct"] <= 5.0, (
                f"{name}: HBSS gap {row['hbss_gap_pct']}% breaks the "
                "near-optimality claim"
            )
