"""Property-based tests (hypothesis) for the exact solver's guarantees.

Three invariants define ``ExactSolver``'s contract and are checked here
over randomly drawn workloads rather than hand-picked fixtures:

* **Dominance** — the certified optimum is never worse than any
  heuristic (coarse, HBSS) evaluated on the same shared evaluator.
* **Feasibility** — whatever it returns is tolerance-compliant, or is
  exactly the §6.1 home fallback when nothing compliant exists.
* **Stability** — the winning plan is a function of the problem, not of
  incidental iteration order: permuting the evaluator's region tuple
  (the moral equivalent of a PYTHONHASHSEED reshuffle) must not change
  the answer.

Plus the property the optimality proof rests on: the admissible lower
bounds never exceed the Monte-Carlo metrics they bound.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.solver import CoarseSolver, ExactSolver, HBSSSolver
from repro.core.solver.exact import BOUND_SAFETY, LowerBoundTables
from repro.model.config import Tolerances, WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG

from tests.test_solvers import REGIONS, FixtureData, make_evaluator

SOLVER_SUPPRESS = (HealthCheck.too_slow, HealthCheck.data_too_large)


def _chain(n):
    dag = WorkflowDAG(f"chain{n}")
    names = [f"n{i}" for i in range(n)]
    for name in names:
        dag.add_node(Node(name=name, function=name))
    for a, b in zip(names, names[1:]):
        dag.add_edge(Edge(a, b))
    dag.validate()
    return dag


def _diamond():
    dag = WorkflowDAG("diamond")
    for name in ("a", "b", "c", "d"):
        dag.add_node(Node(name=name, function=name))
    dag.add_edge(Edge("a", "b"))
    dag.add_edge(Edge("a", "c", conditional=True))
    dag.add_edge(Edge("b", "d"))
    dag.add_edge(Edge("c", "d"))
    dag.validate()
    return dag


dags = st.sampled_from([_chain(1), _chain(2), _chain(3), _diamond()])

workloads = st.builds(
    FixtureData,
    exec_seconds=st.floats(min_value=0.05, max_value=3.0),
    edge_bytes=st.floats(min_value=1e3, max_value=1e9),
)

tolerance_options = st.sampled_from(
    [
        Tolerances(),
        Tolerances(latency=0.5),
        Tolerances(latency=0.1),
        Tolerances(cost=0.2),
        Tolerances(latency=0.2, cost=0.2, carbon=1.0),
        Tolerances(latency=0.0, cost=0.0),
    ]
)


def _evaluator(dag, data, tolerances=None, regions=REGIONS, seed=0):
    config = WorkflowConfig(
        home_region="us-east-1",
        tolerances=tolerances if tolerances is not None else Tolerances(),
    )
    return make_evaluator(
        dag, config=config, data=data, regions=regions, seed=seed
    )


class TestExactDominance:
    @settings(max_examples=15, suppress_health_check=SOLVER_SUPPRESS)
    @given(dag=dags, data=workloads, tolerances=tolerance_options)
    def test_exact_never_worse_than_coarse(self, dag, data, tolerances):
        ev = _evaluator(dag, data, tolerances)
        exact_plan, _ = ExactSolver(ev).solve_hour(0)
        coarse_plan, _ = CoarseSolver(ev).solve_hour(0)
        assert ev.metric(exact_plan, 0) <= ev.metric(coarse_plan, 0)

    @settings(max_examples=15, suppress_health_check=SOLVER_SUPPRESS)
    @given(
        dag=dags,
        data=workloads,
        tolerances=tolerance_options,
        hbss_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_exact_never_worse_than_hbss(
        self, dag, data, tolerances, hbss_seed
    ):
        ev = _evaluator(dag, data, tolerances)
        exact_plan, _ = ExactSolver(ev).solve_hour(0)
        hbss = HBSSSolver(ev, np.random.default_rng(hbss_seed))
        result = hbss.solve_hour(0)
        assert ev.metric(exact_plan, 0) <= ev.metric(result.best_plan, 0)


class TestExactFeasibility:
    @settings(max_examples=20, suppress_health_check=SOLVER_SUPPRESS)
    @given(dag=dags, data=workloads, tolerances=tolerance_options)
    def test_compliant_or_exact_home_fallback(self, dag, data, tolerances):
        ev = _evaluator(dag, data, tolerances)
        plan, _ = ExactSolver(ev).solve_hour(0, enforce_tolerances=True)
        assert ev.is_plan_compliant(plan)
        if ev.tolerance_violated(plan, 0):
            assert plan == ev.home_plan()


class TestExactStability:
    @settings(max_examples=12, suppress_health_check=SOLVER_SUPPRESS)
    @given(
        dag=dags,
        data=workloads,
        tolerances=tolerance_options,
        permuted=st.permutations(REGIONS),
    )
    def test_plan_invariant_to_region_order(
        self, dag, data, tolerances, permuted
    ):
        ev_sorted = _evaluator(dag, data, tolerances)
        ev_permuted = _evaluator(
            dag, data, tolerances, regions=tuple(permuted)
        )
        plan_a, est_a = ExactSolver(ev_sorted).solve_hour(0)
        plan_b, est_b = ExactSolver(ev_permuted).solve_hour(0)
        assert plan_a == plan_b
        assert est_a.mean_carbon_g == est_b.mean_carbon_g


class TestBoundAdmissibility:
    @settings(max_examples=20, suppress_health_check=SOLVER_SUPPRESS)
    @given(
        dag=dags,
        data=workloads,
        hour=st.integers(min_value=0, max_value=23),
        region=st.sampled_from(REGIONS),
    )
    def test_lower_bounds_below_monte_carlo_means(
        self, dag, data, hour, region
    ):
        # Each bound holds per sample, so it must sit at or below the
        # sample mean of the matching metric for every plan it prices.
        ev = _evaluator(dag, data)
        bounds = LowerBoundTables(ev)
        from repro.model.plan import DeploymentPlan

        for plan in (
            ev.home_plan(),
            DeploymentPlan.single_region(ev.dag, region),
        ):
            carbon_lb, cost_lb, lat_lb = bounds.plan_lower_bounds(plan, hour)
            est = ev.estimate(plan, hour)
            assert carbon_lb * BOUND_SAFETY <= est.mean_carbon_g
            assert cost_lb * BOUND_SAFETY <= est.mean_cost_usd
            assert lat_lb * BOUND_SAFETY <= est.mean_latency_s
