"""Property-based tests (hypothesis) on core data structures and models."""


import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.simulator import SimulationEnvironment
from repro.data.carbon import generate_carbon_trace
from repro.data.latency import LatencySource
from repro.data.regions import EVALUATION_REGIONS
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.forecast import HoltWintersForecaster
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.model.plan import DeploymentPlan, HourlyPlanSet

regions_st = st.sampled_from(list(EVALUATION_REGIONS))


# ----------------------------------------------------------------- DAG props
@st.composite
def random_dags(draw):
    """Random valid single-start DAGs: edges only go forward in index
    order, node 0 reaches everything."""
    n = draw(st.integers(min_value=2, max_value=8))
    names = [f"n{i}" for i in range(n)]
    dag = WorkflowDAG("prop")
    for name in names:
        dag.add_node(Node(name, name))
    # Ensure connectivity: every node i>0 gets an edge from some j<i.
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        conditional = draw(st.booleans())
        dag.add_edge(Edge(names[j], names[i], conditional=conditional))
    # Extra forward edges.
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 2))
        b = draw(st.integers(min_value=a + 1, max_value=n - 1))
        if not dag.has_edge(names[a], names[b]):
            dag.add_edge(Edge(names[a], names[b]))
    dag.validate()
    return dag


class TestDagProperties:
    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_respects_edges(self, dag):
        order = {n: i for i, n in enumerate(dag.topological_order())}
        for edge in dag.edges:
            assert order[edge.src] < order[edge.dst]

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_single_start_and_reachability(self, dag):
        start = dag.start_node
        reachable = dag.descendants(start) | {start}
        assert reachable == set(dag.node_names)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_sync_nodes_have_multiple_in_edges(self, dag):
        for node in dag.node_names:
            assert dag.is_sync_node(node) == (len(dag.in_edges(node)) > 1)

    @given(random_dags())
    @settings(max_examples=30, deadline=None)
    def test_critical_path_is_valid_path(self, dag):
        weights = {n: 1.0 for n in dag.node_names}
        path, length = dag.critical_path(weights)
        assert path[0] == dag.start_node
        for a, b in zip(path, path[1:]):
            assert dag.has_edge(a, b)
        assert length == pytest.approx(len(path))


# -------------------------------------------------------------- plan props
class TestPlanProperties:
    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=4),
            regions_st, min_size=1, max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_plan_serialization_roundtrip(self, assignments):
        plan = DeploymentPlan(assignments)
        assert DeploymentPlan.from_dict(plan.to_dict()) == plan

    @given(
        st.dictionaries(st.integers(min_value=0, max_value=23), regions_st,
                        min_size=1, max_size=24),
    )
    @settings(max_examples=50, deadline=None)
    def test_plan_set_every_hour_resolves(self, hours_to_region):
        plans = {
            h: DeploymentPlan({"n": r}) for h, r in hours_to_region.items()
        }
        plan_set = HourlyPlanSet(plans)
        for h in range(24):
            plan = plan_set.plan_for_hour(h)
            assert plan.region_of("n") in EVALUATION_REGIONS


# ----------------------------------------------------------- carbon props
class TestCarbonModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.001, max_value=7200.0),
        st.floats(min_value=128, max_value=10240),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_execution_carbon_non_negative_and_monotone_in_intensity(
        self, intensity, duration, memory, utilisation
    ):
        model = CarbonModel(TransmissionScenario.best_case())
        n_vcpu = memory / 1769.0
        carbon = model.execution_carbon_g(
            intensity, duration, memory, n_vcpu,
            cpu_total_time_s=duration * n_vcpu * utilisation,
        )
        assert carbon >= 0.0
        doubled = model.execution_carbon_g(
            intensity * 2, duration, memory, n_vcpu,
            cpu_total_time_s=duration * n_vcpu * utilisation,
        )
        assert doubled == pytest.approx(2 * carbon, rel=1e-9)

    @given(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1e10),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_transmission_carbon_linear_in_size(self, intensity, size, intra):
        model = CarbonModel(TransmissionScenario.best_case())
        c1 = model.transmission_carbon_g(intensity, size, intra)
        c2 = model.transmission_carbon_g(intensity, 2 * size, intra)
        assert c1 >= 0
        assert c2 == pytest.approx(2 * c1, rel=1e-9, abs=1e-15)

    @given(st.floats(min_value=0.001, max_value=3600))
    @settings(max_examples=50, deadline=None)
    def test_power_bounded_by_pmin_pmax(self, duration):
        model = CarbonModel(TransmissionScenario.best_case())
        for cpu_fraction in (0.0, 0.3, 1.0, 5.0):
            p = model.vcpu_power_kw(duration * cpu_fraction, duration, 1.0)
            assert model.p_min <= p <= model.p_max


# --------------------------------------------------------- dist props
class TestDistributionProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_mean_between_min_and_max(self, samples):
        dist = EmpiricalDistribution(samples)
        eps = 1e-9 * max(1.0, abs(dist.min()), abs(dist.max()))
        assert dist.min() - eps <= dist.mean() <= dist.max() + eps
        assert dist.min() - eps <= dist.percentile(50) <= dist.max() + eps

    @given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1,
                    max_size=100),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_window_keeps_newest(self, samples, window):
        dist = EmpiricalDistribution(samples, max_samples=window)
        expected = samples[-window:]
        assert list(dist.samples) == expected

    @given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1,
                    max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_bootstrap_samples_come_from_data(self, samples):
        dist = EmpiricalDistribution(samples)
        rng = np.random.default_rng(0)
        draws = dist.sample(rng, size=20)
        for d in draws:
            assert d in samples


# ------------------------------------------------------- simulator props
class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_events_always_execute_in_order(self, delays):
        env = SimulationEnvironment()
        seen = []
        for d in delays:
            env.schedule(d, lambda t=d: seen.append(env.now()))
        env.run_until_idle()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


# ------------------------------------------------------- forecast props
class TestForecastProperties:
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=72))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_forecasts_always_finite_nonnegative(self, seed, horizon):
        trace = generate_carbon_trace("US-CAISO", 24 * 7, seed=seed)
        pred = HoltWintersForecaster().fit(trace).forecast(horizon)
        assert len(pred) == horizon
        assert np.all(np.isfinite(pred))
        assert np.all(pred >= 0)


# --------------------------------------------------------- latency props
class TestLatencyProperties:
    @given(regions_st, regions_st)
    @settings(max_examples=30, deadline=None)
    def test_rtt_symmetric_and_positive(self, a, b):
        src = LatencySource()
        assert src.rtt(a, b) == pytest.approx(src.rtt(b, a))
        assert src.rtt(a, b) > 0

    @given(regions_st, regions_st, regions_st)
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality_roughly_holds(self, a, b, c):
        # Geodesic-derived latencies honour the triangle inequality up
        # to the fixed per-hop overhead.
        src = LatencySource()
        direct = src.one_way(a, c)
        via = src.one_way(a, b) + src.one_way(b, c)
        assert direct <= via + 1e-9
