"""Property-based tests of the execution runtime's core invariant.

For *any* valid workflow DAG and *any* assignment of conditional-edge
outcomes, running through the Caribou executor must execute exactly the
semantic closure of the DAG — a node runs iff at least one incoming
edge is taken from a node that ran — with every sync node either firing
exactly once (Eq. 4.1) or (when all its in-edges die) never, and no
message ever dead-lettering.  This covers the §4 conditional-DAG and
synchronisation semantics against shapes no hand-written test would
think of.
"""

from typing import Dict, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.provider import SimulatedCloud
from repro.core.api import Payload, Workflow
from repro.core.deployer import DeploymentUtility
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.model.config import WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG


@st.composite
def dag_with_decisions(draw):
    """A random valid DAG plus outcomes for its conditional edges."""
    n = draw(st.integers(min_value=2, max_value=7))
    names = [f"n{i}" for i in range(n)]
    dag = WorkflowDAG("prop")
    for name in names:
        dag.add_node(Node(name, name))
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        dag.add_edge(Edge(names[j], names[i],
                          conditional=draw(st.booleans())))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 2))
        b = draw(st.integers(min_value=a + 1, max_value=n - 1))
        if not dag.has_edge(names[a], names[b]):
            dag.add_edge(Edge(names[a], names[b],
                              conditional=draw(st.booleans())))
    dag.validate()
    decisions = {
        (e.src, e.dst): draw(st.booleans())
        for e in dag.edges if e.conditional
    }
    return dag, decisions


def expected_executed(dag: WorkflowDAG, decisions: Dict[Tuple[str, str], bool]):
    """The semantic closure the runtime must reproduce."""
    executed = {dag.start_node}
    for node in dag.topological_order():
        if node == dag.start_node:
            continue
        for edge in dag.in_edges(node):
            taken = decisions.get((edge.src, edge.dst), True)
            if edge.src in executed and taken:
                executed.add(node)
                break
    return executed


def build_runtime(dag: WorkflowDAG, decisions, seed: int):
    """Materialise the DAG as a deployed workflow with table-driven
    handlers (bypassing static analysis — the DAG is authoritative)."""
    cloud = SimulatedCloud(seed=seed, regions=("us-east-1",))
    workflow = Workflow(dag.name)

    def make_handler(node_name: str):
        def handler(event):
            if dag.is_sync_node(node_name):
                workflow.get_predecessor_data()
            for edge in dag.out_edges(node_name):
                taken = decisions.get((edge.src, edge.dst), True)
                workflow.invoke_serverless_function(
                    Payload(content=node_name, size_bytes=2048.0),
                    edge.dst,
                    taken,
                )
        return handler

    start = dag.start_node
    for node in dag.nodes:
        workflow.serverless_function(
            name=node.name, entry_point=(node.name == start)
        )(make_handler(node.name))

    config = WorkflowConfig(home_region="us-east-1", benchmarking_fraction=0.0)
    deployed = DeployedWorkflow(
        workflow=workflow, dag=dag, config=config, cloud=cloud,
        kv_region="us-east-1",
    )
    executor = CaribouExecutor(deployed)
    utility = DeploymentUtility(cloud)
    for spec in workflow.functions:
        cloud.registry.push("us-east-1", f"{dag.name}/{spec.name}", "0.1", 1e6)
        utility.deploy_function(deployed, executor, spec, "us-east-1")
    return cloud, deployed, executor


class TestExecutionClosureProperty:
    @given(dag_with_decisions())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_executed_set_matches_semantic_closure(self, case):
        dag, decisions = case
        cloud, deployed, executor = build_runtime(dag, decisions, seed=1)
        rid = executor.invoke(Payload(content="go"), force_home=True)
        cloud.run_until_idle()

        ran = {e.node for e in cloud.ledger.executions_for(dag.name, rid)}
        assert ran == expected_executed(dag, decisions)
        assert not cloud.pubsub.dead_letters

    @given(dag_with_decisions())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_node_runs_at_most_once(self, case):
        dag, decisions = case
        cloud, deployed, executor = build_runtime(dag, decisions, seed=2)
        rid = executor.invoke(Payload(content="go"), force_home=True)
        cloud.run_until_idle()
        nodes = [e.node for e in cloud.ledger.executions_for(dag.name, rid)]
        assert len(nodes) == len(set(nodes))

    @given(dag_with_decisions(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_concurrent_requests_isolated(self, case, n_requests):
        dag, decisions = case
        cloud, deployed, executor = build_runtime(dag, decisions, seed=3)
        rids = [
            executor.invoke(Payload(content=f"r{i}"), force_home=True)
            for i in range(n_requests)
        ]
        cloud.run_until_idle()
        expected = expected_executed(dag, decisions)
        for rid in rids:
            ran = {e.node for e in cloud.ledger.executions_for(dag.name, rid)}
            assert ran == expected
