"""Renderer behaviour on deep chaos-run traces.

A chaos run (network partition + region outage + invocation failures)
produces the nastiest traces the repo can generate: retries, dead
requests, home-region fallbacks, and error-annotated spans.  The
renderers of :mod:`repro.obs.render` must stay deterministic (same run,
same text — the CLI diff-tests depend on it) and truncation-safe (a
``max_spans`` cut never raises, never emits a partial line, and always
marks the cut).
"""

from __future__ import annotations

import io

import pytest

from repro.apps import get_app
from repro.cloud.faults import FaultPlan
from repro.common.clock import SECONDS_PER_DAY
from repro.experiments.harness import run_caribou
from repro.obs.render import (
    group_by_request,
    iter_lines,
    load_jsonl,
    render_span_tree,
    render_trace_summary,
    requests_in,
)
from repro.obs.trace import Tracer

REGIONS = ("us-east-1", "us-west-2", "ca-central-1")
SEED = 29


def _chaos_plan() -> FaultPlan:
    return (
        FaultPlan()
        .with_invocation_failures(0.10)
        .with_region_outage(
            "us-west-2", start_s=0.1 * SECONDS_PER_DAY, end_s=0.6 * SECONDS_PER_DAY
        )
        .with_network_partition(
            ("us-east-1",), ("ca-central-1",),
            start_s=0.2 * SECONDS_PER_DAY, end_s=0.5 * SECONDS_PER_DAY,
        )
        .with_kv_latency(4.0, start_s=0.0, end_s=0.4 * SECONDS_PER_DAY)
    )


def _chaos_trace() -> Tracer:
    tracer = Tracer()
    run_caribou(
        get_app("text2speech_censoring"),
        "small",
        REGIONS,
        seed=SEED,
        n_invocations=8,
        fault_plan=_chaos_plan(),
        tracer=tracer,
    )
    tracer.finalize()
    return tracer


@pytest.fixture(scope="module")
def chaos_spans():
    return list(_chaos_trace().spans)


class TestChaosTraceShape:
    def test_trace_is_deep_and_faulty(self, chaos_spans):
        """Preconditions: the fixture really exercises the chaos paths."""
        assert len(chaos_spans) > 200
        kinds = {s.kind for s in chaos_spans}
        assert {"request", "invocation", "publish", "kv"} <= kinds
        statuses = {
            str(s.attrs.get("status"))
            for s in chaos_spans
            if s.kind == "request"
        }
        # Fault injection must actually bite: some requests die, some
        # survive — both shapes flow through the renderers below.
        assert "completed" in statuses
        assert "failed" in statuses

    def test_every_request_renders(self, chaos_spans):
        for rid in requests_in(chaos_spans):
            text = render_span_tree(chaos_spans, request_id=rid)
            assert text != "(no spans)"
            assert text.startswith("request:")


class TestDeterminism:
    def test_rerun_renders_identically(self, chaos_spans):
        """Same seed + same fault plan => byte-identical renderings."""
        again = list(_chaos_trace().spans)
        assert render_span_tree(again) == render_span_tree(chaos_spans)
        assert render_trace_summary(again) == render_trace_summary(
            chaos_spans
        )

    def test_jsonl_round_trip_renders_identically(self, chaos_spans):
        text = "\n".join(iter_lines(chaos_spans))
        reloaded = load_jsonl(io.StringIO(text))
        assert render_span_tree(reloaded) == render_span_tree(chaos_spans)
        assert render_trace_summary(reloaded) == render_trace_summary(
            chaos_spans
        )

    def test_render_does_not_mutate_input(self, chaos_spans):
        before = [(s.span_id, s.t0, s.t1, dict(s.attrs)) for s in chaos_spans]
        render_span_tree(chaos_spans)
        render_trace_summary(chaos_spans)
        after = [(s.span_id, s.t0, s.t1, dict(s.attrs)) for s in chaos_spans]
        assert before == after


class TestTruncation:
    @pytest.mark.parametrize("max_spans", [1, 2, 7, 50, 199])
    def test_truncation_is_safe_at_any_cut(self, chaos_spans, max_spans):
        text = render_span_tree(chaos_spans, max_spans=max_spans)
        lines = text.splitlines()
        assert lines[-1] == f"... truncated at {max_spans} spans"
        # Exactly max_spans rendered lines plus the truncation marker.
        assert len(lines) == max_spans + 1
        # No partial lines: every rendered span line carries a duration.
        for line in lines[:-1]:
            assert "s)" in line

    def test_truncated_output_is_prefix_of_full(self, chaos_spans):
        full = render_span_tree(chaos_spans, max_spans=10**9).splitlines()
        cut = render_span_tree(chaos_spans, max_spans=25).splitlines()
        assert cut[:-1] == full[:25]

    def test_no_marker_when_under_limit(self, chaos_spans):
        rid = requests_in(chaos_spans)[0]
        text = render_span_tree(chaos_spans, request_id=rid, max_spans=10**9)
        assert "truncated" not in text

    def test_failed_requests_survive_rendering(self, chaos_spans):
        text = render_span_tree(chaos_spans, max_spans=10**9)
        assert "[failed]" in text
        assert "[completed]" in text

    def test_group_by_request_covers_all_requests(self, chaos_spans):
        grouped = group_by_request(chaos_spans)
        assert set(grouped) == set(requests_in(chaos_spans))
        assert all(grouped.values())

    def test_zero_budget_renders_only_the_marker(self, chaos_spans):
        text = render_span_tree(chaos_spans, max_spans=0)
        assert text == "... truncated at 0 spans"

    def test_exact_span_count_needs_no_marker(self, chaos_spans):
        n = len(render_span_tree(chaos_spans, max_spans=10**9).splitlines())
        exact = render_span_tree(chaos_spans, max_spans=n)
        assert "truncated" not in exact
        assert len(exact.splitlines()) == n
        # One fewer flips truncation on: the boundary is exclusive of
        # nothing — max_spans is a hard line budget.
        cut = render_span_tree(chaos_spans, max_spans=n - 1)
        assert cut.splitlines()[-1] == f"... truncated at {n - 1} spans"

    def test_request_scoped_truncation(self, chaos_spans):
        rid = requests_in(chaos_spans)[0]
        cut = render_span_tree(chaos_spans, request_id=rid, max_spans=2)
        lines = cut.splitlines()
        assert lines[-1] == "... truncated at 2 spans"
        # The scoped cut is a prefix of the scoped full render.
        full = render_span_tree(chaos_spans, request_id=rid)
        assert lines[:-1] == full.splitlines()[:2]

    def test_truncation_never_splits_multibyte_output(self, chaos_spans):
        # Rendered lines survive an encode/decode round trip at every
        # small cut (guards against slicing inside composed glyphs).
        for max_spans in (1, 3, 11):
            text = render_span_tree(chaos_spans, max_spans=max_spans)
            assert text == text.encode("utf-8").decode("utf-8")
