"""Tests for open-loop arrival-trace generation and injection."""

import numpy as np
import pytest

from repro.common.rng import RngRegistry
from repro.data.workload import (
    PROFILES,
    ArrivalTrace,
    OpenLoopInjector,
    WorkloadSpec,
    generate_arrivals,
    generate_trace,
)


def _rng(seed: int) -> np.random.Generator:
    return RngRegistry(seed).get("workload")


class TestSpecValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="base_rate_per_s"):
            WorkloadSpec(base_rate_per_s=-1.0, duration_s=10.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            WorkloadSpec(base_rate_per_s=1.0, duration_s=0.0)

    def test_bad_bin_rejected(self):
        with pytest.raises(ValueError, match="bin_s"):
            WorkloadSpec(base_rate_per_s=1.0, duration_s=10.0, bin_s=0.0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            WorkloadSpec(base_rate_per_s=1.0, duration_s=10.0, profile="spiky")


class TestGeneration:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_deterministic_per_seed(self, profile):
        spec = WorkloadSpec(base_rate_per_s=5.0, duration_s=3600.0, profile=profile)
        a = generate_arrivals(spec, _rng(42))
        b = generate_arrivals(spec, _rng(42))
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_different_seeds_differ(self, profile):
        spec = WorkloadSpec(base_rate_per_s=5.0, duration_s=3600.0, profile=profile)
        a = generate_arrivals(spec, _rng(1))
        b = generate_arrivals(spec, _rng(2))
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_sorted_and_in_horizon(self, profile):
        spec = WorkloadSpec(
            base_rate_per_s=5.0, duration_s=1800.0, profile=profile, start_s=100.0
        )
        times = generate_arrivals(spec, _rng(7))
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= spec.start_s
        assert times[-1] < spec.start_s + spec.duration_s

    def test_mean_rate_close_to_base_for_steady(self):
        spec = WorkloadSpec(base_rate_per_s=10.0, duration_s=7200.0, profile="steady")
        trace = generate_trace(spec, _rng(3))
        assert trace.mean_rate_per_s == pytest.approx(10.0, rel=0.1)

    def test_zero_rate_yields_empty_trace(self):
        spec = WorkloadSpec(base_rate_per_s=0.0, duration_s=600.0, profile="steady")
        times = generate_arrivals(spec, _rng(0))
        assert len(times) == 0
        assert times.dtype == np.float64

    def test_flash_crowd_has_a_spike(self):
        spec = WorkloadSpec(
            base_rate_per_s=2.0, duration_s=7200.0, profile="flash_crowd"
        )
        times = generate_arrivals(spec, _rng(11))
        # Minute-bin counts: the flash peak must dwarf the baseline.
        counts, _ = np.histogram(times, bins=int(spec.duration_s / 60.0))
        assert counts.max() > 5 * max(np.median(counts), 1.0)

    def test_partial_last_bin_respected(self):
        # duration not a multiple of bin_s: arrivals must not spill past it.
        spec = WorkloadSpec(
            base_rate_per_s=50.0, duration_s=90.0, profile="steady", bin_s=60.0
        )
        times = generate_arrivals(spec, _rng(5))
        assert times[-1] < 90.0

    def test_shifted_trace_preserves_gaps(self):
        spec = WorkloadSpec(base_rate_per_s=5.0, duration_s=600.0, profile="steady")
        trace = generate_trace(spec, _rng(9))
        moved = trace.shifted(1000.0)
        assert isinstance(moved, ArrivalTrace)
        assert moved.spec.start_s == 1000.0
        assert np.allclose(np.diff(moved.times), np.diff(trace.times))
        assert moved.times[0] == pytest.approx(trace.times[0] + 1000.0)


class TestInjection:
    @pytest.fixture
    def deployment(self):
        from repro.apps import get_app
        from repro.cloud.provider import SimulatedCloud
        from repro.experiments.harness import deploy_benchmark

        cloud = SimulatedCloud(seed=23)
        app = get_app("text2speech_censoring")
        _deployed, executor, _ = deploy_benchmark(app, cloud)
        return cloud, executor

    def test_injects_every_arrival(self, deployment):
        cloud, executor = deployment
        spec = WorkloadSpec(base_rate_per_s=0.5, duration_s=120.0, profile="steady")
        trace = generate_trace(spec, _rng(23))
        injector = OpenLoopInjector(executor, trace)
        injector.start()
        cloud.env.run_until_idle()
        assert injector.injected == len(trace)
        assert injector.remaining == 0

    def test_one_pending_heap_slot(self, deployment):
        """The chain property: N arrivals never put N entries in the heap."""
        cloud, executor = deployment
        spec = WorkloadSpec(base_rate_per_s=5.0, duration_s=600.0, profile="steady")
        trace = generate_trace(spec, _rng(31))
        assert len(trace) > 100
        base = cloud.env.pending_events
        injector = OpenLoopInjector(executor, trace)
        injector.start()
        assert cloud.env.pending_events == base + 1

    def test_start_is_idempotent(self, deployment):
        cloud, executor = deployment
        spec = WorkloadSpec(base_rate_per_s=0.5, duration_s=60.0, profile="steady")
        trace = generate_trace(spec, _rng(5))
        injector = OpenLoopInjector(executor, trace)
        injector.start()
        injector.start()  # no double chain
        cloud.env.run_until_idle()
        assert injector.injected == len(trace)

    def test_past_arrivals_skipped_not_replayed(self, deployment):
        cloud, executor = deployment
        spec = WorkloadSpec(base_rate_per_s=1.0, duration_s=300.0, profile="steady")
        trace = generate_trace(spec, _rng(13))
        # Advance the clock into the middle of the trace before arming.
        cutoff = float(trace.times[len(trace) // 2])
        cloud.env.schedule(cutoff, lambda: None)
        cloud.env.run_until_idle()
        injector = OpenLoopInjector(executor, trace)
        injector.start()
        expected = int(np.sum(trace.times >= cutoff))
        assert injector.remaining == expected
        cloud.env.run_until_idle()
        assert injector.injected == expected

    def test_payload_factory_receives_indices(self, deployment):
        cloud, executor = deployment
        spec = WorkloadSpec(base_rate_per_s=0.5, duration_s=60.0, profile="steady")
        trace = generate_trace(spec, _rng(17))
        seen = []

        def factory(i):
            from repro.core.api import Payload

            seen.append(i)
            return Payload()

        injector = OpenLoopInjector(executor, trace, payload_factory=factory)
        injector.start()
        cloud.env.run_until_idle()
        assert seen == list(range(len(trace)))
