"""Tests for the cross-regional execution runtime (§6.2)."""

import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.core.api import Payload, Workflow
from repro.core.deployer import DeploymentUtility
from repro.core.executor import (
    annotation_class_edges,
    message_size,
    propagate_dead,
    sync_condition_met,
)
from repro.experiments.harness import deploy_benchmark
from repro.model.config import WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.model.plan import DeploymentPlan, HourlyPlanSet


@pytest.fixture
def t2s_deployment():
    cloud = SimulatedCloud(seed=11)
    app = get_app("text2speech_censoring")
    deployed, executor, utility = deploy_benchmark(app, cloud)
    return cloud, app, deployed, executor, utility


class TestInvocation:
    def test_all_nodes_execute_home(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        nodes = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert nodes == set(deployed.dag.node_names)

    def test_each_node_runs_exactly_once(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        execs = cloud.ledger.executions_for(deployed.name, rid)
        assert len(execs) == len(deployed.dag)

    def test_sync_node_runs_after_predecessors(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        execs = {e.node: e for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert execs["censoring"].start_s >= execs["conversion"].end_s
        assert execs["censoring"].start_s >= execs["profanity_detection"].end_s

    def test_conditional_false_still_fires_sync(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        from repro.apps.text2speech import make_input

        rid = executor.invoke(make_input("small", with_profanity=False),
                              force_home=True)
        cloud.run_until_idle()
        nodes = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert "censoring" in nodes  # Eq. 4.1: fires on the taken edge alone

    def test_plan_routing_across_regions(self, t2s_deployment):
        cloud, app, deployed, executor, utility = t2s_deployment
        # Deploy profanity detection to ca-central-1 and route it there.
        spec = deployed.workflow.function("profanity_detection")
        utility.deploy_function(deployed, executor, spec, "ca-central-1",
                                copy_image_from="us-east-1")
        assignments = {n: "us-east-1" for n in deployed.dag.node_names}
        assignments["profanity_detection"] = "ca-central-1"
        plan = DeploymentPlan(assignments)
        rid = executor.invoke(app.make_input("small"), plan=plan)
        cloud.run_until_idle()
        execs = {e.node: e.region
                 for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert execs["profanity_detection"] == "ca-central-1"
        assert execs["upload"] == "us-east-1"

    def test_missing_deployment_falls_back_home(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        # Plan routes to a region with no deployment/topic (§6.1 fallback).
        assignments = {n: "us-east-1" for n in deployed.dag.node_names}
        assignments["conversion"] = "us-west-2"
        rid = executor.invoke(app.make_input("small"),
                              plan=DeploymentPlan(assignments))
        cloud.run_until_idle()
        execs = {e.node: e.region
                 for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert execs["conversion"] == "us-east-1"

    def test_benchmarking_fraction_routes_home(self):
        cloud = SimulatedCloud(seed=5)
        app = get_app("dna_visualization")
        deployed, executor, utility = deploy_benchmark(
            app, cloud, benchmarking_fraction=1.0
        )
        # Even with a staged remote plan, every invocation goes home.
        spec = deployed.workflow.function("visualize")
        utility.deploy_function(deployed, executor, spec, "ca-central-1",
                                copy_image_from="us-east-1")
        executor.stage_plan_set(HourlyPlanSet.daily(
            DeploymentPlan.single_region(deployed.dag, "ca-central-1")
        ))
        rid = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        execs = cloud.ledger.executions_for(deployed.name, rid)
        assert all(e.region == "us-east-1" for e in execs)

    def test_expired_plan_falls_back_home(self):
        cloud = SimulatedCloud(seed=6)
        app = get_app("dna_visualization")
        deployed, executor, utility = deploy_benchmark(app, cloud)
        spec = deployed.workflow.function("visualize")
        utility.deploy_function(deployed, executor, spec, "ca-central-1",
                                copy_image_from="us-east-1")
        executor.stage_plan_set(HourlyPlanSet.daily(
            DeploymentPlan.single_region(deployed.dag, "ca-central-1"),
            expires_at_s=100.0,
        ))
        cloud.env.clock.advance(200.0)
        plan = executor.fetch_active_plan()
        assert plan.regions_used == ("us-east-1",)

    def test_service_time_positive_and_ordered(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        assert cloud.ledger.service_time(deployed.name, rid) > 0

    def test_edge_transfers_labelled_for_learning(self, t2s_deployment):
        cloud, app, deployed, executor, _ = t2s_deployment
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        edges = {r.edge for r in cloud.ledger.transmissions_for(deployed.name, rid)}
        assert "upload->text2speech" in edges
        assert "text2speech->conversion" in edges
        # Sync edges are labelled too (the src->kv hop).
        assert "conversion->censoring" in edges


class TestFanOut:
    def test_image_processing_all_transforms_run(self):
        cloud = SimulatedCloud(seed=8)
        app = get_app("image_processing")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        nodes = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert {f"transform:{i}" for i in range(5)} <= nodes
        assert "collect" in nodes

    def test_collect_receives_all_payloads(self):
        cloud = SimulatedCloud(seed=8)
        app = get_app("image_processing")
        deployed, executor, _ = deploy_benchmark(app, cloud)
        rid = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        # The sync store held 5 intermediate payloads for collect.
        stored, _ = deployed.kv().get(deployed.data_table, f"{rid}:collect")
        assert len(stored) == 5

    def test_partial_fanout_still_joins(self):
        # A fan-out smaller than max_instances leaves unreached stages;
        # implicit skips must still release the sync node.
        workflow = Workflow("partial")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            for i in range(int(event["n"])):
                workflow.invoke_serverless_function(Payload(content=i), w)

        @workflow.serverless_function(name="w", max_instances=4)
        def w(event):
            workflow.invoke_serverless_function(Payload(content=event), j)

        @workflow.serverless_function(name="j")
        def j(event):
            workflow.get_predecessor_data()

        cloud = SimulatedCloud(seed=9)
        utility = DeploymentUtility(cloud)
        deployed, executor = utility.deploy(
            workflow, WorkflowConfig(home_region="us-east-1",
                                     benchmarking_fraction=0.0)
        )
        rid = executor.invoke(Payload(content={"n": 2}), force_home=True)
        cloud.run_until_idle()
        execs = {e.node for e in cloud.ledger.executions_for("partial", rid)}
        assert execs == {"a", "w:0", "w:1", "j"}
        assert not cloud.pubsub.dead_letters

    def test_overflow_fanout_raises(self):
        workflow = Workflow("overflow")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            for i in range(5):
                workflow.invoke_serverless_function(Payload(content=i), w)

        @workflow.serverless_function(name="w", max_instances=2)
        def w(event):
            pass

        cloud = SimulatedCloud(seed=9)
        utility = DeploymentUtility(cloud)
        deployed, executor = utility.deploy(
            workflow, WorkflowConfig(home_region="us-east-1",
                                     benchmarking_fraction=0.0)
        )
        executor.invoke(Payload(content=None), force_home=True)
        cloud.run_until_idle()
        # The wrapper raised inside delivery -> message dead-lettered.
        assert cloud.pubsub.dead_letters


class TestSkipPropagationHelpers:
    def build_deep_dag(self):
        # a -> b(cond) -> c -> s ; a -> d -> s  (s = sync)
        dag = WorkflowDAG("deep")
        for n in ("a", "b", "c", "d", "s"):
            dag.add_node(Node(n, n))
        dag.add_edge(Edge("a", "b", conditional=True))
        dag.add_edge(Edge("b", "c"))
        dag.add_edge(Edge("c", "s"))
        dag.add_edge(Edge("a", "d"))
        dag.add_edge(Edge("d", "s"))
        dag.validate()
        return dag

    def test_annotation_class_covers_upstream_of_sync(self):
        dag = self.build_deep_dag()
        edges = annotation_class_edges(dag)
        assert ("a", "b") in edges  # b leads to sync s
        assert ("c", "s") in edges
        assert ("d", "s") in edges

    def test_transitive_dead_propagation(self):
        dag = self.build_deep_dag()
        edges = annotation_class_edges(dag)
        ann = {"a->b": 0}  # conditional edge not taken
        propagate_dead(dag, edges, ann, dag.topological_order())
        # b dead -> c dead -> edge c->s annotated 0.
        assert ann["b->c"] == 0
        assert ann["c->s"] == 0

    def test_condition_requires_all_resolved(self):
        dag = self.build_deep_dag()
        assert not sync_condition_met(dag, {"d->s": 1}, "s")
        assert sync_condition_met(dag, {"d->s": 1, "c->s": 0}, "s")
        assert not sync_condition_met(dag, {"d->s": 0, "c->s": 0}, "s")

    def test_deep_skip_end_to_end(self):
        """A conditional skip two hops above a sync node releases it."""
        workflow = Workflow("deepskip")

        @workflow.serverless_function(name="a", entry_point=True)
        def a(event):
            workflow.invoke_serverless_function(Payload(content=1), b, False)
            workflow.invoke_serverless_function(Payload(content=2), d)

        @workflow.serverless_function(name="b")
        def b(event):
            workflow.invoke_serverless_function(Payload(content=3), c)

        @workflow.serverless_function(name="c")
        def c(event):
            workflow.invoke_serverless_function(Payload(content=4), s)

        @workflow.serverless_function(name="d")
        def d(event):
            workflow.invoke_serverless_function(Payload(content=5), s)

        @workflow.serverless_function(name="s")
        def s(event):
            workflow.get_predecessor_data()

        cloud = SimulatedCloud(seed=10)
        utility = DeploymentUtility(cloud)
        deployed, executor = utility.deploy(
            workflow, WorkflowConfig(home_region="us-east-1",
                                     benchmarking_fraction=0.0)
        )
        rid = executor.invoke(Payload(content=None), force_home=True)
        cloud.run_until_idle()
        execs = {e.node for e in cloud.ledger.executions_for("deepskip", rid)}
        assert execs == {"a", "d", "s"}  # b and c skipped, s still fired
        assert not cloud.pubsub.dead_letters


class TestMessageSize:
    def test_grows_with_plan_entries(self):
        assert message_size(1000, 10) > message_size(1000, 2)
        assert message_size(0, 1) > 0


class TestRequestLifecycle:
    def test_completed_request_tracked(self, t2s_deployment):
        cloud, app, _, executor, _ = t2s_deployment
        rid = executor.invoke(app.make_input("small"), force_home=True)
        assert executor.request_status(rid) == "pending"
        assert rid in executor.pending_requests()
        cloud.run_until_idle()
        assert executor.request_status(rid) == "completed"
        assert executor.pending_requests() == ()
        stats = executor.reliability()
        assert stats.completed_requests == 1
        assert stats.failed_requests == 0
        assert stats.timed_out_requests == 0
        assert stats.tracked_requests == 1

    def test_unknown_request_has_no_status(self, t2s_deployment):
        _, _, _, executor, _ = t2s_deployment
        assert executor.request_status("no-such-request") is None

    def test_every_invocation_reaches_a_terminal_state(self, t2s_deployment):
        cloud, app, _, executor, _ = t2s_deployment
        rids = [executor.invoke(app.make_input("small")) for _ in range(5)]
        cloud.run_until_idle()
        assert executor.pending_requests() == ()
        for rid in rids:
            assert executor.request_status(rid) == "completed"

    def test_invoke_direct_tracked_too(self, t2s_deployment):
        cloud, app, _, executor, _ = t2s_deployment
        rid = executor.invoke_direct(app.make_input("small"))
        cloud.run_until_idle()
        assert executor.request_status(rid) == "completed"

    def test_no_watchdog_when_timeout_disabled(self):
        cloud = SimulatedCloud(seed=11)
        app = get_app("text2speech_censoring")
        config = WorkflowConfig(
            home_region="us-east-1",
            benchmarking_fraction=0.0,
            request_timeout_s=None,
        )
        deployed, executor, _ = deploy_benchmark(app, cloud, config=config)
        rid = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        assert executor.request_status(rid) == "completed"
        assert executor.reliability().timed_out_requests == 0

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(Exception, match="request_timeout_s"):
            WorkflowConfig(home_region="us-east-1", request_timeout_s=0.0)
