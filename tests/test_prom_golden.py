"""Golden Prometheus-exposition test (mirror of ``test_report_golden.py``).

The quickstart run's full Prometheus text exposition — every counter,
gauge, and histogram the simulation reports, with cumulative buckets —
must reproduce byte for byte from a fixed seed.  This pins the metric
*names and label sets* (the dashboards' contract) as much as the
values; any new or renamed instrument shows up as a reviewable diff.
Regenerate with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_prom_golden.py
"""

import os
import pathlib

from repro.apps import get_app
from repro.experiments.harness import run_caribou
from repro.obs.timeseries import TelemetryConfig

GOLDEN = pathlib.Path(__file__).parent / "golden" / "quickstart_prom.txt"
SEED = 1234
REGIONS = ("us-east-1", "ca-central-1")


def quickstart_prom() -> str:
    outcome = run_caribou(
        get_app("text2speech_censoring"),
        "small",
        REGIONS,
        seed=SEED,
        n_invocations=2,
        telemetry=TelemetryConfig(),
    )
    return outcome.prom


class TestGoldenPrometheus:
    def test_exposition_matches_snapshot(self):
        produced = quickstart_prom()
        if os.environ.get("UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(produced, encoding="utf-8")
        assert GOLDEN.exists(), (
            "golden exposition missing; regenerate with UPDATE_GOLDEN=1"
        )
        expected = GOLDEN.read_text(encoding="utf-8")
        assert produced == expected, (
            "Prometheus exposition drifted from the golden snapshot; if "
            "intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
        )

    def test_snapshot_is_well_formed(self):
        text = GOLDEN.read_text(encoding="utf-8")
        lines = text.splitlines()
        assert lines, "empty exposition"
        families = set()
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, ftype = line.split(" ")
                assert ftype in ("counter", "gauge", "histogram")
                families.add(name)
            else:
                sample_name = line.split("{")[0].split(" ")[0]
                base = sample_name
                for suffix in ("_bucket", "_sum", "_count"):
                    if base.endswith(suffix) and base[: -len(suffix)] in families:
                        base = base[: -len(suffix)]
                        break
                assert base in families, f"sample without TYPE: {line}"
                assert sample_name.startswith("caribou_")

    def test_snapshot_covers_core_instruments(self):
        text = GOLDEN.read_text(encoding="utf-8")
        for family in (
            "caribou_executor_requests",
            "caribou_executor_request_latency_s",
            "caribou_faas_invocations",
        ):
            assert family in text

    def test_histograms_have_inf_bucket_equal_to_count(self):
        text = GOLDEN.read_text(encoding="utf-8")
        inf_lines = [
            ln for ln in text.splitlines() if 'le="+Inf"' in ln
        ]
        assert inf_lines
        for line in inf_lines:
            name_labels, value = line.rsplit(" ", 1)
            family = name_labels.split("{")[0][: -len("_bucket")]
            labels = name_labels.split("{", 1)[1].rsplit(",", 1)[0]
            count_line = next(
                ln for ln in text.splitlines()
                if ln.startswith(f"{family}_count")
                and (labels in ln or "{" not in ln)
            )
            assert count_line.rsplit(" ", 1)[1] == value
