"""Property-based tests for the token bucket (§5.2 invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trigger import TokenBucket, TriggerSettings

positive = st.floats(min_value=0.01, max_value=1e4)


class TestBucketInvariants:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=3600.0),
        st.floats(min_value=128.0, max_value=10240.0),
        positive,
        positive,
    )
    @settings(max_examples=60, deadline=None)
    def test_tokens_never_negative_never_exceed_capacity(
        self, invocations, runtime, memory, home_i, best_i
    ):
        bucket = TokenBucket(n_nodes=5, n_regions=4)
        bucket.earn(
            invocations=invocations, avg_runtime_s=runtime,
            avg_memory_mb=memory, home_intensity=home_i,
            best_intensity=best_i, period_s=3600.0,
        )
        assert 0.0 <= bucket.tokens_g <= bucket.capacity_g + 1e-12

    @given(positive)
    @settings(max_examples=40, deadline=None)
    def test_consume_conserves_tokens(self, intensity):
        bucket = TokenBucket(n_nodes=5, n_regions=4)
        # Fund exactly what this intensity's solve needs plus margin
        # (the capacity is pegged to a nominal 400 g/kWh grid, so a very
        # dirty framework region can cost more than "capacity").
        bucket.tokens_g = bucket.solve_cost_g(intensity, 24) * 1.5
        before = bucket.tokens_g
        spent = bucket.consume(intensity, 24)
        assert bucket.tokens_g == pytest.approx(before - spent)
        assert spent == pytest.approx(bucket.solve_cost_g(intensity, 24))

    @given(positive, st.integers(min_value=1, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_solve_cost_monotone_in_granularity(self, intensity, hours):
        bucket = TokenBucket(n_nodes=3, n_regions=4)
        assert bucket.solve_cost_g(intensity, hours) <= bucket.solve_cost_g(
            intensity, 24
        ) + 1e-12

    @given(positive)
    @settings(max_examples=40, deadline=None)
    def test_check_delay_always_within_bounds(self, intensity):
        settings_ = TriggerSettings()
        bucket = TokenBucket(n_nodes=5, n_regions=4, settings=settings_)
        for fill in (0.0, 0.5, 1.0):
            bucket.tokens_g = fill * bucket.capacity_g
            delay = bucket.next_check_delay_s(intensity)
            assert settings_.min_check_period_s <= delay <= settings_.max_check_period_s

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=10**4), positive),
            min_size=1, max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_affordable_granularity_consistent_with_costs(self, history):
        bucket = TokenBucket(n_nodes=4, n_regions=4)
        for invocations, home_i in history:
            bucket.earn(
                invocations=invocations, avg_runtime_s=2.0,
                avg_memory_mb=1769.0, home_intensity=home_i,
                best_intensity=home_i * 0.1, period_s=3600.0,
            )
        granularity = bucket.affordable_granularity(400.0)
        if granularity == 24:
            assert bucket.tokens_g >= bucket.solve_cost_g(400.0, 24)
        elif granularity == 1:
            assert bucket.tokens_g >= bucket.solve_cost_g(400.0, 1)
            assert bucket.tokens_g < bucket.solve_cost_g(400.0, 24)
        else:
            assert bucket.tokens_g < bucket.solve_cost_g(400.0, 1)
