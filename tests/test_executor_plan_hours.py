"""Tests for hourly plan selection and routing edge cases."""

import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_HOUR
from repro.experiments.harness import deploy_benchmark
from repro.model.plan import DeploymentPlan, HourlyPlanSet


@pytest.fixture
def hourly_setup():
    cloud = SimulatedCloud(seed=70)
    app = get_app("dna_visualization")
    deployed, executor, utility = deploy_benchmark(app, cloud)
    spec = deployed.workflow.function("visualize")
    utility.deploy_function(deployed, executor, spec, "ca-central-1",
                            copy_image_from="us-east-1")
    utility.deploy_function(deployed, executor, spec, "us-west-2",
                            copy_image_from="us-east-1")
    return cloud, app, deployed, executor


class TestHourlyRouting:
    def stage(self, deployed, executor, mapping):
        plans = {
            hour: DeploymentPlan.single_region(deployed.dag, region)
            for hour, region in mapping.items()
        }
        executor.stage_plan_set(HourlyPlanSet(plans))

    def test_hour_of_day_selects_plan(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor,
                   {0: "us-east-1", 8: "ca-central-1", 16: "us-west-2"})

        def run_at(hour):
            cloud.env.clock.advance_to(
                max(cloud.now(), hour * SECONDS_PER_HOUR + 1.0)
            )
            rid = executor.invoke(app.make_input("small"))
            cloud.run_until_idle()
            return cloud.ledger.executions_for(deployed.name, rid)[0].region

        assert run_at(1) == "us-east-1"
        assert run_at(9) == "ca-central-1"
        assert run_at(17) == "us-west-2"
        # Next day wraps back onto the hourly schedule.
        assert run_at(24 + 2) == "us-east-1"

    def test_sparse_hours_inherit(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor, {6: "ca-central-1"})
        cloud.env.clock.advance_to(23 * SECONDS_PER_HOUR)
        rid = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        region = cloud.ledger.executions_for(deployed.name, rid)[0].region
        assert region == "ca-central-1"

    def test_fetch_active_plan_respects_hour(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor, {0: "us-east-1", 12: "us-west-2"})
        cloud.env.clock.advance_to(13 * SECONDS_PER_HOUR)
        plan = executor.fetch_active_plan()
        assert plan.regions_used == ("us-west-2",)

    def test_stale_plan_overwritten_by_new_stage(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor, {0: "ca-central-1"})
        self.stage(deployed, executor, {0: "us-west-2"})  # supersedes
        assert executor.fetch_active_plan().regions_used == ("us-west-2",)

    def test_clear_plan_falls_back_home(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor, {0: "ca-central-1"})
        executor.clear_plan()
        assert executor.fetch_active_plan().regions_used == ("us-east-1",)


class TestDirectInvocation:
    """§6.2's direct-to-home entry path with automatic re-routing."""

    def test_direct_executes_at_home_without_plan(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        executor.clear_plan()
        rid = executor.invoke_direct(app.make_input("small"))
        cloud.run_until_idle()
        execs = cloud.ledger.executions_for(deployed.name, rid)
        assert [e.region for e in execs] == ["us-east-1"]

    def test_direct_rerouted_to_planned_region(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor, {0: "ca-central-1"})
        rid = executor.invoke_direct(app.make_input("small"))
        cloud.run_until_idle()
        execs = cloud.ledger.executions_for(deployed.name, rid)
        assert [e.region for e in execs] == ["ca-central-1"]
        # The re-route hop is visible in the ledger.
        edges = {r.edge for r in cloud.ledger.transmissions_for(deployed.name, rid)}
        assert any(e.startswith("$reroute->") for e in edges)

    def test_direct_slower_than_proxy_when_offloaded(self, hourly_setup):
        cloud, app, deployed, executor = hourly_setup
        self.stage(deployed, executor, {0: "ca-central-1"})
        # Warm the container so the comparison isolates routing.
        warm = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        submit = cloud.now()
        rid_direct = executor.invoke_direct(app.make_input("small"))
        cloud.run_until_idle()
        direct_start = min(
            e.start_s for e in cloud.ledger.executions_for(deployed.name, rid_direct)
        ) - submit
        submit = cloud.now()
        rid_proxy = executor.invoke(app.make_input("small"))
        cloud.run_until_idle()
        proxy_start = min(
            e.start_s for e in cloud.ledger.executions_for(deployed.name, rid_proxy)
        ) - submit
        # Direct pays the extra home hop before the cross-region forward.
        assert direct_start > proxy_start

    def stage(self, deployed, executor, mapping):
        from repro.model.plan import DeploymentPlan, HourlyPlanSet

        plans = {
            hour: DeploymentPlan.single_region(deployed.dag, region)
            for hour, region in mapping.items()
        }
        executor.stage_plan_set(HourlyPlanSet(plans))
