"""Tests for the orchestration baselines (§9.6, Fig. 12)."""

import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.core.baselines import SnsOrchestrator, StepFunctionsOrchestrator
from repro.experiments.harness import deploy_benchmark


@pytest.fixture(params=["text2speech_censoring", "image_processing",
                        "video_analytics"])
def app_deployment(request):
    cloud = SimulatedCloud(seed=21)
    app = get_app(request.param)
    deployed, executor, utility = deploy_benchmark(app, cloud)
    return cloud, app, deployed, executor


class TestSnsOrchestrator:
    def test_runs_complete_workflow(self, app_deployment):
        cloud, app, deployed, _ = app_deployment
        sns = SnsOrchestrator(deployed)
        sns.setup()
        rid = sns.invoke(app.make_input("small"))
        cloud.run_until_idle()
        nodes = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert set(deployed.dag.node_names) == nodes
        assert not cloud.pubsub.dead_letters

    def test_stays_in_home_region(self, app_deployment):
        cloud, app, deployed, _ = app_deployment
        sns = SnsOrchestrator(deployed)
        sns.setup()
        rid = sns.invoke(app.make_input("small"))
        cloud.run_until_idle()
        regions = {e.region for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert regions == {"us-east-1"}

    def test_coexists_with_caribou_topics(self, app_deployment):
        cloud, app, deployed, executor = app_deployment
        sns = SnsOrchestrator(deployed)
        sns.setup()
        rid_sns = sns.invoke(app.make_input("small"))
        rid_caribou = executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()
        assert cloud.ledger.service_time(deployed.name, rid_sns) > 0
        assert cloud.ledger.service_time(deployed.name, rid_caribou) > 0


class TestStepFunctionsOrchestrator:
    def test_runs_complete_workflow(self, app_deployment):
        cloud, app, deployed, _ = app_deployment
        sf = StepFunctionsOrchestrator(deployed)
        rid = sf.invoke(app.make_input("small"))
        cloud.run_until_idle()
        nodes = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert set(deployed.dag.node_names) == nodes

    def test_transitions_counted(self, app_deployment):
        cloud, app, deployed, _ = app_deployment
        sf = StepFunctionsOrchestrator(deployed)
        sf.invoke(app.make_input("small"))
        cloud.run_until_idle()
        assert cloud.stepfunctions("us-east-1").transitions >= len(
            deployed.dag.edges
        )

    def test_conditional_skip_handled_centrally(self):
        cloud = SimulatedCloud(seed=22)
        app = get_app("text2speech_censoring")
        deployed, _, _ = deploy_benchmark(app, cloud)
        sf = StepFunctionsOrchestrator(deployed)
        from repro.apps.text2speech import make_input

        rid = sf.invoke(make_input("small", with_profanity=False))
        cloud.run_until_idle()
        nodes = {e.node for e in cloud.ledger.executions_for(deployed.name, rid)}
        assert "censoring" in nodes  # sync fired on the audio path alone

    def test_duplicate_execution_id_rejected(self, app_deployment):
        cloud, app, deployed, _ = app_deployment
        sf = StepFunctionsOrchestrator(deployed)
        sf.invoke(app.make_input("small"), request_id="dup")
        with pytest.raises(ValueError):
            sf.invoke(app.make_input("small"), request_id="dup")


class TestOverheadOrdering:
    """The Fig. 12 shape: Step Functions < SNS <= Caribou."""

    def run_all(self, app_name, size, n=10):
        cloud = SimulatedCloud(seed=23)
        app = get_app(app_name)
        deployed, executor, _ = deploy_benchmark(app, cloud)
        sns = SnsOrchestrator(deployed)
        sns.setup()
        sf = StepFunctionsOrchestrator(deployed)

        def mean_time(invoke):
            # Keep containers warm between invocations (interval below
            # the keep-alive) and drop the cold-start-dominated first
            # two samples so the comparison isolates orchestration.
            rids = []
            for i in range(n):
                cloud.env.schedule(
                    i * 300.0, lambda: rids.append(invoke(app.make_input(size)))
                )
            cloud.run_until_idle()
            times = [cloud.ledger.service_time(deployed.name, r)
                     for r in rids[2:]]
            return sum(times) / len(times)

        t_sf = mean_time(sf.invoke)
        t_sns = mean_time(sns.invoke)
        t_caribou = mean_time(
            lambda p: executor.invoke(p, force_home=True)
        )
        return t_sf, t_sns, t_caribou

    def test_step_functions_fastest(self):
        t_sf, t_sns, t_caribou = self.run_all("image_processing", "small")
        assert t_sf < t_sns
        assert t_sf < t_caribou

    def test_caribou_close_to_sns(self):
        # §9.6: Caribou adds <1 % (geometric mean) over SNS.  Allow some
        # slack for the small sample size here.
        t_sf, t_sns, t_caribou = self.run_all("video_analytics", "small")
        assert t_caribou < t_sns * 1.10
