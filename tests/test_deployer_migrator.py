"""Tests for the Deployment Utility and Migrator (§6.1)."""

import pytest

from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.errors import ConfigurationError, DeploymentError
from repro.core.deployer import DeploymentUtility
from repro.core.executor import topic_name
from repro.core.migrator import DeploymentMigrator
from repro.experiments.harness import deploy_benchmark
from repro.model.config import WorkflowConfig
from repro.model.plan import DeploymentPlan, HourlyPlanSet


@pytest.fixture
def deployment():
    cloud = SimulatedCloud(seed=1)
    app = get_app("rag_ingestion")
    deployed, executor, utility = deploy_benchmark(app, cloud)
    return cloud, app, deployed, executor, utility


class TestInitialDeployment:
    def test_functions_deployed_home(self, deployment):
        cloud, app, deployed, _, _ = deployment
        for spec in deployed.workflow.functions:
            assert cloud.functions.is_deployed(
                deployed.name, spec.name, "us-east-1"
            )

    def test_topics_created_and_subscribed(self, deployment):
        cloud, _, deployed, _, _ = deployment
        for spec in deployed.workflow.functions:
            topic = topic_name(deployed.name, spec.name)
            assert cloud.pubsub.topic_exists(topic, "us-east-1")

    def test_iam_roles_created(self, deployment):
        cloud, _, deployed, _, _ = deployment
        for spec in deployed.workflow.functions:
            assert cloud.iam.role_exists(
                f"{deployed.name}-{spec.name}-us-east-1"
            )

    def test_images_pushed_home(self, deployment):
        cloud, _, deployed, _, _ = deployment
        for spec in deployed.workflow.functions:
            assert cloud.registry.exists(
                "us-east-1", f"{deployed.name}/{spec.name}",
                deployed.workflow.version,
            )

    def test_metadata_uploaded(self, deployment):
        _, _, deployed, _, _ = deployment
        meta, _ = deployed.kv().get(deployed.meta_table, "workflow")
        assert meta["name"] == deployed.name
        assert meta["home_region"] == "us-east-1"

    def test_initial_plan_is_home(self, deployment):
        _, _, deployed, executor, _ = deployment
        plan = executor.fetch_active_plan()
        assert plan.regions_used == ("us-east-1",)

    def test_invalid_home_region_rejected(self):
        cloud = SimulatedCloud(seed=1, regions=("us-east-1", "us-west-2"))
        app = get_app("dna_visualization")
        with pytest.raises(ConfigurationError, match="not offered"):
            DeploymentUtility(cloud).deploy(
                app.build_workflow(),
                WorkflowConfig(home_region="ca-central-1"),
            )

    def test_code_constraints_merged_into_config(self):
        cloud = SimulatedCloud(seed=1)
        app = get_app("text2speech_censoring")
        deployed, _, _ = deploy_benchmark(app, cloud)
        # The upload function's decorator allow-list became config.
        assert not deployed.config.permits("upload", "ca-central-1")
        assert deployed.config.permits("text2speech", "ca-central-1")


class TestDeployFunction:
    def test_copy_deploys_new_region(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        spec = deployed.workflow.function("extract_metadata")
        utility.deploy_function(deployed, executor, spec, "us-west-2",
                                copy_image_from="us-east-1")
        assert cloud.functions.is_deployed(deployed.name, spec.name, "us-west-2")
        assert cloud.registry.exists("us-west-2",
                                     f"{deployed.name}/{spec.name}", "1.0")

    def test_deploy_without_image_source_fails(self, deployment):
        _, _, deployed, executor, utility = deployment
        spec = deployed.workflow.function("extract_metadata")
        with pytest.raises(DeploymentError, match="absent"):
            utility.deploy_function(deployed, executor, spec, "us-west-2")

    def test_unknown_region_fails(self, deployment):
        _, _, deployed, executor, utility = deployment
        spec = deployed.workflow.function("extract_metadata")
        with pytest.raises(DeploymentError, match="not offered"):
            utility.deploy_function(deployed, executor, spec, "eu-x-1",
                                    copy_image_from="us-east-1")

    def test_remove_function(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        spec = deployed.workflow.function("extract_metadata")
        utility.deploy_function(deployed, executor, spec, "us-west-2",
                                copy_image_from="us-east-1")
        utility.remove_function(deployed, spec, "us-west-2")
        assert not cloud.functions.is_deployed(deployed.name, spec.name,
                                               "us-west-2")

    def test_home_region_removal_refused(self, deployment):
        _, _, deployed, _, utility = deployment
        spec = deployed.workflow.function("extract_metadata")
        with pytest.raises(DeploymentError, match="fallback"):
            utility.remove_function(deployed, spec, "us-east-1")


class TestMigrator:
    def make_plan_set(self, deployed, region):
        return HourlyPlanSet.daily(
            DeploymentPlan.single_region(deployed.dag, region)
        )

    def test_successful_migration_activates(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        plan_set = self.make_plan_set(deployed, "ca-central-1")
        report = migrator.migrate(plan_set)
        assert report.activated
        assert len(report.deployed) == 2  # both functions created
        assert executor.fetch_active_plan().regions_used == ("ca-central-1",)
        assert migrator.pending is None

    def test_migration_idempotent(self, deployment):
        _, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        plan_set = self.make_plan_set(deployed, "ca-central-1")
        migrator.migrate(plan_set)
        report = migrator.migrate(plan_set)
        assert report.activated
        assert report.deployed == ()  # nothing new to create

    def test_failed_migration_falls_back_home(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        cloud.functions.set_region_available("ca-central-1", False)
        migrator = DeploymentMigrator(utility, deployed, executor)
        report = migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        assert not report.activated
        assert report.failed is not None
        # §6.1: traffic defaults back to the home region.
        assert executor.fetch_active_plan().regions_used == ("us-east-1",)
        assert migrator.pending is not None

    def test_retry_pending_succeeds_after_recovery(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        cloud.functions.set_region_available("ca-central-1", False)
        migrator = DeploymentMigrator(utility, deployed, executor)
        migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        cloud.functions.set_region_available("ca-central-1", True)
        report = migrator.retry_pending()
        assert report is not None and report.activated
        assert migrator.pending is None

    def test_retry_without_pending_is_noop(self, deployment):
        _, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        assert migrator.retry_pending() is None

    def test_pending_replaced_by_new_plan(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        cloud.functions.set_region_available("ca-central-1", False)
        migrator = DeploymentMigrator(utility, deployed, executor)
        migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        newer = self.make_plan_set(deployed, "us-west-2")
        migrator.replace_pending(newer)
        report = migrator.retry_pending()
        assert report.activated
        assert executor.fetch_active_plan().regions_used == ("us-west-2",)

    def test_required_deployments_across_hours(self, deployment):
        _, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        plan_set = HourlyPlanSet({
            0: DeploymentPlan.single_region(deployed.dag, "us-east-1"),
            12: DeploymentPlan.single_region(deployed.dag, "us-west-2"),
        })
        needed = migrator.required_deployments(plan_set)
        regions = {r for _f, r in needed}
        assert regions == {"us-east-1", "us-west-2"}

    def test_partial_failure_rolls_back_created_deployments(self, deployment):
        """Regression: a failure on the Nth function used to leak the
        N-1 deployments already created in the target region."""
        cloud, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        calls = []
        original = utility.deploy_function

        def flaky(d, ex, spec, region, **kwargs):
            calls.append((spec.name, region))
            if len(calls) == 2:
                raise DeploymentError("region ran out of capacity")
            return original(d, ex, spec, region, **kwargs)

        utility.deploy_function = flaky
        report = migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        assert not report.activated
        assert len(report.deployed) == 1
        assert report.rolled_back == report.deployed[::-1]
        # Nothing is left behind in the region the plan never activated in.
        for spec in deployed.workflow.functions:
            assert not cloud.functions.is_deployed(
                deployed.name, spec.name, "ca-central-1"
            )
        assert migrator.pending is not None

    def test_failure_preserves_unrelated_active_plan(self, deployment):
        """Regression: a failed migration used to clear the active plan
        unconditionally, discarding a still-valid, fully materialised
        plan set that had nothing to do with the failure."""
        cloud, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        good = self.make_plan_set(deployed, "us-west-2")
        assert migrator.migrate(good).activated
        cloud.functions.set_region_available("ca-central-1", False)
        report = migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        assert not report.activated
        # The us-west-2 plan is untouched: it was not the failing one.
        assert executor.fetch_active_plan().regions_used == ("us-west-2",)

    def test_failure_of_active_plan_defaults_home(self, deployment):
        """When the *failing* plan set is the active one (a retry of a
        rollout whose region died mid-flight), §6.1 applies: default
        back to the home region."""
        cloud, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        plan_set = self.make_plan_set(deployed, "ca-central-1")
        assert migrator.migrate(plan_set).activated
        # The region dies and loses its deployments; re-migrating the
        # same (now active) plan set fails.
        cloud.functions.set_region_available("ca-central-1", False)
        for spec in deployed.workflow.functions:
            cloud.functions.remove(deployed.name, spec.name, "ca-central-1")
        report = migrator.migrate(plan_set)
        assert not report.activated
        assert executor.fetch_active_plan().regions_used == ("us-east-1",)

    def test_activation_failure_keeps_deployments_and_parks_plan(
        self, deployment, monkeypatch
    ):
        """KV store dies between deployment and activation: the created
        functions are what the parked plan needs, so they survive."""
        cloud, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)

        def unreachable(plan_set):
            raise DeploymentError("metadata store unreachable")

        monkeypatch.setattr(executor, "stage_plan_set", unreachable)
        report = migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        assert not report.activated
        assert report.failed is None
        assert len(report.deployed) == 2
        for spec in deployed.workflow.functions:
            assert cloud.functions.is_deployed(
                deployed.name, spec.name, "ca-central-1"
            )
        assert migrator.pending is not None
        monkeypatch.undo()
        retry = migrator.retry_pending()
        assert retry is not None and retry.activated
        assert retry.deployed == ()  # everything was already in place

    def test_decommission_keeps_home_and_needed(self, deployment):
        cloud, _, deployed, executor, utility = deployment
        migrator = DeploymentMigrator(utility, deployed, executor)
        migrator.migrate(self.make_plan_set(deployed, "ca-central-1"))
        migrator.migrate(self.make_plan_set(deployed, "us-west-2"))
        removed = migrator.decommission_unused(
            self.make_plan_set(deployed, "us-west-2")
        )
        assert all(region == "ca-central-1" for _f, region in removed)
        for spec in deployed.workflow.functions:
            assert cloud.functions.is_deployed(deployed.name, spec.name,
                                               "us-east-1")
            assert cloud.functions.is_deployed(deployed.name, spec.name,
                                               "us-west-2")
