"""Differential tests: ExactSolver vs ExhaustiveSolver.

The branch-and-bound solver claims the same optimum as full enumeration
at a fraction of the Monte-Carlo work.  These tests hold it to that
claim everywhere both solvers can run — fixture DAGs and every example
application, with and without tolerance enforcement, across all three
``solve_day`` execution backends — and then prove the part enumeration
cannot check: a certified optimum on a search space beyond the
exhaustive limit.
"""

import math

import pytest

from repro.apps import ALL_APPS
from repro.common.errors import SolverError
from repro.core.solver import ExactSolver, ExhaustiveSolver
from repro.experiments.harness import (
    build_plan_evaluator,
    deploy_benchmark,
    warm_up,
)
from repro.metrics.carbon import TransmissionScenario
from repro.model.config import Tolerances, WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.model.plan import DeploymentPlan
from repro.cloud.provider import SimulatedCloud

from tests.test_solvers import FixtureData, make_evaluator, tiny_dag


def chain(n: int) -> WorkflowDAG:
    dag = WorkflowDAG(f"chain{n}")
    names = [f"n{i}" for i in range(n)]
    for name in names:
        dag.add_node(Node(name=name, function=name))
    for a, b in zip(names, names[1:]):
        dag.add_edge(Edge(a, b))
    dag.validate()
    return dag


def assert_same_optimum(ev, hour=0, enforce=True):
    """Both solvers, one shared evaluator: identical winning metric."""
    exact_plan, exact_est = ExactSolver(ev).solve_hour(hour, enforce)
    exh_plan, exh_est = ExhaustiveSolver(ev).solve_hour(hour, enforce)
    # Shared evaluator -> shared Monte-Carlo draws, so the comparison is
    # bit-exact, not approximate.
    assert ev.metric(exact_plan, hour) == ev.metric(exh_plan, hour)
    assert exact_est.mean_carbon_g == exh_est.mean_carbon_g
    if enforce:
        assert not ev.tolerance_violated(exact_plan, hour) or (
            exact_plan == ev.home_plan()
        )
    return exact_plan


class TestFixtureDifferential:
    @pytest.mark.parametrize("enforce", [True, False])
    def test_tiny_dag(self, enforce):
        ev = make_evaluator(tiny_dag())
        assert_same_optimum(ev, enforce=enforce)

    @pytest.mark.parametrize("enforce", [True, False])
    def test_chain(self, chain_dag, enforce):
        ev = make_evaluator(chain_dag)
        assert_same_optimum(ev, enforce=enforce)

    @pytest.mark.parametrize("enforce", [True, False])
    def test_diamond(self, diamond_dag, enforce):
        ev = make_evaluator(diamond_dag)
        assert_same_optimum(ev, enforce=enforce)

    @pytest.mark.parametrize(
        "tolerances",
        [
            Tolerances(latency=0.1),
            Tolerances(cost=0.1),
            Tolerances(latency=0.0, cost=0.05),
            Tolerances(latency=0.2, carbon=0.5, cost=0.2),
        ],
    )
    def test_diamond_under_tolerances(self, diamond_dag, tolerances):
        config = WorkflowConfig(
            home_region="us-east-1", tolerances=tolerances
        )
        ev = make_evaluator(
            diamond_dag, config=config, data=FixtureData(edge_bytes=5e8)
        )
        assert_same_optimum(ev, enforce=True)

    def test_several_hours(self, diamond_dag):
        ev = make_evaluator(diamond_dag)
        for hour in (0, 7, 23):
            assert_same_optimum(ev, hour=hour)


class TestAppDifferential:
    """Every example application, solved by both strategies."""

    @pytest.mark.parametrize("app_name", sorted(ALL_APPS))
    @pytest.mark.parametrize("enforce", [True, False])
    def test_app_optimum_matches(self, app_name, enforce):
        cloud = SimulatedCloud(seed=7)
        deployed, executor, _ = deploy_benchmark(ALL_APPS[app_name], cloud)
        warm_up(executor, ALL_APPS[app_name], "small", n=6)
        ev = build_plan_evaluator(deployed, TransmissionScenario.best_case())
        assert ev.search_space_size() <= 100_000
        assert_same_optimum(ev, enforce=enforce)

    def test_app_with_tolerances(self):
        cloud = SimulatedCloud(seed=7)
        app = ALL_APPS["text2speech_censoring"]
        deployed, executor, _ = deploy_benchmark(
            app, cloud, tolerances=Tolerances(latency=0.05, cost=0.1)
        )
        warm_up(executor, app, "small", n=6)
        ev = build_plan_evaluator(deployed, TransmissionScenario.best_case())
        assert_same_optimum(ev, enforce=True)


class TestSolveDayParity:
    """Serial, thread, and process backends: identical plan sets."""

    def _solve(self, jobs, backend):
        ev = make_evaluator(chain(3))
        solver = ExactSolver(ev)
        return solver.solve_day(
            hours=[0, 6, 12, 18], jobs=jobs, backend=backend
        ).to_dict()

    def test_thread_matches_serial(self):
        assert self._solve(1, "thread") == self._solve(3, "thread")

    def test_process_matches_serial(self):
        assert self._solve(1, "thread") == self._solve(3, "process")

    def test_process_backend_accumulates_stats(self):
        ev = make_evaluator(chain(3))
        ExactSolver(ev).solve_day(hours=[0, 6], jobs=2, backend="process")
        assert ev.stats.bnb_hours_solved == 2
        assert ev.stats.bnb_nodes_expanded > 0


class TestBeyondExhaustiveLimit:
    """The acceptance bar: a certified optimum where enumeration refuses."""

    def _big_evaluator(self):
        # 9 nodes x 4 regions = 262,144 plans -- past the 100k cap.
        # Tiny payloads make execution carbon dominate, so the all-
        # ca-central-1 plan (intensity 34 vs 375-400) is the optimum.
        return make_evaluator(chain(9), data=FixtureData(edge_bytes=1e3))

    def test_exhaustive_refuses(self):
        with pytest.raises(SolverError, match="exceeding"):
            ExhaustiveSolver(self._big_evaluator()).solve_hour(0)

    def test_exact_certifies_optimum(self):
        ev = self._big_evaluator()
        space = ev.search_space_size()
        assert space == 4**9 > 100_000
        plan, est = ExactSolver(ev).solve_hour(0)
        assert plan == DeploymentPlan.single_region(ev.dag, "ca-central-1")
        assert math.isfinite(est.mean_carbon_g)
        # The bound must have done the heavy lifting: the proof closes
        # after expanding a vanishing fraction of the space.
        assert 0 < ev.stats.bnb_nodes_expanded < space / 100
        assert ev.stats.bnb_hours_solved == 1
        assert 0 < ev.stats.bnb_bound_tightness_pct <= 100.0

    def test_expansion_budget_enforced(self):
        ev = self._big_evaluator()
        with pytest.raises(SolverError, match="expansion"):
            ExactSolver(ev, max_expansions=2).solve_hour(0)


class TestExhaustiveBoundFilter:
    """Regression: enumeration must not profile provably-dead plans."""

    def _evaluator(self, tolerances):
        config = WorkflowConfig(
            home_region="us-east-1",
            tolerances=tolerances if tolerances is not None else Tolerances(),
        )
        # Continent-wide 500 MB hops make remote plans blow the cost /
        # latency budget by orders of magnitude -- detectable from the
        # admissible lower bounds alone, without any simulation.
        return make_evaluator(
            chain(3), config=config, data=FixtureData(edge_bytes=5e8)
        )

    @pytest.mark.parametrize(
        "tolerances", [Tolerances(cost=0.1), Tolerances(latency=0.2)]
    )
    def test_dead_plans_not_profiled(self, tolerances):
        filtered = self._evaluator(tolerances)
        plan_f, _ = ExhaustiveSolver(filtered).solve_hour(0)
        space = filtered.search_space_size()
        # The filter prunes most of the space before Monte-Carlo...
        assert 0 < filtered.stats.profiles_built < space / 2
        # ...while the winner is the same constrained optimum the
        # branch-and-bound certifies on an identical evaluator.
        reference = self._evaluator(tolerances)
        plan_x, _ = ExactSolver(reference).solve_hour(0)
        assert plan_f == plan_x
        assert filtered.metric(plan_f, 0) == reference.metric(plan_x, 0)

    def test_no_tolerances_no_filter(self):
        ev = self._evaluator(None)
        ExhaustiveSolver(ev).solve_hour(0, enforce_tolerances=True)
        assert ev.stats.profiles_built == ev.search_space_size()
