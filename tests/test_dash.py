"""Tests for the offline sparkline dashboard (`repro.obs.dash`)."""

from repro.obs.dash import SPARK_CHARS, render_dashboard, sparkline


def _ctr(metric, window, value):
    return {"metric": metric, "window": window, "type": "counter",
            "value": value}


# ---------------------------------------------------------------- sparkline
class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_low_blocks(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_scales_to_own_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert len(line) == 4

    def test_monotone_values_monotone_blocks(self):
        line = sparkline(list(range(8)))
        assert [SPARK_CHARS.index(c) for c in line] == sorted(
            SPARK_CHARS.index(c) for c in line
        )

    def test_downsampling_keeps_spikes_visible(self):
        values = [0.0] * 100
        values[37] = 10.0  # single-sample spike
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert SPARK_CHARS[-1] in line  # bucket-maximum: never hidden

    def test_width_zero_means_no_downsampling(self):
        assert len(sparkline([1.0] * 100)) == 100

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=48)) == 2


# ---------------------------------------------------------------- dashboard
class TestRenderDashboard:
    POINTS = [
        _ctr("ledger.carbon_g{region=us-east-1,workflow=wf}", 0.0, 5.0),
        _ctr("ledger.carbon_g{region=us-east-1,workflow=wf}", 3600.0, 1.0),
        _ctr("ledger.carbon_g{region=ca-central-1,workflow=wf}", 3600.0, 0.5),
        _ctr("ledger.cost_usd{region=us-east-1,workflow=wf}", 0.0, 0.02),
        _ctr("ledger.requests{workflow=wf}", 0.0, 4.0),
        {"metric": "executor.request_latency_s{workflow=wf}", "window": 0.0,
         "type": "histogram", "count": 4, "sum": 2.0, "p50": 0.4, "p95": 0.9,
         "p99": 1.0, "buckets": {"1": 4}},
        _ctr("executor.requests{workflow=wf}", 0.0, 4.0),
    ]

    def test_sections_present(self):
        text = render_dashboard(self.POINTS)
        assert text.startswith("# Caribou run dashboard")
        assert "2 window(s) x 3600s virtual time" in text
        assert "### Carbon by region (g)" in text
        assert "### Cost by region (USD)" in text
        assert "### Request latency p95 by workflow (s)" in text
        assert "### Requests by workflow" in text
        # Single-workflow run: the per-workflow carbon view is elided.
        assert "Carbon by workflow" not in text

    def test_carbon_rows_show_sum_and_peak(self):
        text = render_dashboard(self.POINTS)
        [row] = [ln for ln in text.splitlines() if "us-east-1" in ln
                 and "sum=6g" in ln]
        assert "peak=5g" in row
        assert any(c in row for c in SPARK_CHARS)

    def test_missing_windows_render_as_zero(self):
        text = render_dashboard(self.POINTS)
        [row] = [ln for ln in text.splitlines() if "ca-central-1" in ln]
        # ca-central-1 only has data in window 2: sparkline still spans
        # both windows, low block first.
        spark = [c for c in row if c in SPARK_CHARS]
        assert len(spark) == 2
        assert spark[0] == SPARK_CHARS[0]

    def test_multi_workflow_carbon_section_appears(self):
        points = self.POINTS + [
            _ctr("ledger.carbon_g{region=us-east-1,workflow=other}", 0.0, 2.0)
        ]
        assert "### Carbon by workflow (g)" in render_dashboard(points)

    def test_slo_section(self):
        slo = [
            {"name": "p95(lat)<=1.0", "met": True, "budget_spent": 0.2,
             "violations": 0, "windows": 4, "alerts": []},
            {"name": "ratio(c/r)<=0.5", "met": False, "budget_spent": 3.0,
             "violations": 3, "windows": 4, "alerts": [{"type": "slo_burn"}]},
        ]
        text = render_dashboard(self.POINTS, slo_results=slo)
        assert "### SLO budget" in text
        assert "[OK ] p95(lat)<=1.0" in text
        assert "[MISS] ratio(c/r)<=0.5" in text
        assert "300% spent" in text
        assert "3/4 window(s) violating, 1 alert(s)" in text

    def test_empty_series_still_renders_header(self):
        text = render_dashboard([])
        assert text.startswith("# Caribou run dashboard")
        assert "0 window(s)" in text

    def test_deterministic(self):
        assert render_dashboard(self.POINTS) == render_dashboard(self.POINTS)
