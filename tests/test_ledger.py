"""Tests for the metering ledger."""

import pytest

from repro.cloud.ledger import (
    ExecutionRecord,
    MeteringLedger,
    MessagingRecord,
    TransmissionRecord,
)


def make_exec(workflow="wf", node="n", request_id="r1", start=0.0, duration=1.0,
              region="us-east-1"):
    return ExecutionRecord(
        workflow=workflow, node=node, function=node, region=region,
        request_id=request_id, start_s=start, duration_s=duration,
        memory_mb=1769, n_vcpu=1.0, cpu_total_time_s=0.7, cold_start=False,
        payload_bytes=0.0, output_bytes=0.0,
    )


class TestLedger:
    def test_service_time_spans_first_to_last(self):
        ledger = MeteringLedger()
        ledger.record_execution(make_exec(node="a", start=1.0, duration=2.0))
        ledger.record_execution(make_exec(node="b", start=4.0, duration=3.0))
        # §9.1: first function start (1.0) to last function end (7.0).
        assert ledger.service_time("wf", "r1") == pytest.approx(6.0)

    def test_service_time_missing_request(self):
        with pytest.raises(KeyError):
            MeteringLedger().service_time("wf", "ghost")

    def test_filter_by_workflow_and_request(self):
        ledger = MeteringLedger()
        ledger.record_execution(make_exec(workflow="wf1", request_id="r1"))
        ledger.record_execution(make_exec(workflow="wf1", request_id="r2"))
        ledger.record_execution(make_exec(workflow="wf2", request_id="r1"))
        assert len(ledger.executions_for("wf1")) == 2
        assert len(ledger.executions_for("wf1", "r1")) == 1
        assert len(ledger.executions_for(None, "r1")) == 2

    def test_request_ids_in_arrival_order(self):
        ledger = MeteringLedger()
        for rid in ("r3", "r1", "r3", "r2"):
            ledger.record_execution(make_exec(request_id=rid))
        assert ledger.request_ids("wf") == ["r3", "r1", "r2"]

    def test_transmission_intra_flag(self):
        rec = TransmissionRecord(
            workflow="wf", src_region="us-east-1", dst_region="us-east-1",
            size_bytes=10, start_s=0.0, latency_s=0.001,
        )
        assert rec.intra_region
        rec2 = TransmissionRecord(
            workflow="wf", src_region="us-east-1", dst_region="us-west-1",
            size_bytes=10, start_s=0.0, latency_s=0.03,
        )
        assert not rec2.intra_region

    def test_end_s_property(self):
        rec = make_exec(start=2.0, duration=3.0)
        assert rec.end_s == 5.0

    def test_clear(self):
        ledger = MeteringLedger()
        ledger.record_execution(make_exec())
        ledger.record_message(MessagingRecord(
            workflow="wf", topic="t", region="us-east-1", start_s=0.0, size_bytes=1,
        ))
        ledger.clear()
        assert not ledger.executions
        assert not ledger.messages
