"""Caribou reproduction: fine-grained geospatial shifting of serverless
applications for sustainability (SOSP 2024).

A from-scratch Python implementation of the Caribou framework plus every
substrate its evaluation depends on, simulated offline:

* :mod:`repro.common` — virtual clock, deterministic RNG streams.
* :mod:`repro.data` — synthetic carbon / pricing / latency / trace data.
* :mod:`repro.cloud` — a simulated multi-region serverless provider.
* :mod:`repro.model` — the workflow DAG model and deployment plans (§4).
* :mod:`repro.metrics` — carbon/cost/latency models, Monte-Carlo
  estimation, the Metrics Manager, Holt-Winters forecasting (§7).
* :mod:`repro.core` — the developer API, static analysis, solvers,
  token-bucket triggering, deployment/migration, and the cross-regional
  execution runtime (§5, §6, §8).
* :mod:`repro.apps` — the five benchmark workflows (Table 1).
* :mod:`repro.experiments` — the §9 evaluation harness.

Quickstart::

    from repro.apps import get_app
    from repro.experiments import run_caribou

    outcome = run_caribou(
        get_app("text2speech_censoring"), "small",
        regions=("us-east-1", "us-west-1", "ca-central-1"),
    )
    print(outcome.per_scenario["best-case"].mean_carbon_g)
"""

from repro.cloud import SimulatedCloud
from repro.core.api import Payload, Workflow
from repro.model import DeploymentPlan, HourlyPlanSet, WorkflowConfig

__version__ = "1.0.0"

__all__ = [
    "Workflow",
    "Payload",
    "SimulatedCloud",
    "DeploymentPlan",
    "HourlyPlanSet",
    "WorkflowConfig",
    "__version__",
]
