"""End-to-end experiment runner (§9.1 methodology).

One *run* = one fresh simulated cloud + one deployed benchmark +
``n_invocations`` measured end-user requests spread over the carbon
week (2023-10-15..21), after a home-region warm-up phase that gives the
Metrics Manager the execution history the solver needs (standing in for
the 10 % benchmarking traffic of a long-lived deployment).

Fairness rules from §9.1 are baked in: external storage/services stay at
the home region (declared per app), service time is measured from the
first function's start to the last function's end, and each simulated
run is priced under both the best- and worst-case transmission-carbon
scenarios without re-running.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import BenchmarkApp, default_config
from repro.cloud.faults import FaultPlan, ReliabilityStats
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.core.deployer import DeploymentUtility
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.core.migrator import DeploymentMigrator
from repro.core.solver import (
    CoarseSolver,
    ExactSolver,
    ExhaustiveSolver,
    HBSSSolver,
    PlanEvaluator,
    SolverSettings,
    SolverStats,
)
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.manager import MetricsManager
from repro.model.config import Tolerances, WorkflowConfig
from repro.model.plan import DeploymentPlan, HourlyPlanSet
from repro.obs.slo import evaluate_slos
from repro.obs.timeseries import (
    TelemetryConfig,
    WindowedSampler,
    ledger_series,
    merge_series,
    render_prometheus,
)
from repro.obs.trace import Tracer

HOME_REGION = "us-east-1"

#: Fig. 7's fine-grained region combinations.
FIG7_FINE_REGION_SETS: Dict[str, Tuple[str, ...]] = {
    "us-east-1+us-west-1": ("us-east-1", "us-west-1"),
    "us-east-1+us-west-2": ("us-east-1", "us-west-2"),
    "us-east-1+us-west-1+us-west-2": ("us-east-1", "us-west-1", "us-west-2"),
    "us-east-1+ca-central-1": ("us-east-1", "ca-central-1"),
    "all": ("us-east-1", "us-west-1", "us-west-2", "ca-central-1"),
}

#: Default measurement shape: enough invocations for stable means while
#: keeping the full Fig. 7 sweep tractable.
DEFAULT_INVOCATIONS = 40
DEFAULT_WARMUP = 15
#: Solver fidelity used by the figure benches (profiles are cached, so
#: the effective sample budget is far larger than it looks).
BENCH_SOLVER_SETTINGS = SolverSettings(
    batch_size=60, max_samples=240, cov_threshold=0.10
)


@dataclass(frozen=True)
class ScenarioStats:
    """Per-invocation means under one transmission scenario."""

    mean_carbon_g: float
    mean_exec_carbon_g: float
    mean_trans_carbon_g: float
    mean_cost_usd: float

    @property
    def exec_to_trans_ratio(self) -> float:
        """Fig. 8's x-axis; infinite when nothing crossed the wire."""
        if self.mean_trans_carbon_g <= 0:
            return math.inf
        return self.mean_exec_carbon_g / self.mean_trans_carbon_g


@dataclass
class RunOutcome:
    """Everything a figure bench needs from one run."""

    app_name: str
    input_size: str
    label: str
    n_invocations: int
    mean_service_time_s: float
    p95_service_time_s: float
    per_scenario: Dict[str, ScenarioStats]
    plan_set: Optional[HourlyPlanSet] = None
    regions_used: Tuple[str, ...] = ()
    solver_stats: Optional[SolverStats] = None
    reliability: Optional[ReliabilityStats] = None
    #: Flat ``cloud.metrics.snapshot()`` of the run's operational
    #: counters/histograms (always present for harness-driven runs).
    metrics: Optional[Dict[str, Any]] = None
    #: Ledger-derived per-region carbon/cost/usage, per transmission
    #: scenario: ``{scenario: {region: {carbon_g, cost_usd, ...}}}``.
    #: Covers the whole run window (warm-up and framework traffic
    #: included), unlike the per-invocation ``per_scenario`` means.
    per_region: Optional[Dict[str, Dict[str, Dict[str, float]]]] = None
    #: Cumulative simulation events executed by the run's environment —
    #: deterministic (virtual-clock event count), used by the benchmark
    #: harness as the executor-throughput denominator.
    events_executed: Optional[int] = None
    #: Windowed telemetry series (sampler + ledger points, merged and
    #: sorted) when the run was made with a :class:`TelemetryConfig`.
    series: Optional[List[Dict[str, Any]]] = None
    #: Window size the series was sampled on (seconds of virtual time).
    series_window_s: Optional[float] = None
    #: Per-SLO evaluation dicts (see ``repro.obs.slo.SloResult.to_dict``)
    #: when the telemetry config carried SLO specs.
    slo: Optional[List[Dict[str, Any]]] = None
    #: Prometheus text exposition of the run's final registry state
    #: (telemetered runs only) — the registry itself dies with the
    #: simulated cloud, so the exposition is rendered while it exists.
    prom: Optional[str] = None

    def carbon(self, scenario: str) -> float:
        return self.per_scenario[scenario].mean_carbon_g


def geometric_mean(values: Sequence[float]) -> float:
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if len(arr) == 0:
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.log(arr).mean()))


def weekly_hour_profile(
    cloud: SimulatedCloud, region: str
) -> np.ndarray:
    """Mean intensity per hour-of-day across the materialised horizon —
    the solver's view when generating one 24-hour plan set for a week."""
    trace = cloud.carbon_source.trace(region)
    n_days = len(trace) // 24
    return trace[: n_days * 24].reshape(n_days, 24).mean(axis=0)


# --------------------------------------------------------------------------- setup
def deploy_benchmark(
    app: BenchmarkApp,
    cloud: SimulatedCloud,
    home_region: str = HOME_REGION,
    tolerances: Optional[Tolerances] = None,
    benchmarking_fraction: float = 0.0,
    config: Optional[WorkflowConfig] = None,
) -> Tuple[DeployedWorkflow, CaribouExecutor, DeploymentUtility]:
    """Initial deployment of one benchmark to the home region."""
    workflow = app.build_workflow()
    cfg = config or default_config(
        home_region=home_region,
        tolerances=tolerances,
        benchmarking_fraction=benchmarking_fraction,
    )
    utility = DeploymentUtility(cloud)
    deployed, executor = utility.deploy(workflow, cfg)
    return deployed, executor, utility


def warm_up(
    executor: CaribouExecutor,
    app: BenchmarkApp,
    input_size: str,
    n: int = DEFAULT_WARMUP,
    interval_s: float = 120.0,
) -> List[str]:
    """Run home-region invocations to seed the Metrics Manager."""
    cloud = executor.deployed.cloud
    rids = []
    for i in range(n):
        payload = app.make_input(input_size)
        cloud.env.schedule(
            i * interval_s,
            lambda p=payload: rids.append(executor.invoke(p, force_home=True)),
        )
    cloud.run_until_idle()
    return rids


def solve_plan_set(
    deployed: DeployedWorkflow,
    executor: CaribouExecutor,
    scenario: TransmissionScenario,
    solver_settings: SolverSettings = BENCH_SOLVER_SETTINGS,
    hours: Optional[Sequence[int]] = None,
    intensity_fn=None,
    stats: Optional[SolverStats] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> HourlyPlanSet:
    """Solve a 24-hour plan set over the week-averaged diurnal profile
    and return it (not yet migrated).  Pass a :class:`SolverStats` to
    collect simulation/caching/wall-time counters for the run.

    ``jobs`` controls the hour fan-out (``None`` defers to
    ``solver_settings.parallel_hours``) and ``backend`` how the workers
    run (``"thread"`` or ``"process"``; ``None`` defers to
    ``solver_settings.parallel_backend``); each hour draws from its own
    registry substream, so the returned plan set is identical for any
    worker count or backend.

    ``solver_settings.solver`` picks the search strategy — ``"hbss"``
    (default), ``"coarse"``, ``"exhaustive"``, or ``"exact"`` (the
    branch-and-bound optimum)."""
    evaluator = build_plan_evaluator(
        deployed,
        scenario,
        solver_settings=solver_settings,
        intensity_fn=intensity_fn,
        stats=stats,
    )
    cloud = deployed.cloud
    which = solver_settings.solver
    if which == "coarse":
        return CoarseSolver(evaluator).solve_day(
            hours, jobs=jobs, backend=backend
        )
    if which == "exhaustive":
        return ExhaustiveSolver(evaluator).solve_day(
            hours, jobs=jobs, backend=backend
        )
    if which == "exact":
        return ExactSolver(evaluator).solve_day(
            hours, jobs=jobs, backend=backend
        )
    solver = HBSSSolver(
        evaluator,
        cloud.env.rng.get(f"solver:{deployed.name}"),
        tracer=cloud.tracer,
        metrics=cloud.metrics,
        rng_factory=lambda h: cloud.env.rng.get(
            f"solver:{deployed.name}:hour={h}"
        ),
    )
    plan_set, _ = solver.solve_day(hours, jobs=jobs, backend=backend)
    return plan_set


def build_plan_evaluator(
    deployed: DeployedWorkflow,
    scenario: TransmissionScenario,
    solver_settings: SolverSettings = BENCH_SOLVER_SETTINGS,
    intensity_fn=None,
    stats: Optional[SolverStats] = None,
) -> PlanEvaluator:
    """The :class:`PlanEvaluator` ``solve_plan_set`` solves over:
    learned metrics collected now, week-averaged diurnal intensities,
    and the workflow's registered external-data declarations.  Exposed
    so ablations (e.g. the solver-quality bench) can run several
    solvers against one shared evaluator — shared cache, shared RNG
    substreams, bit-identical per-plan metrics across solvers."""
    cloud = deployed.cloud
    metrics = MetricsManager(
        deployed.dag, deployed.config, cloud.ledger, cloud.carbon_source
    )
    for spec in deployed.workflow.functions:
        if spec.external_data is not None:
            for node in deployed.dag.node_names:
                if deployed.dag.node(node).function == spec.name:
                    metrics.declare_external_data(
                        node, spec.external_data.region, spec.external_data.size_bytes
                    )
    metrics.collect(cloud.now())

    if intensity_fn is None:
        profiles = {r: weekly_hour_profile(cloud, r) for r in cloud.regions}

        def intensity_fn(region: str, hour: int) -> float:  # noqa: F811
            return float(profiles[region][hour % 24])

    return PlanEvaluator(
        dag=deployed.dag,
        config=deployed.config,
        data=metrics,
        regions=cloud.regions,
        intensity_fn=intensity_fn,
        carbon_model=CarbonModel(scenario),
        cost_model=CostModel(cloud.pricing_source),
        latency_model=TransferLatencyModel(cloud.latency_source),
        rng=cloud.env.rng.get(f"solver:{deployed.name}"),
        kv_region=deployed.kv_region,
        client_region=deployed.config.home_region,
        settings=solver_settings,
        stats=stats,
    )


# --------------------------------------------------------------------------- runs
def _run_measurement(
    deployed: DeployedWorkflow,
    executor: CaribouExecutor,
    app: BenchmarkApp,
    input_size: str,
    n_invocations: int,
    duration_s: float,
    scenarios: Sequence[TransmissionScenario],
    label: str,
    plan_set: Optional[HourlyPlanSet],
    solver_stats: Optional[SolverStats] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunOutcome:
    cloud = deployed.cloud
    start = cloud.now()
    step = duration_s / max(1, n_invocations)
    # Windowed telemetry attaches before any measured work is scheduled,
    # so the first window boundary is already armed when the loop starts;
    # with telemetry off, nothing is scheduled and the event sequence is
    # byte-identical to a pre-telemetry run.
    sampler: Optional[WindowedSampler] = None
    if telemetry is not None:
        sampler = WindowedSampler(cloud.metrics, window_s=telemetry.window_s)
        sampler.attach(cloud.env)
    rids: List[str] = []
    for i in range(n_invocations):
        payload = app.make_input(input_size)
        cloud.env.schedule(
            i * step + step / 2.0,
            lambda p=payload: rids.append(executor.invoke(p)),
        )
    cloud.run_until_idle()
    if sampler is not None:
        sampler.close()

    ledger = cloud.ledger
    # Under fault injection some requests fail before any execution is
    # recorded; measure service time only over requests that actually ran.
    service_times = []
    for rid in rids:
        try:
            service_times.append(ledger.service_time(deployed.name, rid))
        except KeyError:
            continue

    per_scenario: Dict[str, ScenarioStats] = {}
    per_region: Dict[str, Dict[str, Dict[str, float]]] = {}
    region_usage = ledger.usage_by_region(deployed.name)
    for scenario in scenarios:
        accountant = CarbonAccountant(
            cloud.carbon_source,
            CarbonModel(scenario),
            CostModel(cloud.pricing_source),
        )
        carbons, execs, trans, costs = [], [], [], []
        for rid in rids:
            fp = accountant.price_workflow(ledger, deployed.name, rid)
            carbons.append(fp.carbon_g)
            execs.append(fp.exec_carbon_g)
            trans.append(fp.trans_carbon_g)
            costs.append(fp.cost_usd)
        per_scenario[scenario.name] = ScenarioStats(
            mean_carbon_g=float(np.mean(carbons)),
            mean_exec_carbon_g=float(np.mean(execs)),
            mean_trans_carbon_g=float(np.mean(trans)),
            mean_cost_usd=float(np.mean(costs)),
        )
        per_region[scenario.name] = {}
        for region, usage in region_usage.items():
            fp = accountant.price(
                executions=usage.executions,
                transmissions=usage.transmissions,
                messages=usage.messages,
                kv_accesses=usage.kv_accesses,
            )
            per_region[scenario.name][region] = {
                "bytes_out": usage.bytes_out,
                "carbon_g": fp.carbon_g,
                "cost_usd": fp.cost_usd,
                "exec_carbon_g": fp.exec_carbon_g,
                "exec_seconds": usage.exec_seconds,
                "n_executions": usage.n_executions,
                "trans_carbon_g": fp.trans_carbon_g,
            }

    regions_used = tuple(
        sorted({r.region for r in ledger.executions if r.request_id in set(rids)})
    )
    reliability = (
        executor.reliability() if hasattr(executor, "reliability") else None
    )
    metrics_snapshot = cloud.metrics.snapshot()

    series: Optional[List[Dict[str, Any]]] = None
    slo_results: Optional[List[Dict[str, Any]]] = None
    prom_text: Optional[str] = None
    if telemetry is not None and sampler is not None:
        prom_text = render_prometheus(cloud.metrics)
        series = sampler.points
        if telemetry.ledger:
            # Post-hoc per-window carbon/cost, priced under the first
            # (reporting) scenario — ledger records carry virtual start
            # times, so this is as deterministic as the sampler itself.
            accountant = CarbonAccountant(
                cloud.carbon_source,
                CarbonModel(scenarios[0]),
                CostModel(cloud.pricing_source),
            )
            series = merge_series(
                series,
                ledger_series(
                    cloud.ledger, accountant, window_s=telemetry.window_s
                ),
            )
        if telemetry.slos:
            slo_results = evaluate_slos(telemetry.slos, series)

    return RunOutcome(
        app_name=app.name,
        input_size=input_size,
        label=label,
        n_invocations=len(rids),
        mean_service_time_s=(
            float(np.mean(service_times)) if service_times else math.nan
        ),
        p95_service_time_s=(
            float(np.percentile(service_times, 95)) if service_times else math.nan
        ),
        per_scenario=per_scenario,
        plan_set=plan_set,
        regions_used=regions_used,
        solver_stats=solver_stats,
        reliability=reliability,
        metrics=metrics_snapshot,
        per_region=per_region,
        events_executed=cloud.env.events_executed,
        series=series,
        series_window_s=(
            telemetry.window_s if telemetry is not None else None
        ),
        slo=slo_results,
        prom=prom_text,
    )


def run_coarse(
    app: BenchmarkApp,
    input_size: str,
    region: str,
    seed: int = 0,
    n_invocations: int = DEFAULT_INVOCATIONS,
    days: float = 6.5,
    scenarios: Optional[Sequence[TransmissionScenario]] = None,
    fault_plan: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunOutcome:
    """Manual static single-region deployment (Fig. 7 "Coarse" bars).

    Coarse deployment is a *manual* act (§9.2 I1): it bypasses the
    solver and therefore any compliance constraints.
    """
    scenarios = scenarios or (
        TransmissionScenario.best_case(),
        TransmissionScenario.worst_case(),
    )
    cloud = SimulatedCloud(seed=seed, fault_plan=fault_plan, tracer=tracer)
    deployed, executor, utility = deploy_benchmark(app, cloud)
    # Materialise every function in the target region and pin the plan.
    if region != deployed.config.home_region:
        for spec in deployed.workflow.functions:
            utility.deploy_function(
                deployed, executor, spec, region,
                copy_image_from=deployed.config.home_region,
            )
    plan_set = HourlyPlanSet.daily(
        DeploymentPlan.single_region(deployed.dag, region)
    )
    executor.stage_plan_set(plan_set)
    return _run_measurement(
        deployed,
        executor,
        app,
        input_size,
        n_invocations,
        days * SECONDS_PER_DAY,
        scenarios,
        label=f"coarse:{region}",
        plan_set=plan_set,
        telemetry=telemetry,
    )


def run_caribou(
    app: BenchmarkApp,
    input_size: str,
    regions: Sequence[str],
    seed: int = 0,
    n_invocations: int = DEFAULT_INVOCATIONS,
    warmup: int = DEFAULT_WARMUP,
    days: float = 6.0,
    scenario_for_solver: Optional[TransmissionScenario] = None,
    scenarios: Optional[Sequence[TransmissionScenario]] = None,
    tolerances: Optional[Tolerances] = None,
    solver_settings: SolverSettings = BENCH_SOLVER_SETTINGS,
    label: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> RunOutcome:
    """Caribou fine-grained deployment over a region set (Fig. 7 "Fine").

    Warm-up seeds the metrics, HBSS solves a 24-hour plan set under
    ``scenario_for_solver``'s transmission accounting, the migrator
    materialises it, and the measured invocations route through it.
    """
    scenarios = scenarios or (
        TransmissionScenario.best_case(),
        TransmissionScenario.worst_case(),
    )
    scenario_for_solver = scenario_for_solver or scenarios[0]
    if HOME_REGION not in regions:
        raise ValueError(f"region set must include the home region {HOME_REGION}")
    cloud = SimulatedCloud(
        seed=seed, regions=tuple(regions), fault_plan=fault_plan, tracer=tracer
    )
    deployed, executor, utility = deploy_benchmark(
        app, cloud, tolerances=tolerances
    )
    warm_up(executor, app, input_size, n=warmup)
    solver_stats = SolverStats()
    plan_set = solve_plan_set(
        deployed, executor, scenario_for_solver, solver_settings,
        stats=solver_stats, jobs=jobs, backend=backend,
    )
    migrator = DeploymentMigrator(utility, deployed, executor)
    report = migrator.migrate(plan_set)
    if not report.activated:
        raise RuntimeError(f"migration failed: {report.error}")
    return _run_measurement(
        deployed,
        executor,
        app,
        input_size,
        n_invocations,
        days * SECONDS_PER_DAY,
        scenarios,
        label=label or f"caribou:{'+'.join(regions)}",
        plan_set=plan_set,
        solver_stats=solver_stats,
        telemetry=telemetry,
    )
