"""Experiment harness reproducing the paper's evaluation (§9).

:mod:`repro.experiments.harness` deploys a benchmark app on a fresh
simulated cloud, optionally solves a Caribou plan set, drives measured
invocations over the carbon week, and prices the resulting telemetry
under the best-/worst-case transmission scenarios.  The figure benches
under ``benchmarks/`` are thin layers over these functions.
"""

from repro.experiments.harness import (
    FIG7_FINE_REGION_SETS,
    RunOutcome,
    ScenarioStats,
    geometric_mean,
    run_caribou,
    run_coarse,
    weekly_hour_profile,
)

__all__ = [
    "RunOutcome",
    "ScenarioStats",
    "run_coarse",
    "run_caribou",
    "weekly_hour_profile",
    "geometric_mean",
    "FIG7_FINE_REGION_SETS",
]
