"""Operational carbon models (paper §7.1, Eq. 7.1-7.5).

Execution carbon:

    Carbon_exec = I_grid * (E_proc + E_mem) * PUE                 (7.1)
    E_mem  = P_mem * (mem/1024) * t/3600                          (7.2)
    P_vcpu = P_min + cpu_total_time / (t * n_vcpu) * (P_max-P_min)(7.3)
    E_proc = P_vcpu * n_vcpu * t/3600                             (7.4)

Transmission carbon:

    Carbon_tran = I_route * EF_trans * S                          (7.5)

with I in gCO2eq/kWh, E in kWh, S in GB.  Only *operational* carbon is
modelled; embodied carbon is a sunk cost for offloading decisions (§7.1)
and adding an equal embodied baseline per region would not change the
relative differentials the solver exploits.

The transmission energy factor EF_trans is highly uncertain (0.001 to
0.005 kWh/GB across studies); the paper brackets it with a best-case
scenario (0.001 kWh/GB for any transfer, including intra-region) and a
worst-case scenario (0.005 kWh/GB inter-region, 0 intra-region), plus a
sensitivity sweep (Fig. 9).  :class:`TransmissionScenario` captures all
of these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Power usage effectiveness: the 1.07-1.15 AWS range averaged (§7.1).
PUE = 1.11
#: Memory power draw, kW per GB (§7.1, community estimate).
P_MEM_KW_PER_GB = 3.725e-4
#: Per-vCPU power draw at idle / full utilisation, kW (§7.1).
P_MIN_KW = 7.5e-4
P_MAX_KW = 3.5e-3
#: The paper's bracketing transmission energy factors, kWh/GB.
EF_BEST_CASE = 0.001
EF_WORST_CASE = 0.005


@dataclass(frozen=True)
class TransmissionScenario:
    """A transmission-energy accounting scenario.

    Attributes:
        ef_inter: Energy factor for cross-region transfers, kWh/GB.
        ef_intra: Energy factor for same-region transfers, kWh/GB.
        name: Label used in reports.
    """

    ef_inter: float
    ef_intra: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.ef_inter < 0 or self.ef_intra < 0:
            raise ValueError("energy factors must be non-negative")

    def energy_factor(self, intra_region: bool) -> float:
        return self.ef_intra if intra_region else self.ef_inter

    @classmethod
    def best_case(cls) -> "TransmissionScenario":
        """0.001 kWh/GB for any transmission, intra-region included."""
        return cls(ef_inter=EF_BEST_CASE, ef_intra=EF_BEST_CASE, name="best-case")

    @classmethod
    def worst_case(cls) -> "TransmissionScenario":
        """0.005 kWh/GB inter-region, free intra-region."""
        return cls(ef_inter=EF_WORST_CASE, ef_intra=0.0, name="worst-case")

    @classmethod
    def equal(cls, ef: float) -> "TransmissionScenario":
        """Fig. 9 scenario 1: the same factor between all regions."""
        return cls(ef_inter=ef, ef_intra=ef, name=f"equal-{ef:g}")

    @classmethod
    def free_intra(cls, ef: float) -> "TransmissionScenario":
        """Fig. 9 scenario 2: intra-region transmission is free."""
        return cls(ef_inter=ef, ef_intra=0.0, name=f"free-intra-{ef:g}")


class CarbonModel:
    """Computes operational carbon for executions and transmissions."""

    def __init__(
        self,
        scenario: TransmissionScenario,
        pue: float = PUE,
        p_mem_kw_per_gb: float = P_MEM_KW_PER_GB,
        p_min_kw: float = P_MIN_KW,
        p_max_kw: float = P_MAX_KW,
    ):
        if pue < 1.0:
            raise ValueError(f"PUE cannot be below 1.0, got {pue}")
        self.scenario = scenario
        self.pue = pue
        self.p_mem = p_mem_kw_per_gb
        self.p_min = p_min_kw
        self.p_max = p_max_kw

    # -- energy ------------------------------------------------------------
    def memory_energy_kwh(self, memory_mb: float, duration_s: float) -> float:
        """Eq. 7.2: memory energy in kWh."""
        return self.p_mem * (memory_mb / 1024.0) * duration_s / 3600.0

    def vcpu_power_kw(
        self, cpu_total_time_s: float, duration_s: float, n_vcpu: float
    ) -> float:
        """Eq. 7.3: per-vCPU power via the linear utilisation model."""
        if duration_s <= 0 or n_vcpu <= 0:
            raise ValueError("duration and vCPU count must be positive")
        utilisation = cpu_total_time_s / (duration_s * n_vcpu)
        utilisation = min(max(utilisation, 0.0), 1.0)
        return self.p_min + utilisation * (self.p_max - self.p_min)

    def processing_energy_kwh(
        self, cpu_total_time_s: float, duration_s: float, n_vcpu: float
    ) -> float:
        """Eq. 7.4: processor energy in kWh."""
        p_vcpu = self.vcpu_power_kw(cpu_total_time_s, duration_s, n_vcpu)
        return p_vcpu * n_vcpu * duration_s / 3600.0

    def execution_energy_kwh(
        self,
        duration_s: float,
        memory_mb: float,
        n_vcpu: float,
        cpu_total_time_s: float,
    ) -> float:
        """Total (proc + mem) execution energy, before PUE."""
        return self.processing_energy_kwh(
            cpu_total_time_s, duration_s, n_vcpu
        ) + self.memory_energy_kwh(memory_mb, duration_s)

    def execution_energy_kwh_batch(
        self,
        durations_s: np.ndarray,
        memory_mb: float,
        n_vcpu: float,
        cpu_total_times_s: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`execution_energy_kwh` over duration vectors.

        Replicates the scalar Eq. 7.2-7.4 arithmetic element for element
        (same operation order, same clamping), so the vectorized
        Monte-Carlo kernel produces bit-identical energies to the scalar
        reference path.
        """
        durations = np.asarray(durations_s, dtype=float)
        cpu_totals = np.asarray(cpu_total_times_s, dtype=float)
        if n_vcpu <= 0 or np.any(durations <= 0):
            raise ValueError("duration and vCPU count must be positive")
        utilisation = cpu_totals / (durations * n_vcpu)
        utilisation = np.minimum(np.maximum(utilisation, 0.0), 1.0)
        p_vcpu = self.p_min + utilisation * (self.p_max - self.p_min)
        proc = p_vcpu * n_vcpu * durations / 3600.0
        mem = self.p_mem * (memory_mb / 1024.0) * durations / 3600.0
        return proc + mem

    # -- carbon ------------------------------------------------------------
    def execution_carbon_g(
        self,
        grid_intensity: float,
        duration_s: float,
        memory_mb: float,
        n_vcpu: float,
        cpu_total_time_s: float,
    ) -> float:
        """Eq. 7.1: execution carbon in gCO2eq."""
        energy = self.execution_energy_kwh(
            duration_s, memory_mb, n_vcpu, cpu_total_time_s
        )
        return grid_intensity * energy * self.pue

    def transmission_carbon_g(
        self,
        route_intensity: float,
        size_bytes: float,
        intra_region: bool,
    ) -> float:
        """Eq. 7.5: transmission carbon in gCO2eq."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        size_gb = size_bytes / (1024.0**3)
        ef = self.scenario.energy_factor(intra_region)
        return route_intensity * ef * size_gb

    def transmission_carbon_g_batch(
        self,
        route_intensity: float,
        size_bytes: np.ndarray,
        intra_region: bool,
    ) -> np.ndarray:
        """Vectorised Eq. 7.5 over a size vector (same op order as the
        scalar path, see :meth:`execution_energy_kwh_batch`)."""
        sizes = np.asarray(size_bytes, dtype=float)
        if np.any(sizes < 0):
            raise ValueError("size_bytes must be non-negative")
        size_gb = sizes / (1024.0**3)
        ef = self.scenario.energy_factor(intra_region)
        return route_intensity * ef * size_gb

    def with_scenario(self, scenario: TransmissionScenario) -> "CarbonModel":
        """A copy of this model under a different transmission scenario
        (used to re-price one simulated run under both paper scenarios)."""
        return CarbonModel(
            scenario,
            pue=self.pue,
            p_mem_kw_per_gb=self.p_mem,
            p_min_kw=self.p_min,
            p_max_kw=self.p_max,
        )
