"""Monetary cost model (paper §7.1, Cost).

Execution cost is Lambda-style: GB-seconds of configured memory plus a
fixed per-invocation fee, at the executing region's rates.  Framework
overheads are billed exactly as the paper lists them: "additional
DynamoDB accesses introduced by Caribou for geospatial shifting",
SNS messaging "used by our framework for function orchestration", and
outbound data transfer (egress) for cross-region hops.  The AWS free
tier is not modelled (§7.1).
"""

from __future__ import annotations

import numpy as np

from repro.data.pricing import PricingSource


class CostModel:
    """Computes USD costs from execution/transfer parameters."""

    def __init__(self, pricing: PricingSource):
        self._pricing = pricing

    def execution_cost(
        self, region: str, duration_s: float, memory_mb: float
    ) -> float:
        """Compute cost of one execution: GB-seconds + invocation fee."""
        if duration_s < 0 or memory_mb <= 0:
            raise ValueError("duration must be >= 0 and memory positive")
        prices = self._pricing.prices(region)
        gb_seconds = (memory_mb / 1024.0) * duration_s
        return gb_seconds * prices.lambda_gb_second + prices.lambda_invocation

    def execution_cost_batch(
        self, region: str, durations_s: np.ndarray, memory_mb: float
    ) -> np.ndarray:
        """Vectorised :meth:`execution_cost` over a duration vector.

        Mirrors the scalar arithmetic exactly (same operation order) so
        the vectorized Monte-Carlo kernel is bit-identical to the scalar
        reference path.
        """
        durations = np.asarray(durations_s, dtype=float)
        if np.any(durations < 0) or memory_mb <= 0:
            raise ValueError("duration must be >= 0 and memory positive")
        prices = self._pricing.prices(region)
        gb_seconds = (memory_mb / 1024.0) * durations
        return gb_seconds * prices.lambda_gb_second + prices.lambda_invocation

    def execution_cost_stacked(
        self, regions: "list[str]", durations_s: np.ndarray, memory_mb: float
    ) -> np.ndarray:
        """Vectorised :meth:`execution_cost` over per-row regions.

        ``regions[p]`` prices row ``p`` of the ``(n_rows, batch)``
        duration matrix; rates broadcast as ``(n_rows, 1)`` columns so
        each element sees exactly the scalar arithmetic (bit-identity
        for the cross-plan Monte-Carlo kernel).
        """
        durations = np.asarray(durations_s, dtype=float)
        if np.any(durations < 0) or memory_mb <= 0:
            raise ValueError("duration must be >= 0 and memory positive")
        rates = np.array(
            [self._pricing.prices(r).lambda_gb_second for r in regions]
        )[:, None]
        fees = np.array(
            [self._pricing.prices(r).lambda_invocation for r in regions]
        )[:, None]
        gb_seconds = (memory_mb / 1024.0) * durations
        return gb_seconds * rates + fees

    def transmission_cost(
        self, src_region: str, dst_region: str, size_bytes: float
    ) -> float:
        """Egress cost of moving ``size_bytes`` from ``src`` to ``dst``.

        Intra-region transfer is free (AWS does not charge same-region
        service-to-service traffic in this regime).
        """
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        per_gb = self._pricing.egress_per_gb(src_region, dst_region)
        return per_gb * (size_bytes / (1024.0**3))

    def transmission_cost_batch(
        self, src_region: str, dst_region: str, size_bytes: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`transmission_cost` over a size vector."""
        sizes = np.asarray(size_bytes, dtype=float)
        if np.any(sizes < 0):
            raise ValueError("size_bytes must be non-negative")
        per_gb = self._pricing.egress_per_gb(src_region, dst_region)
        return per_gb * (sizes / (1024.0**3))

    def transmission_cost_stacked(
        self, routes: "list[tuple[str, str]]", size_bytes: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`transmission_cost` over per-row routes
        (``(n_rows, 1)`` rate columns; see :meth:`execution_cost_stacked`).
        """
        sizes = np.asarray(size_bytes, dtype=float)
        if np.any(sizes < 0):
            raise ValueError("size_bytes must be non-negative")
        per_gb = np.array(
            [self._pricing.egress_per_gb(src, dst) for src, dst in routes]
        )[:, None]
        return per_gb * (sizes / (1024.0**3))

    def messaging_cost_column(
        self, regions: "list[str]", n_publishes: int = 1
    ) -> np.ndarray:
        """``(n_rows, 1)`` column of :meth:`messaging_cost` per region."""
        return np.array(
            [self.messaging_cost(r, n_publishes) for r in regions]
        )[:, None]

    def kv_cost_column(
        self, regions: "list[str]", n_reads: int = 0, n_writes: int = 0
    ) -> np.ndarray:
        """``(n_rows, 1)`` column of :meth:`kv_cost` per region."""
        return np.array(
            [self.kv_cost(r, n_reads, n_writes) for r in regions]
        )[:, None]

    def messaging_cost(self, region: str, n_publishes: int = 1) -> float:
        """SNS publish cost in ``region``."""
        if n_publishes < 0:
            raise ValueError("n_publishes must be non-negative")
        return self._pricing.prices(region).sns_publish * n_publishes

    def kv_cost(
        self, region: str, n_reads: int = 0, n_writes: int = 0
    ) -> float:
        """DynamoDB request-unit cost in ``region``."""
        if n_reads < 0 or n_writes < 0:
            raise ValueError("access counts must be non-negative")
        prices = self._pricing.prices(region)
        return n_reads * prices.dynamodb_read + n_writes * prices.dynamodb_write
