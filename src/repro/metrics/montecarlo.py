"""Monte-Carlo end-to-end workflow estimation (paper §7.1).

Estimating the latency, cost, and carbon of a *conditional* DAG under a
candidate deployment plan is the solver's inner loop.  Following the
paper, each simulation:

1. samples each conditional edge's invocation from its historical
   probability to fix the realised partial DAG;
2. samples every executed node's execution time from its per-region
   historical distribution and every taken edge's payload size from its
   size distribution, yielding the critical path and end-to-end time;
3. prices the realised scenario in USD and gCO2eq (including framework
   overheads: SNS publishes per edge, KV accesses for plan retrieval and
   sync-node coordination, and the KV-store relay for fan-in data).

Batches of 200 simulations run "until reaching a low coefficient of
variation below 0.05 ... or until a maximum of 2,000 samples" (§7.1).
The CoV here is of the *mean estimator* (relative standard error), the
standard Monte-Carlo stopping rule — the raw sample CoV would never
converge for wide distributions.  The mean is the "average case" used
for plan ordering and the 95th percentile the "tail case" used for
tolerance checks (§7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.metrics.carbon import CarbonModel
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.model.dag import WorkflowDAG
from repro.model.plan import DeploymentPlan

BATCH_SIZE = 200
MAX_SAMPLES = 2000
COV_THRESHOLD = 0.05


class WorkflowModelData(Protocol):
    """What the estimator needs to know about a workflow's behaviour.

    Implemented by the Metrics Manager (learned from logs) and by tests
    (hand-built fixtures).
    """

    def execution_time_dist(self, node: str, region: str) -> EmpiricalDistribution:
        """Execution-time distribution of ``node`` in ``region``.

        Implementations fall back to the home region's distribution when
        a region has no history (§7.1)."""
        ...

    def edge_probability(self, src: str, dst: str) -> float:
        """Observed invocation probability of the edge."""
        ...

    def edge_size_dist(self, src: str, dst: str) -> EmpiricalDistribution:
        """Payload-size distribution (bytes) across the edge."""
        ...

    def node_memory_mb(self, node: str) -> int:
        ...

    def node_vcpu(self, node: str) -> float:
        ...

    def node_cpu_utilization(self, node: str) -> float:
        """Average vCPU utilisation (from Lambda-Insights data)."""
        ...

    def node_external_bytes(self, node: str) -> Tuple[Optional[str], float]:
        """(region, bytes) of fixed external data the node reads, or
        ``(None, 0.0)``.  External services stay at/near the home region
        (§9.1 fairness rule 1), so moving the node moves this traffic."""
        ...

    def input_size_dist(self) -> EmpiricalDistribution:
        """Distribution of end-user input payload sizes.

        The invocation client sits at/near the home region (§6.2), so a
        plan that moves the start node pays this transfer cross-region
        — without it the solver would under-price offloading the entry
        stage of input-heavy workflows."""
        ...


@dataclass(frozen=True)
class WorkflowEstimate:
    """Estimator output for one (plan, hour) pair."""

    mean_latency_s: float
    tail_latency_s: float
    mean_cost_usd: float
    tail_cost_usd: float
    mean_carbon_g: float
    tail_carbon_g: float
    mean_exec_carbon_g: float
    mean_trans_carbon_g: float
    n_samples: int

    def metric(self, priority: str) -> float:
        """The scalar the solver orders plans by (§5.1)."""
        if priority == "carbon":
            return self.mean_carbon_g
        if priority == "cost":
            return self.mean_cost_usd
        if priority == "latency":
            return self.mean_latency_s
        raise ValueError(f"unknown priority {priority!r}")


@dataclass
class PlanProfile:
    """Hour-independent Monte-Carlo profile of one deployment plan.

    For a fixed plan, the only hour-dependent inputs are the grid
    intensities: execution carbon is ``sum_n E_n * I(region_n)`` and
    transmission carbon ``sum_routes S_route * mean(I_src, I_dst) * EF``
    (Eq. 7.1/7.5).  Latency and USD cost do not depend on the hour at
    all.  The profile therefore stores, per simulation sample, the
    energy aggregated per region and the bytes aggregated per route, so
    the 24 hourly evaluations of §5.1 can re-price a single simulation
    run exactly instead of re-running it.

    Attributes:
        latencies / costs: Per-sample end-to-end values.
        exec_energy: Per-sample {region: kWh} (already PUE-adjusted).
        route_bytes: Per-sample {(src_region, dst_region): bytes}.
    """

    latencies: "np.ndarray"
    costs: "np.ndarray"
    exec_energy: List[Dict[str, float]]
    route_bytes: List[Dict[Tuple[str, str], float]]
    carbon_model: CarbonModel

    @property
    def n_samples(self) -> int:
        return len(self.latencies)

    def carbon_samples(
        self, carbon_at: Callable[[str], float]
    ) -> "np.ndarray":
        """Per-sample total carbon under the given hourly intensities."""
        out = np.empty(self.n_samples)
        for i in range(self.n_samples):
            total = sum(
                energy * carbon_at(region)
                for region, energy in self.exec_energy[i].items()
            )
            for (src, dst), size in self.route_bytes[i].items():
                route_intensity = (carbon_at(src) + carbon_at(dst)) / 2.0
                total += self.carbon_model.transmission_carbon_g(
                    route_intensity=route_intensity,
                    size_bytes=size,
                    intra_region=(src == dst),
                )
            out[i] = total
        return out

    def estimate_at(self, carbon_at: Callable[[str], float]) -> WorkflowEstimate:
        """Full :class:`WorkflowEstimate` under the given intensities."""
        carbon = self.carbon_samples(carbon_at)
        exec_only = np.array(
            [
                sum(
                    energy * carbon_at(region)
                    for region, energy in self.exec_energy[i].items()
                )
                for i in range(self.n_samples)
            ]
        )
        return WorkflowEstimate(
            mean_latency_s=float(self.latencies.mean()),
            tail_latency_s=float(np.percentile(self.latencies, 95)),
            mean_cost_usd=float(self.costs.mean()),
            tail_cost_usd=float(np.percentile(self.costs, 95)),
            mean_carbon_g=float(carbon.mean()),
            tail_carbon_g=float(np.percentile(carbon, 95)),
            mean_exec_carbon_g=float(exec_only.mean()),
            mean_trans_carbon_g=float((carbon - exec_only).mean()),
            n_samples=self.n_samples,
        )


class MonteCarloEstimator:
    """Estimates end-to-end workflow metrics for a deployment plan."""

    def __init__(
        self,
        dag: WorkflowDAG,
        data: WorkflowModelData,
        carbon_model: CarbonModel,
        cost_model: CostModel,
        latency_model: TransferLatencyModel,
        rng: np.random.Generator,
        kv_region: Optional[str] = None,
        batch_size: int = BATCH_SIZE,
        max_samples: int = MAX_SAMPLES,
        cov_threshold: float = COV_THRESHOLD,
    ):
        """Args:
        dag: The workflow structure.
        data: Learned behaviour (distributions, probabilities).
        carbon_model / cost_model / latency_model: Pricing models.
        rng: Random stream (callers pass a solver-owned stream).
        kv_region: Region hosting the distributed KV store; sync-node
            intermediate data is relayed through it (§4 / Fig. 5).
            Defaults to the plan's start-node region per evaluation.
        batch_size / max_samples / cov_threshold: Stopping rule knobs
            (paper defaults: 200 / 2000 / 0.05).
        """
        self._dag = dag
        self._data = data
        self._carbon = carbon_model
        self._cost = cost_model
        self._latency = latency_model
        self._rng = rng
        self._kv_region = kv_region
        self._batch = batch_size
        self._max = max_samples
        self._cov = cov_threshold
        self._order = dag.topological_order()

    def estimate(
        self,
        plan: DeploymentPlan,
        carbon_at: Callable[[str], float],
    ) -> WorkflowEstimate:
        """Run simulations until the stopping rule fires.

        Args:
            plan: Candidate deployment plan covering every DAG node.
            carbon_at: ``region -> gCO2eq/kWh`` at the hour under
                evaluation (actual or forecast intensity).
        """
        if not plan.covers(self._dag):
            missing = set(self._dag.node_names) - set(plan.assignments)
            raise ValueError(f"plan does not cover nodes: {sorted(missing)}")

        return self.estimate_profile(plan).estimate_at(carbon_at)

    def estimate_profile(self, plan: DeploymentPlan) -> PlanProfile:
        """Run the Monte-Carlo simulation collecting an hour-independent
        :class:`PlanProfile` (see its docstring).  The stopping rule is
        applied to the latency and cost estimators, since carbon is a
        deterministic re-pricing of the collected energy/byte vectors.
        """
        if not plan.covers(self._dag):
            missing = set(self._dag.node_names) - set(plan.assignments)
            raise ValueError(f"plan does not cover nodes: {sorted(missing)}")

        latencies: List[float] = []
        costs: List[float] = []
        energies: List[Dict[str, float]] = []
        routes: List[Dict[Tuple[str, str], float]] = []

        while len(latencies) < self._max:
            for _ in range(self._batch):
                lat, cost, energy, route = self._simulate_once(plan)
                latencies.append(lat)
                costs.append(cost)
                energies.append(energy)
                routes.append(route)
            if self._converged(latencies, costs):
                break

        return PlanProfile(
            latencies=np.asarray(latencies),
            costs=np.asarray(costs),
            exec_energy=energies,
            route_bytes=routes,
            carbon_model=self._carbon,
        )

    # -- internals -----------------------------------------------------------
    def _converged(self, *series: List[float]) -> bool:
        for values in series:
            arr = np.asarray(values)
            mean = arr.mean()
            if mean <= 0:
                continue
            rel_stderr = arr.std(ddof=1) / math.sqrt(len(arr)) / mean
            if rel_stderr >= self._cov:
                return False
        return True

    def _simulate_once(
        self, plan: DeploymentPlan
    ) -> Tuple[float, float, Dict[str, float], Dict[Tuple[str, str], float]]:
        """One simulation: returns (latency_s, cost_usd, {region: kWh},
        {(src_region, dst_region): bytes})."""
        dag = self._dag
        rng = self._rng
        kv_region = self._kv_region or plan.region_of(dag.start_node)

        # 1. Realise the conditional edges.
        edge_taken: Dict[Tuple[str, str], bool] = {}
        for edge in dag.edges:
            if edge.conditional:
                p = self._data.edge_probability(edge.src, edge.dst)
                edge_taken[(edge.src, edge.dst)] = bool(rng.random() < p)
            else:
                edge_taken[(edge.src, edge.dst)] = True

        # 2. Walk in topological order computing per-node finish times.
        executed: Dict[str, bool] = {}
        finish: Dict[str, float] = {}
        cost = 0.0
        energy: Dict[str, float] = {}
        route_bytes: Dict[Tuple[str, str], float] = {}

        def add_transfer(src: str, dst: str, size: float) -> None:
            route_bytes[(src, dst)] = route_bytes.get((src, dst), 0.0) + size

        home = self._kv_region if self._kv_region else plan.region_of(dag.start_node)
        for node in self._order:
            in_edges = dag.in_edges(node)
            if not in_edges:
                executed[node] = True
                # The end-user input arrives from the client near the
                # home region (§6.2); a shifted start node pays for it.
                start_region = plan.region_of(node)
                input_size = float(self._data.input_size_dist().sample(rng))
                arrival = self._latency.estimate(home, start_region, input_size)
                add_transfer(home, start_region, input_size)
                cost += self._cost.transmission_cost(home, start_region, input_size)
            else:
                taken_from = [
                    e
                    for e in in_edges
                    if executed.get(e.src, False) and edge_taken[(e.src, e.dst)]
                ]
                if not taken_from:
                    executed[node] = False
                    continue
                executed[node] = True
                is_sync = dag.is_sync_node(node)
                arrival = 0.0
                for e in taken_from:
                    src_region = plan.region_of(e.src)
                    dst_region = plan.region_of(node)
                    size = float(
                        self._data.edge_size_dist(e.src, e.dst).sample(rng)
                    )
                    if is_sync:
                        # Fan-in data is relayed through the KV store
                        # (Fig. 5): src -> KV region -> sync node.
                        hop1 = self._latency.estimate(src_region, kv_region, size)
                        hop2 = self._latency.estimate(kv_region, dst_region, size)
                        edge_latency = hop1 + hop2
                        add_transfer(src_region, kv_region, size)
                        add_transfer(kv_region, dst_region, size)
                        cost += self._cost.transmission_cost(
                            src_region, kv_region, size
                        )
                        cost += self._cost.transmission_cost(
                            kv_region, dst_region, size
                        )
                        # Annotation update + data write + data read.
                        cost += self._cost.kv_cost(kv_region, n_reads=1, n_writes=2)
                    else:
                        edge_latency = self._latency.estimate(
                            src_region, dst_region, size
                        )
                        add_transfer(src_region, dst_region, size)
                        cost += self._cost.transmission_cost(
                            src_region, dst_region, size
                        )
                    # One SNS publish per taken edge (§6.2).
                    cost += self._cost.messaging_cost(dst_region)
                    arrival = max(arrival, finish[e.src] + edge_latency)

            region = plan.region_of(node)
            duration = float(
                self._data.execution_time_dist(node, region).sample(rng)
            )
            # Fixed external data reads follow the node when it moves
            # (§9.1: external storage stays at the home region).
            ext_region, ext_bytes = self._data.node_external_bytes(node)
            if ext_region is not None and ext_bytes > 0:
                duration += self._latency.estimate(ext_region, region, ext_bytes)
                add_transfer(ext_region, region, ext_bytes)
                cost += self._cost.transmission_cost(ext_region, region, ext_bytes)

            finish[node] = arrival + duration
            memory = self._data.node_memory_mb(node)
            n_vcpu = self._data.node_vcpu(node)
            util = self._data.node_cpu_utilization(node)
            energy[region] = energy.get(region, 0.0) + (
                self._carbon.execution_energy_kwh(
                    duration_s=duration,
                    memory_mb=memory,
                    n_vcpu=n_vcpu,
                    cpu_total_time_s=duration * n_vcpu * util,
                )
                * self._carbon.pue
            )
            cost += self._cost.execution_cost(region, duration, memory)
            # Per-execution DP retrieval from the KV store (§6.2).
            cost += self._cost.kv_cost(kv_region, n_reads=1)

        latency = max(
            (finish[n] for n in finish if executed.get(n, False)), default=0.0
        )
        return latency, cost, energy, route_bytes
