"""Monte-Carlo end-to-end workflow estimation (paper §7.1).

Estimating the latency, cost, and carbon of a *conditional* DAG under a
candidate deployment plan is the solver's inner loop.  Following the
paper, each simulation:

1. samples each conditional edge's invocation from its historical
   probability to fix the realised partial DAG;
2. samples every executed node's execution time from its per-region
   historical distribution and every taken edge's payload size from its
   size distribution, yielding the critical path and end-to-end time;
3. prices the realised scenario in USD and gCO2eq (including framework
   overheads: SNS publishes per edge, KV accesses for plan retrieval and
   sync-node coordination, and the KV-store relay for fan-in data).

Batches of 200 simulations run "until reaching a low coefficient of
variation below 0.05 ... or until a maximum of 2,000 samples" (§7.1).
The CoV here is of the *mean estimator* (relative standard error), the
standard Monte-Carlo stopping rule — the raw sample CoV would never
converge for wide distributions.  The mean is the "average case" used
for plan ordering and the 95th percentile the "tail case" used for
tolerance checks (§7.1).

Determinism note (RNG stream discipline)
----------------------------------------
Each plan is simulated from its *own* derived substream: at
construction the estimator draws a single 63-bit salt from the
caller-supplied generator, and ``estimate_profile`` seeds a fresh
``numpy`` generator from ``derive_seed(salt, plan.digest())``.  Two
consequences the solver stack relies on:

* profiles are **order-independent** — concurrently solving hours (or a
  re-ordered cache-warming schedule) cannot perturb any plan's draws,
  so serial and parallel ``solve_day`` produce bit-identical plan sets;
* re-profiling the same plan on the same estimator reproduces the same
  result, which is what makes a digest-keyed profile cache semantically
  transparent (a hit equals a recompute).

Within one plan's profile run, randomness is consumed in *batch-major,
structure-minor* order.  For every batch of ``B`` simulations it draws,
in this exact sequence:

1. one uniform matrix ``rng.random((B, n_conditional_edges))`` realising
   every conditional edge for the whole batch (edges enumerated in
   ``dag.edges`` order);
2. the end-user input sizes, ``input_size_dist().sample_batch(rng, B)``;
3. for each node in (lexicographic) topological order: one
   ``sample_batch(rng, B)`` per incoming edge's payload-size
   distribution (in ``dag.in_edges`` order), then one
   ``sample_batch(rng, B)`` from the node's per-region execution-time
   distribution.

Payload and duration vectors are drawn for *every* edge and node, even
those a particular sample skips — bootstrap draws are i.i.d., so masking
unused values leaves the estimate's distribution unchanged.  Both the
vectorized kernel and the retained scalar reference path
(``vectorized=False``) consume this one stream and perform the same
arithmetic in the same order per element, so the two produce
bit-identical :class:`PlanProfile`\\ s (and therefore bit-identical
:class:`WorkflowEstimate`\\ s) from identical seeds — the property the
differential test in ``tests/test_montecarlo.py`` locks down.

Cross-plan batching (``estimate_profiles``)
-------------------------------------------
The solver's inner loop evaluates *many* candidate plans per hour, each
with a small batch size, so per-call numpy dispatch overhead dominates.
:meth:`MonteCarloEstimator.estimate_profiles` amortises it: every plan
still draws from its own digest-keyed substream in the canonical order
above (so each plan's randomness is exactly what a solo
``estimate_profile`` would have consumed), but the simulation arithmetic
runs once over a stacked ``(n_plans, batch)`` matrix with per-plan
pricing parameters broadcast as ``(n_plans, 1)`` columns.  Because every
element-wise operation is the same IEEE-754 operation the per-plan
kernel performs, the stacked kernel is bit-identical to per-plan
evaluation.  Convergence is masked per plan: a plan whose latency and
cost estimators hit the stopping rule leaves the active set and stops
consuming samples, while the rest continue — exactly the per-plan
stopping points of solo runs.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.common.rng import derive_seed
from repro.metrics.carbon import CarbonModel
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.model.dag import WorkflowDAG
from repro.model.plan import DeploymentPlan
from repro.obs.profile import profiled_phase

BATCH_SIZE = 200
MAX_SAMPLES = 2000
COV_THRESHOLD = 0.05


class WorkflowModelData(Protocol):
    """What the estimator needs to know about a workflow's behaviour.

    Implemented by the Metrics Manager (learned from logs) and by tests
    (hand-built fixtures).
    """

    def execution_time_dist(self, node: str, region: str) -> EmpiricalDistribution:
        """Execution-time distribution of ``node`` in ``region``.

        Implementations fall back to the home region's distribution when
        a region has no history (§7.1)."""
        ...

    def edge_probability(self, src: str, dst: str) -> float:
        """Observed invocation probability of the edge."""
        ...

    def edge_size_dist(self, src: str, dst: str) -> EmpiricalDistribution:
        """Payload-size distribution (bytes) across the edge."""
        ...

    def node_memory_mb(self, node: str) -> int:
        ...

    def node_vcpu(self, node: str) -> float:
        ...

    def node_cpu_utilization(self, node: str) -> float:
        """Average vCPU utilisation (from Lambda-Insights data)."""
        ...

    def node_external_bytes(self, node: str) -> Tuple[Optional[str], float]:
        """(region, bytes) of fixed external data the node reads, or
        ``(None, 0.0)``.  External services stay at/near the home region
        (§9.1 fairness rule 1), so moving the node moves this traffic."""
        ...

    def input_size_dist(self) -> EmpiricalDistribution:
        """Distribution of end-user input payload sizes.

        The invocation client sits at/near the home region (§6.2) — the
        estimator's ``client_region`` — so a plan that moves the start
        node pays this transfer cross-region; without it the solver
        would under-price offloading the entry stage of input-heavy
        workflows."""
        ...


class EstimatorStatsSink(Protocol):
    """Counter sink the estimator increments (see ``SolverStats``)."""

    simulations_run: int
    samples_drawn: int


@dataclass(frozen=True)
class WorkflowEstimate:
    """Estimator output for one (plan, hour) pair."""

    mean_latency_s: float
    tail_latency_s: float
    mean_cost_usd: float
    tail_cost_usd: float
    mean_carbon_g: float
    tail_carbon_g: float
    mean_exec_carbon_g: float
    mean_trans_carbon_g: float
    n_samples: int

    def metric(self, priority: str) -> float:
        """The scalar the solver orders plans by (§5.1)."""
        if priority == "carbon":
            return self.mean_carbon_g
        if priority == "cost":
            return self.mean_cost_usd
        if priority == "latency":
            return self.mean_latency_s
        raise ValueError(f"unknown priority {priority!r}")


@dataclass
class PlanProfile:
    """Hour-independent Monte-Carlo profile of one deployment plan.

    For a fixed plan, the only hour-dependent inputs are the grid
    intensities: execution carbon is ``sum_n E_n * I(region_n)`` and
    transmission carbon ``sum_routes S_route * mean(I_src, I_dst) * EF``
    (Eq. 7.1/7.5).  Latency and USD cost do not depend on the hour at
    all.  The profile therefore stores, per simulation sample, the
    energy aggregated per region and the bytes aggregated per route, so
    the 24 hourly evaluations of §5.1 can re-price a single simulation
    run exactly instead of re-running it.

    Attributes:
        latencies / costs: Per-sample end-to-end values.
        energy_by_region: ``{region: (n,) kWh vector}`` (PUE-adjusted).
        bytes_by_route: ``{(src_region, dst_region): (n,) byte vector}``.
            Routes a plan *could* use are always present; a sample that
            skipped a route simply holds 0 bytes there.
    """

    latencies: "np.ndarray"
    costs: "np.ndarray"
    energy_by_region: Dict[str, "np.ndarray"]
    bytes_by_route: Dict[Tuple[str, str], "np.ndarray"]
    carbon_model: CarbonModel

    @property
    def n_samples(self) -> int:
        return len(self.latencies)

    @property
    def exec_energy(self) -> List[Dict[str, float]]:
        """Back-compat per-sample view: ``[{region: kWh}, ...]``."""
        return [
            {
                region: float(arr[i])
                for region, arr in self.energy_by_region.items()
                if arr[i] != 0.0
            }
            for i in range(self.n_samples)
        ]

    @property
    def route_bytes(self) -> List[Dict[Tuple[str, str], float]]:
        """Back-compat per-sample view: ``[{route: bytes}, ...]``."""
        return [
            {
                route: float(arr[i])
                for route, arr in self.bytes_by_route.items()
                if arr[i] != 0.0
            }
            for i in range(self.n_samples)
        ]

    def carbon_samples(
        self, carbon_at: Callable[[str], float]
    ) -> "np.ndarray":
        """Per-sample total carbon under the given hourly intensities."""
        out = self._exec_carbon_samples(carbon_at)
        for (src, dst), sizes in self.bytes_by_route.items():
            route_intensity = (carbon_at(src) + carbon_at(dst)) / 2.0
            out = out + self.carbon_model.transmission_carbon_g_batch(
                route_intensity=route_intensity,
                size_bytes=sizes,
                intra_region=(src == dst),
            )
        return out

    def _exec_carbon_samples(
        self, carbon_at: Callable[[str], float]
    ) -> "np.ndarray":
        out = np.zeros(self.n_samples)
        for region, energy in self.energy_by_region.items():
            out = out + energy * carbon_at(region)
        return out

    def estimate_at(self, carbon_at: Callable[[str], float]) -> WorkflowEstimate:
        """Full :class:`WorkflowEstimate` under the given intensities."""
        carbon = self.carbon_samples(carbon_at)
        exec_only = self._exec_carbon_samples(carbon_at)
        return WorkflowEstimate(
            mean_latency_s=float(self.latencies.mean()),
            tail_latency_s=float(np.percentile(self.latencies, 95)),
            mean_cost_usd=float(self.costs.mean()),
            tail_cost_usd=float(np.percentile(self.costs, 95)),
            mean_carbon_g=float(carbon.mean()),
            tail_carbon_g=float(np.percentile(carbon, 95)),
            mean_exec_carbon_g=float(exec_only.mean()),
            mean_trans_carbon_g=float((carbon - exec_only).mean()),
            n_samples=self.n_samples,
        )


@dataclass
class _BatchDraws:
    """One batch worth of pre-drawn randomness (see determinism note)."""

    n: int
    cond: Dict[Tuple[str, str], "np.ndarray"]  # uniforms, conditional edges
    input_sizes: "np.ndarray"
    edge_sizes: Dict[Tuple[str, str], "np.ndarray"]
    exec_times: Dict[str, "np.ndarray"]


class _BatchAccumulators:
    """Per-batch result arrays shared by both simulation kernels.

    Energy/route keys are pre-registered from the plan's static pricing
    schedule (every region and route the plan *could* touch, in
    processing order) so both kernels accumulate — and later sum — in
    exactly the same key order, which the bit-identity guarantee needs.
    """

    def __init__(self, n: int):
        self.n = n
        self.latency = np.zeros(n)
        self.cost = np.zeros(n)
        self.energy: Dict[str, np.ndarray] = {}
        self.route_bytes: Dict[Tuple[str, str], np.ndarray] = {}

    def touch_energy(self, region: str) -> None:
        if region not in self.energy:
            self.energy[region] = np.zeros(self.n)

    def touch_route(self, src: str, dst: str) -> None:
        if (src, dst) not in self.route_bytes:
            self.route_bytes[(src, dst)] = np.zeros(self.n)

    def window(self, lo: int, hi: int) -> "_BatchAccumulators":
        """A view of samples ``[lo, hi)`` sharing this accumulator's
        storage.  The kernels write batches through these views, so a
        profile run fills one preallocated buffer incrementally instead
        of concatenating per-batch arrays (which made every convergence
        check O(total samples so far)).
        """
        view = _BatchAccumulators.__new__(_BatchAccumulators)
        view.n = hi - lo
        view.latency = self.latency[lo:hi]
        view.cost = self.cost[lo:hi]
        view.energy = {k: v[lo:hi] for k, v in self.energy.items()}
        view.route_bytes = {k: v[lo:hi] for k, v in self.route_bytes.items()}
        return view


class MonteCarloEstimator:
    """Estimates end-to-end workflow metrics for a deployment plan."""

    def __init__(
        self,
        dag: WorkflowDAG,
        data: WorkflowModelData,
        carbon_model: CarbonModel,
        cost_model: CostModel,
        latency_model: TransferLatencyModel,
        rng: np.random.Generator,
        kv_region: Optional[str] = None,
        client_region: Optional[str] = None,
        batch_size: int = BATCH_SIZE,
        max_samples: int = MAX_SAMPLES,
        cov_threshold: float = COV_THRESHOLD,
        vectorized: bool = True,
        stats: Optional[EstimatorStatsSink] = None,
    ):
        """Args:
        dag: The workflow structure.
        data: Learned behaviour (distributions, probabilities).
        carbon_model / cost_model / latency_model: Pricing models.
        rng: Random stream (callers pass a solver-owned stream).
        kv_region: Region hosting the distributed KV store; sync-node
            intermediate data is relayed through it (§4 / Fig. 5).
            Defaults to the plan's start-node region per evaluation.
        client_region: Region the invocation client sits at/near (§6.2)
            — the source of the end-user input transfer.  The
            :class:`~repro.core.solver.evaluation.PlanEvaluator` threads
            the workflow home region here; when ``None`` the estimator
            falls back to ``kv_region`` and then to the plan's
            start-node region (so a shifted start node would be priced
            as free input transfer — a ``UserWarning`` is emitted at
            construction; pass it explicitly).
        batch_size / max_samples / cov_threshold: Stopping rule knobs
            (paper defaults: 200 / 2000 / 0.05).
        vectorized: Use the numpy-batched kernel (default).  ``False``
            selects the retained scalar reference path, kept for
            differential testing and the throughput benchmark.
        stats: Optional counter sink (``SolverStats``); the estimator
            increments ``simulations_run`` and ``samples_drawn``.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        if client_region is None:
            warnings.warn(
                "MonteCarloEstimator constructed without client_region: the "
                "end-user input transfer will be priced from the KV region "
                "or the plan's start-node region, so a plan that shifts the "
                "start node gets its input transfer under-priced (or free). "
                "Pass the workflow home region explicitly.",
                UserWarning,
                stacklevel=2,
            )
        self._dag = dag
        self._data = data
        self._carbon = carbon_model
        self._cost = cost_model
        self._latency = latency_model
        self._rng = rng
        # One salt drawn up front; every plan's draws come from a fresh
        # substream keyed by (salt, plan digest) — see the module
        # docstring's determinism note.
        self._plan_salt = int(rng.integers(0, 2**63 - 1))
        self._kv_region = kv_region
        self._client_region = client_region
        self._batch = batch_size
        self._max = max_samples
        self._cov = cov_threshold
        self._vectorized = vectorized
        self._stats = stats
        self._order = dag.topological_order()

    def estimate(
        self,
        plan: DeploymentPlan,
        carbon_at: Callable[[str], float],
    ) -> WorkflowEstimate:
        """Run simulations until the stopping rule fires.

        Args:
            plan: Candidate deployment plan covering every DAG node.
            carbon_at: ``region -> gCO2eq/kWh`` at the hour under
                evaluation (actual or forecast intensity).
        """
        return self.estimate_profile(plan).estimate_at(carbon_at)

    def estimate_profile(self, plan: DeploymentPlan) -> PlanProfile:
        """Run the Monte-Carlo simulation collecting an hour-independent
        :class:`PlanProfile` (see its docstring).  The stopping rule is
        applied to the latency and cost estimators, since carbon is a
        deterministic re-pricing of the collected energy/byte vectors.

        Results accumulate into one preallocated ``max_samples`` buffer
        through slice views, so each convergence check reads a
        contiguous prefix instead of re-concatenating every batch
        (previously O(n²) across the run).  The final batch is clamped
        to the remaining budget, so the sample cap is honoured exactly
        even when ``batch_size`` does not divide ``max_samples``.
        """
        self._check_coverage(plan)
        rng = self.plan_rng(plan)
        full = self._make_accumulators(plan, self._max)
        n_total = 0
        with profiled_phase("mc.estimate_profile"):
            while n_total < self._max:
                n = min(self._batch, self._max - n_total)
                draws = self._draw_batch(plan, n, rng)
                window = full.window(n_total, n_total + n)
                if self._vectorized:
                    self._simulate_batch(plan, draws, window)
                else:
                    self._simulate_batch_reference(plan, draws, window)
                n_total += n
                if self._converged(
                    full.latency[:n_total], full.cost[:n_total]
                ):
                    break

        self._bump_stats(simulations=1, samples=n_total)
        return self._profile_from(full, n_total)

    def estimate_profiles(
        self, plans: Sequence[DeploymentPlan]
    ) -> List[PlanProfile]:
        """Profile many candidate plans through one stacked kernel.

        Each plan draws from its own digest-keyed substream in the
        canonical order, so results are bit-identical to per-plan
        :meth:`estimate_profile` calls (the differential tests lock this
        down); the simulation arithmetic runs once per wave over a
        ``(n_active_plans, batch)`` matrix.  Convergence is masked per
        plan: a converged plan leaves the active set and stops drawing.

        Duplicate plans (same digest) are simulated once and share the
        resulting profile object.  With ``vectorized=False`` this falls
        back to per-plan scalar-reference runs — same results, kept for
        differential testing.
        """
        if not plans:
            return []
        for plan in plans:
            self._check_coverage(plan)
        if not self._vectorized:
            return [self.estimate_profile(p) for p in plans]
        unique: Dict[str, DeploymentPlan] = {}
        for plan in plans:
            unique.setdefault(plan.digest(), plan)
        uniq_plans = list(unique.values())
        if len(uniq_plans) == 1:
            profiles = [self.estimate_profile(uniq_plans[0])]
        else:
            profiles = self._estimate_profiles_stacked(uniq_plans)
        by_digest = dict(zip(unique.keys(), profiles))
        return [by_digest[plan.digest()] for plan in plans]

    # -- internals -----------------------------------------------------------
    def _check_coverage(self, plan: DeploymentPlan) -> None:
        if not plan.covers(self._dag):
            missing = set(self._dag.node_names) - set(plan.assignments)
            raise ValueError(f"plan does not cover nodes: {sorted(missing)}")

    def _bump_stats(self, simulations: int, samples: int) -> None:
        if self._stats is None:
            return
        # ``bump`` (SolverStats) is lock-guarded for parallel hour
        # workers; plain attribute sinks keep working single-threaded.
        bump = getattr(self._stats, "bump", None)
        if bump is not None:
            bump(simulations_run=simulations, samples_drawn=samples)
        else:
            self._stats.simulations_run += simulations
            self._stats.samples_drawn += samples

    def _profile_from(self, full: _BatchAccumulators, n: int) -> PlanProfile:
        return PlanProfile(
            latencies=full.latency[:n].copy(),
            costs=full.cost[:n].copy(),
            energy_by_region={
                region: arr[:n].copy() for region, arr in full.energy.items()
            },
            bytes_by_route={
                route: arr[:n].copy()
                for route, arr in full.route_bytes.items()
            },
            carbon_model=self._carbon,
        )

    def _estimate_profiles_stacked(
        self, plans: List[DeploymentPlan]
    ) -> List[PlanProfile]:
        """The cross-plan driver: lockstep waves over the active set.

        All active plans have always drawn the same number of samples,
        so one wave draws a uniform ``n`` per plan, stacks the draws
        into ``(n_active, n)`` matrices, runs the stacked kernel once,
        and re-checks each plan's stopping rule on its own prefix.
        Substreams are independent, so a plan's exit never perturbs the
        draws of the plans that continue.
        """
        n_plans = len(plans)
        rngs = [self.plan_rng(p) for p in plans]
        fulls = [self._make_accumulators(p, self._max) for p in plans]
        totals = [0] * n_plans
        active = list(range(n_plans))
        n_filled = 0
        with profiled_phase("mc.estimate_profiles"):
            while active and n_filled < self._max:
                n = min(self._batch, self._max - n_filled)
                per_plan = [
                    self._draw_batch(plans[i], n, rngs[i]) for i in active
                ]
                stacked = self._stack_draws(per_plan)
                windows = [
                    fulls[i].window(n_filled, n_filled + n) for i in active
                ]
                self._simulate_batch_stacked(
                    [plans[i] for i in active], stacked, windows
                )
                n_filled += n
                still_active = []
                for i in active:
                    totals[i] = n_filled
                    if n_filled < self._max and not self._converged(
                        fulls[i].latency[:n_filled], fulls[i].cost[:n_filled]
                    ):
                        still_active.append(i)
                active = still_active

        self._bump_stats(simulations=n_plans, samples=sum(totals))
        return [
            self._profile_from(fulls[i], totals[i]) for i in range(n_plans)
        ]
    def _converged(self, *series: "np.ndarray") -> bool:
        """Relative-standard-error stopping rule, with the degenerate
        cases handled explicitly:

        * fewer than two samples: never converged (``std(ddof=1)`` of a
          single sample is NaN, which would silently compare False);
        * exactly zero variance: converged — the series is
          deterministic, whatever its mean (including 0, e.g. a cost
          series under all-free pricing);
        * non-positive mean with spread: *not* converged — a relative
          error is meaningless there, so sampling continues to the cap
          rather than stopping blind.
        """
        for values in series:
            arr = np.asarray(values)
            if arr.size < 2:
                return False
            std = arr.std(ddof=1)
            if std == 0.0:
                continue
            mean = arr.mean()
            if mean <= 0:
                return False
            if std / math.sqrt(arr.size) / mean >= self._cov:
                return False
        return True

    def _client_and_kv(self, plan: DeploymentPlan) -> Tuple[str, str]:
        """Resolve the client and KV regions for one evaluation."""
        kv = self._kv_region or plan.region_of(self._dag.start_node)
        client = self._client_region or kv
        return client, kv

    def plan_rng(self, plan: DeploymentPlan) -> np.random.Generator:
        """The plan's dedicated substream (fresh generator each call)."""
        return np.random.default_rng(
            derive_seed(self._plan_salt, plan.digest())
        )

    def _draw_batch(
        self, plan: DeploymentPlan, n: int, rng: np.random.Generator
    ) -> _BatchDraws:
        """Draw one batch of randomness in the canonical order (see the
        determinism note in the module docstring)."""
        dag = self._dag
        cond: Dict[Tuple[str, str], np.ndarray] = {}
        cond_edges = [e for e in dag.edges if e.conditional]
        if cond_edges:
            uniforms = rng.random((n, len(cond_edges)))
            for j, e in enumerate(cond_edges):
                cond[(e.src, e.dst)] = uniforms[:, j]
        input_sizes = self._data.input_size_dist().sample_batch(rng, n)
        edge_sizes: Dict[Tuple[str, str], np.ndarray] = {}
        exec_times: Dict[str, np.ndarray] = {}
        for node in self._order:
            for e in dag.in_edges(node):
                edge_sizes[(e.src, e.dst)] = self._data.edge_size_dist(
                    e.src, e.dst
                ).sample_batch(rng, n)
            region = plan.region_of(node)
            exec_times[node] = self._data.execution_time_dist(
                node, region
            ).sample_batch(rng, n)
        return _BatchDraws(
            n=n,
            cond=cond,
            input_sizes=input_sizes,
            edge_sizes=edge_sizes,
            exec_times=exec_times,
        )

    def _make_accumulators(
        self, plan: DeploymentPlan, n: int
    ) -> _BatchAccumulators:
        """Pre-register every energy region and byte route the plan can
        touch, in processing order, so both kernels share key order."""
        dag = self._dag
        client, kv = self._client_and_kv(plan)
        acc = _BatchAccumulators(n)
        for node in self._order:
            region = plan.region_of(node)
            in_edges = dag.in_edges(node)
            if not in_edges:
                acc.touch_route(client, region)
            else:
                is_sync = dag.is_sync_node(node)
                for e in in_edges:
                    src_region = plan.region_of(e.src)
                    if is_sync:
                        acc.touch_route(src_region, kv)
                        acc.touch_route(kv, region)
                    else:
                        acc.touch_route(src_region, region)
            ext_region, ext_bytes = self._data.node_external_bytes(node)
            if ext_region is not None and ext_bytes > 0:
                acc.touch_route(ext_region, region)
            acc.touch_energy(region)
        return acc

    def _edge_taken(
        self, draws: _BatchDraws
    ) -> Dict[Tuple[str, str], "np.ndarray"]:
        """Realise every edge for the whole batch: ``(n,)`` bool masks."""
        taken: Dict[Tuple[str, str], np.ndarray] = {}
        always = np.ones(draws.n, dtype=bool)
        for e in self._dag.edges:
            if e.conditional:
                p = self._data.edge_probability(e.src, e.dst)
                taken[(e.src, e.dst)] = draws.cond[(e.src, e.dst)] < p
            else:
                taken[(e.src, e.dst)] = always
        return taken

    def _simulate_batch(
        self, plan: DeploymentPlan, draws: _BatchDraws, acc: _BatchAccumulators
    ) -> None:
        """The vectorized kernel: one topological walk prices the whole
        batch with ``(n,)`` array ops instead of ``n`` Python walks."""
        dag = self._dag
        n = draws.n
        client, kv_region = self._client_and_kv(plan)
        taken = self._edge_taken(draws)

        executed: Dict[str, np.ndarray] = {}
        finish: Dict[str, np.ndarray] = {}
        cost = acc.cost

        for node in self._order:
            in_edges = dag.in_edges(node)
            region = plan.region_of(node)
            if not in_edges:
                exec_mask = np.ones(n, dtype=bool)
                # The end-user input arrives from the client near the
                # home region (§6.2); a shifted start node pays for it.
                sizes = draws.input_sizes
                arrival = self._latency.estimate_batch(client, region, sizes)
                acc.route_bytes[(client, region)] += sizes
                cost += self._cost.transmission_cost_batch(client, region, sizes)
            else:
                is_sync = dag.is_sync_node(node)
                exec_mask = np.zeros(n, dtype=bool)
                arrival = np.zeros(n)
                for e in in_edges:
                    active = taken[(e.src, e.dst)] & executed[e.src]
                    if not active.any():
                        continue
                    src_region = plan.region_of(e.src)
                    sizes = draws.edge_sizes[(e.src, e.dst)]
                    masked_sizes = np.where(active, sizes, 0.0)
                    if is_sync:
                        # Fan-in data is relayed through the KV store
                        # (Fig. 5): src -> KV region -> sync node.
                        hop1 = self._latency.estimate_batch(
                            src_region, kv_region, sizes
                        )
                        hop2 = self._latency.estimate_batch(
                            kv_region, region, sizes
                        )
                        edge_latency = hop1 + hop2
                        acc.route_bytes[(src_region, kv_region)] += masked_sizes
                        acc.route_bytes[(kv_region, region)] += masked_sizes
                        cost += np.where(
                            active,
                            self._cost.transmission_cost_batch(
                                src_region, kv_region, sizes
                            ),
                            0.0,
                        )
                        cost += np.where(
                            active,
                            self._cost.transmission_cost_batch(
                                kv_region, region, sizes
                            ),
                            0.0,
                        )
                        # Annotation update + data write + data read.
                        cost += np.where(
                            active,
                            self._cost.kv_cost(kv_region, n_reads=1, n_writes=2),
                            0.0,
                        )
                    else:
                        edge_latency = self._latency.estimate_batch(
                            src_region, region, sizes
                        )
                        acc.route_bytes[(src_region, region)] += masked_sizes
                        cost += np.where(
                            active,
                            self._cost.transmission_cost_batch(
                                src_region, region, sizes
                            ),
                            0.0,
                        )
                    # One SNS publish per taken edge (§6.2).
                    cost += np.where(
                        active, self._cost.messaging_cost(region), 0.0
                    )
                    arrival = np.where(
                        active,
                        np.maximum(arrival, finish[e.src] + edge_latency),
                        arrival,
                    )
                    exec_mask = exec_mask | active

            durations = draws.exec_times[node]
            # Fixed external data reads follow the node when it moves
            # (§9.1: external storage stays at the home region).
            ext_region, ext_bytes = self._data.node_external_bytes(node)
            if ext_region is not None and ext_bytes > 0:
                durations = durations + self._latency.estimate(
                    ext_region, region, ext_bytes
                )
                acc.route_bytes[(ext_region, region)] += np.where(
                    exec_mask, ext_bytes, 0.0
                )
                cost += np.where(
                    exec_mask,
                    self._cost.transmission_cost(ext_region, region, ext_bytes),
                    0.0,
                )

            finish[node] = arrival + durations
            executed[node] = exec_mask
            memory = self._data.node_memory_mb(node)
            n_vcpu = self._data.node_vcpu(node)
            util = self._data.node_cpu_utilization(node)
            energy = (
                self._carbon.execution_energy_kwh_batch(
                    durations_s=durations,
                    memory_mb=memory,
                    n_vcpu=n_vcpu,
                    cpu_total_times_s=durations * n_vcpu * util,
                )
                * self._carbon.pue
            )
            acc.energy[region] += np.where(exec_mask, energy, 0.0)
            cost += np.where(
                exec_mask,
                self._cost.execution_cost_batch(region, durations, memory),
                0.0,
            )
            # Per-execution DP retrieval from the KV store (§6.2).
            cost += np.where(
                exec_mask, self._cost.kv_cost(kv_region, n_reads=1), 0.0
            )

        latency = np.full(n, -np.inf)
        for node in self._order:
            latency = np.where(
                executed[node], np.maximum(latency, finish[node]), latency
            )
        acc.latency[:] = np.where(np.isfinite(latency), latency, 0.0)

    @staticmethod
    def _stack_draws(per_plan: List[_BatchDraws]) -> _BatchDraws:
        """Stack per-plan ``(n,)`` draw vectors into ``(n_plans, n)``
        matrices (row order = plan order).  Reuses :class:`_BatchDraws`
        as the container; only the stacked kernel consumes it."""
        first = per_plan[0]
        return _BatchDraws(
            n=first.n,
            cond={
                key: np.stack([d.cond[key] for d in per_plan])
                for key in first.cond
            },
            input_sizes=np.stack([d.input_sizes for d in per_plan]),
            edge_sizes={
                key: np.stack([d.edge_sizes[key] for d in per_plan])
                for key in first.edge_sizes
            },
            exec_times={
                key: np.stack([d.exec_times[key] for d in per_plan])
                for key in first.exec_times
            },
        )

    def _simulate_batch_stacked(
        self,
        plans: List[DeploymentPlan],
        draws: _BatchDraws,
        accs: List[_BatchAccumulators],
    ) -> None:
        """The cross-plan kernel: one topological walk prices a whole
        wave with ``(n_plans, n)`` matrix ops.

        This mirrors :meth:`_simulate_batch` operation-for-operation;
        per-plan pricing parameters enter as ``(n_plans, 1)`` columns
        (built from the *same scalar lookups* the per-plan kernel uses),
        so broadcasting performs the identical IEEE-754 operation on
        every element and each row is bit-identical to a solo run.  Rows
        whose edge mask is all-False still flow through the arithmetic —
        they only ever add zeros, which is exactly what the per-plan
        kernel's short-circuit skips.
        """
        dag = self._dag
        n_plans, n = len(plans), draws.n
        resolved = [self._client_and_kv(p) for p in plans]
        clients = [client for client, _ in resolved]
        kv_regions = [kv for _, kv in resolved]

        taken: Dict[Tuple[str, str], np.ndarray] = {}
        always = np.ones((n_plans, n), dtype=bool)
        for e in dag.edges:
            if e.conditional:
                p_taken = self._data.edge_probability(e.src, e.dst)
                taken[(e.src, e.dst)] = draws.cond[(e.src, e.dst)] < p_taken
            else:
                taken[(e.src, e.dst)] = always

        executed: Dict[str, np.ndarray] = {}
        finish: Dict[str, np.ndarray] = {}
        cost = np.zeros((n_plans, n))

        for node in self._order:
            in_edges = dag.in_edges(node)
            regions = [p.region_of(node) for p in plans]
            if not in_edges:
                exec_mask = np.ones((n_plans, n), dtype=bool)
                sizes = draws.input_sizes
                routes = list(zip(clients, regions))
                arrival = self._latency.estimate_stacked(routes, sizes)
                for row, route in enumerate(routes):
                    accs[row].route_bytes[route] += sizes[row]
                cost += self._cost.transmission_cost_stacked(routes, sizes)
            else:
                is_sync = dag.is_sync_node(node)
                exec_mask = np.zeros((n_plans, n), dtype=bool)
                arrival = np.zeros((n_plans, n))
                for e in in_edges:
                    active = taken[(e.src, e.dst)] & executed[e.src]
                    if not active.any():
                        continue
                    src_regions = [p.region_of(e.src) for p in plans]
                    sizes = draws.edge_sizes[(e.src, e.dst)]
                    masked_sizes = np.where(active, sizes, 0.0)
                    if is_sync:
                        in_routes = list(zip(src_regions, kv_regions))
                        out_routes = list(zip(kv_regions, regions))
                        hop1 = self._latency.estimate_stacked(in_routes, sizes)
                        hop2 = self._latency.estimate_stacked(out_routes, sizes)
                        edge_latency = hop1 + hop2
                        for row in range(n_plans):
                            accs[row].route_bytes[in_routes[row]] += (
                                masked_sizes[row]
                            )
                            accs[row].route_bytes[out_routes[row]] += (
                                masked_sizes[row]
                            )
                        cost += np.where(
                            active,
                            self._cost.transmission_cost_stacked(
                                in_routes, sizes
                            ),
                            0.0,
                        )
                        cost += np.where(
                            active,
                            self._cost.transmission_cost_stacked(
                                out_routes, sizes
                            ),
                            0.0,
                        )
                        cost += np.where(
                            active,
                            self._cost.kv_cost_column(
                                kv_regions, n_reads=1, n_writes=2
                            ),
                            0.0,
                        )
                    else:
                        routes = list(zip(src_regions, regions))
                        edge_latency = self._latency.estimate_stacked(
                            routes, sizes
                        )
                        for row, route in enumerate(routes):
                            accs[row].route_bytes[route] += masked_sizes[row]
                        cost += np.where(
                            active,
                            self._cost.transmission_cost_stacked(routes, sizes),
                            0.0,
                        )
                    cost += np.where(
                        active, self._cost.messaging_cost_column(regions), 0.0
                    )
                    arrival = np.where(
                        active,
                        np.maximum(arrival, finish[e.src] + edge_latency),
                        arrival,
                    )
                    exec_mask = exec_mask | active

            durations = draws.exec_times[node]
            ext_region, ext_bytes = self._data.node_external_bytes(node)
            if ext_region is not None and ext_bytes > 0:
                ext_latency = np.array(
                    [
                        self._latency.estimate(ext_region, region, ext_bytes)
                        for region in regions
                    ]
                )[:, None]
                durations = durations + ext_latency
                ext_added = np.where(exec_mask, ext_bytes, 0.0)
                ext_cost = np.array(
                    [
                        self._cost.transmission_cost(
                            ext_region, region, ext_bytes
                        )
                        for region in regions
                    ]
                )[:, None]
                for row, region in enumerate(regions):
                    accs[row].route_bytes[(ext_region, region)] += (
                        ext_added[row]
                    )
                cost += np.where(exec_mask, ext_cost, 0.0)

            finish[node] = arrival + durations
            executed[node] = exec_mask
            memory = self._data.node_memory_mb(node)
            n_vcpu = self._data.node_vcpu(node)
            util = self._data.node_cpu_utilization(node)
            energy = (
                self._carbon.execution_energy_kwh_batch(
                    durations_s=durations,
                    memory_mb=memory,
                    n_vcpu=n_vcpu,
                    cpu_total_times_s=durations * n_vcpu * util,
                )
                * self._carbon.pue
            )
            masked_energy = np.where(exec_mask, energy, 0.0)
            for row, region in enumerate(regions):
                accs[row].energy[region] += masked_energy[row]
            cost += np.where(
                exec_mask,
                self._cost.execution_cost_stacked(regions, durations, memory),
                0.0,
            )
            cost += np.where(
                exec_mask,
                self._cost.kv_cost_column(kv_regions, n_reads=1),
                0.0,
            )

        latency = np.full((n_plans, n), -np.inf)
        for node in self._order:
            latency = np.where(
                executed[node], np.maximum(latency, finish[node]), latency
            )
        final = np.where(np.isfinite(latency), latency, 0.0)
        for row in range(n_plans):
            accs[row].latency[:] = final[row]
            accs[row].cost[:] = cost[row]

    def _simulate_batch_reference(
        self, plan: DeploymentPlan, draws: _BatchDraws, acc: _BatchAccumulators
    ) -> None:
        """The scalar reference path: walks the DAG one sample at a time
        exactly like the pre-vectorization ``_simulate_once``, but reads
        the shared pre-drawn batch so it stays bit-comparable to the
        vectorized kernel.  Kept for differential testing and as the
        baseline of ``benchmarks/test_estimator_throughput.py``."""
        dag = self._dag
        client, kv_region = self._client_and_kv(plan)
        edge_prob = {
            (e.src, e.dst): self._data.edge_probability(e.src, e.dst)
            for e in dag.edges
            if e.conditional
        }
        for i in range(draws.n):
            self._simulate_once(plan, draws, i, acc, client, kv_region, edge_prob)

    def _simulate_once(
        self,
        plan: DeploymentPlan,
        draws: _BatchDraws,
        i: int,
        acc: _BatchAccumulators,
        client: str,
        kv_region: str,
        edge_prob: Dict[Tuple[str, str], float],
    ) -> None:
        """One scalar simulation, writing sample ``i`` of the batch."""
        dag = self._dag

        # 1. Realise the conditional edges.
        edge_taken: Dict[Tuple[str, str], bool] = {}
        for edge in dag.edges:
            if edge.conditional:
                u = float(draws.cond[(edge.src, edge.dst)][i])
                edge_taken[(edge.src, edge.dst)] = u < edge_prob[
                    (edge.src, edge.dst)
                ]
            else:
                edge_taken[(edge.src, edge.dst)] = True

        # 2. Walk in topological order computing per-node finish times.
        executed: Dict[str, bool] = {}
        finish: Dict[str, float] = {}
        cost = 0.0

        for node in self._order:
            in_edges = dag.in_edges(node)
            region = plan.region_of(node)
            if not in_edges:
                executed[node] = True
                input_size = float(draws.input_sizes[i])
                arrival = self._latency.estimate(client, region, input_size)
                acc.route_bytes[(client, region)][i] += input_size
                cost += self._cost.transmission_cost(client, region, input_size)
            else:
                taken_from = [
                    e
                    for e in in_edges
                    if executed.get(e.src, False) and edge_taken[(e.src, e.dst)]
                ]
                if not taken_from:
                    executed[node] = False
                    continue
                executed[node] = True
                is_sync = dag.is_sync_node(node)
                arrival = 0.0
                for e in taken_from:
                    src_region = plan.region_of(e.src)
                    size = float(draws.edge_sizes[(e.src, e.dst)][i])
                    if is_sync:
                        hop1 = self._latency.estimate(src_region, kv_region, size)
                        hop2 = self._latency.estimate(kv_region, region, size)
                        edge_latency = hop1 + hop2
                        acc.route_bytes[(src_region, kv_region)][i] += size
                        acc.route_bytes[(kv_region, region)][i] += size
                        cost += self._cost.transmission_cost(
                            src_region, kv_region, size
                        )
                        cost += self._cost.transmission_cost(
                            kv_region, region, size
                        )
                        cost += self._cost.kv_cost(kv_region, n_reads=1, n_writes=2)
                    else:
                        edge_latency = self._latency.estimate(
                            src_region, region, size
                        )
                        acc.route_bytes[(src_region, region)][i] += size
                        cost += self._cost.transmission_cost(
                            src_region, region, size
                        )
                    cost += self._cost.messaging_cost(region)
                    arrival = max(arrival, finish[e.src] + edge_latency)

            duration = float(draws.exec_times[node][i])
            ext_region, ext_bytes = self._data.node_external_bytes(node)
            if ext_region is not None and ext_bytes > 0:
                duration = duration + self._latency.estimate(
                    ext_region, region, ext_bytes
                )
                acc.route_bytes[(ext_region, region)][i] += ext_bytes
                cost += self._cost.transmission_cost(ext_region, region, ext_bytes)

            finish[node] = arrival + duration
            memory = self._data.node_memory_mb(node)
            n_vcpu = self._data.node_vcpu(node)
            util = self._data.node_cpu_utilization(node)
            acc.energy[region][i] += (
                self._carbon.execution_energy_kwh(
                    duration_s=duration,
                    memory_mb=memory,
                    n_vcpu=n_vcpu,
                    cpu_total_time_s=duration * n_vcpu * util,
                )
                * self._carbon.pue
            )
            cost += self._cost.execution_cost(region, duration, memory)
            cost += self._cost.kv_cost(kv_region, n_reads=1)

        acc.latency[i] = max(
            (finish[n] for n in finish if executed.get(n, False)), default=0.0
        )
        acc.cost[i] = cost
