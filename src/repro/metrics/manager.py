"""The Metrics Manager (MM) component (paper §7.2, Fig. 4).

Responsibilities reproduced from the paper:

* **Learning from past invocations** — logs from all function executions
  are aggregated per workflow invocation.  The MM keeps "at most ... the
  5,000 latest workflow executions" within a 30-day window; beyond the
  cap it "starts selectively forgetting the oldest invocations: only
  invocations representing DAG information (e.g., region-to-region
  latency) not present in new data are maintained, and others are
  removed in a FIFO manner".
* **Insights telemetry** — per-function average vCPU utilisation comes
  from the runtime's ``cpu_total_time`` (Lambda Insights substitute).
* **External data** — carbon intensity, prices, and RTT estimates are
  pulled from the synthetic sources.
* **Forecasting** — daily Holt-Winters fits over the previous week's
  hourly carbon produce the intensities used for future-hour plans.

The MM also implements the :class:`~repro.metrics.montecarlo.WorkflowModelData`
protocol, making it directly consumable by the Monte-Carlo estimator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.ledger import ExecutionRecord, MeteringLedger, TransmissionRecord
from repro.common.clock import SECONDS_PER_DAY
from repro.data.carbon import CarbonIntensitySource
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.forecast import HoltWintersForecaster
from repro.model.config import WorkflowConfig
from repro.model.dag import WorkflowDAG

#: Retention limits from §7.2.
MAX_INVOCATIONS = 5000
RETENTION_DAYS = 30


@dataclass
class InvocationSummary:
    """Everything the MM retains about one workflow invocation."""

    request_id: str
    first_start_s: float
    # node -> (region, duration_s)
    node_executions: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    # (src, dst) -> (src_region, dst_region, size_bytes)
    edge_transfers: Dict[Tuple[str, str], Tuple[str, str, float]] = field(
        default_factory=dict
    )
    # End-user input payload size (client -> start node), if observed.
    input_bytes: Optional[float] = None

    def info_keys(self) -> List[Tuple]:
        """The "DAG information" keys this invocation represents:
        (node, region) execution pairs and (src_region, dst_region)
        latency pairs (§7.2's selective-forgetting criterion)."""
        keys: List[Tuple] = [
            ("exec", node, region)
            for node, (region, _dur) in self.node_executions.items()
        ]
        keys += [
            ("route", src_region, dst_region)
            for (_s, _d), (src_region, dst_region, _size) in self.edge_transfers.items()
        ]
        return keys


class CarbonForecastProvider:
    """Holt-Winters forecasts per grid region, refit daily (§7.2)."""

    def __init__(self, carbon_source: CarbonIntensitySource):
        self._source = carbon_source
        self._forecasters: Dict[str, HoltWintersForecaster] = {}
        self._fit_hour: Dict[str, int] = {}
        #: Bumped on every successful refit; consumers holding derived
        #: state (e.g. the solver's EvaluationCache) compare it to
        #: detect that forecast-priced values went stale.
        self.version = 0

    def refit(self, region: str, now_hour: int) -> bool:
        """Fit on the previous week of hourly data ending at ``now_hour``.

        Returns False (leaving any previous fit in place) when less than
        a week of history exists yet.
        """
        if now_hour < 24 * 7:
            return False
        history = [
            self._source.intensity_at_hour(region, h)
            for h in range(now_hour - 24 * 7, now_hour)
        ]
        forecaster = HoltWintersForecaster()
        forecaster.fit(history)
        self._forecasters[region] = forecaster
        self._fit_hour[region] = now_hour
        self.version += 1
        return True

    def maybe_refit(self, region: str, now_hour: int) -> bool:
        """Refit only when the existing fit is from an earlier day.

        The dedup that makes one provider shareable across a fleet: 200
        Deployment Managers each request a daily refit, but the grid
        search behind :class:`~repro.metrics.forecast.HoltWintersForecaster`
        is the expensive part of a check cycle, and for a given region
        and day every manager would fit the *same* week of history.  The
        first caller of the day pays; the rest see a same-day fit and
        return immediately.
        """
        fit_hour = self._fit_hour.get(region)
        if fit_hour is not None and fit_hour // 24 == now_hour // 24:
            return False
        return self.refit(region, now_hour)

    def forecast_at(self, region: str, hour: int) -> float:
        """Forecast intensity for absolute ``hour``.

        Requires a prior :meth:`refit`; hours at/before the fit point
        return the actual value (they are known history).
        """
        if region not in self._forecasters:
            raise RuntimeError(f"no forecast fitted for region {region}")
        fit_hour = self._fit_hour[region]
        if hour < fit_hour:
            return self._source.intensity_at_hour(region, hour)
        horizon = hour - fit_hour + 1
        return float(self._forecasters[region].forecast(horizon)[-1])

    def has_forecast(self, region: str) -> bool:
        return region in self._forecasters


class MetricsManager:
    """Aggregates telemetry for one workflow and serves model data."""

    def __init__(
        self,
        dag: WorkflowDAG,
        config: WorkflowConfig,
        ledger: MeteringLedger,
        carbon_source: CarbonIntensitySource,
        max_invocations: int = MAX_INVOCATIONS,
        retention_days: int = RETENTION_DAYS,
        forecasts: Optional[CarbonForecastProvider] = None,
    ):
        self._dag = dag
        self._config = config
        self._ledger = ledger
        self._carbon = carbon_source
        self._max_invocations = max_invocations
        self._retention_s = retention_days * SECONDS_PER_DAY
        # Forecasts are per *grid region*, not per workflow, so a fleet
        # passes one shared provider here and every manager prices
        # future hours off the same daily Holt-Winters fits.
        self.forecasts = (
            forecasts
            if forecasts is not None
            else CarbonForecastProvider(carbon_source)
        )

        self._invocations: "OrderedDict[str, InvocationSummary]" = OrderedDict()
        self._info_counts: Dict[Tuple, int] = {}
        # Cursors into the append-only ledger.
        self._exec_cursor = 0
        self._trans_cursor = 0
        # Lambda-Insights style utilisation aggregation per node.
        self._util_sum: Dict[str, float] = {}
        self._util_n: Dict[str, int] = {}
        # Declared fixed external data per node: node -> (region, bytes).
        self._external: Dict[str, Tuple[str, float]] = {}
        # Optional priors for cold-started model data.
        self._prior_exec: Dict[Tuple[str, str], EmpiricalDistribution] = {}
        self._prior_sizes: Dict[Tuple[str, str], EmpiricalDistribution] = {}
        self._prior_input: Optional[EmpiricalDistribution] = None
        # Derived-distribution cache: the Monte-Carlo estimator queries
        # these once per *sample*, so rebuilding from the invocation
        # store each time would dominate solve time.  Invalidated
        # whenever the store changes (collect / eviction).
        self._derived_cache: Dict[Tuple, object] = {}
        #: Bumped whenever the learned model data changes (any event
        #: that clears the derived cache); see
        #: :attr:`CarbonForecastProvider.version` for the pattern.
        self.version = 0

    # -- configuration -------------------------------------------------------
    def declare_external_data(self, node: str, region: str, size_bytes: float) -> None:
        """Register a node's fixed external data dependency (§9.1)."""
        self._dag.node(node)
        self._external[node] = (region, float(size_bytes))

    def register_execution_prior(
        self, node: str, region: str, samples: Sequence[float]
    ) -> None:
        """Seed an execution-time distribution before any history exists."""
        self._prior_exec[(node, region)] = EmpiricalDistribution(samples)

    def register_size_prior(
        self, src: str, dst: str, samples: Sequence[float]
    ) -> None:
        self._prior_sizes[(src, dst)] = EmpiricalDistribution(samples)

    def register_input_prior(self, samples: Sequence[float]) -> None:
        self._prior_input = EmpiricalDistribution(samples)

    # -- ingestion ------------------------------------------------------------
    def collect(self, now_s: float) -> int:
        """Pull new ledger records into the invocation store.

        Called by the Deployment Manager when a token check is due
        (Fig. 6 "Collect Metrics").  Returns the number of new execution
        records ingested.
        """
        new_execs = 0
        workflow = self._dag.name
        executions = self._ledger.executions
        while self._exec_cursor < len(executions):
            rec = executions[self._exec_cursor]
            self._exec_cursor += 1
            if rec.workflow != workflow:
                continue
            self._ingest_execution(rec)
            new_execs += 1
        transmissions = self._ledger.transmissions
        while self._trans_cursor < len(transmissions):
            rec = transmissions[self._trans_cursor]
            self._trans_cursor += 1
            if rec.workflow != workflow or rec.kind != "data":
                continue
            self._ingest_transmission(rec)
        self._expire(now_s)
        self._evict_to_cap()
        if new_execs:
            self._derived_cache.clear()
            self.version += 1
        return new_execs

    def _summary_for(self, request_id: str, start_s: float) -> InvocationSummary:
        if request_id not in self._invocations:
            self._invocations[request_id] = InvocationSummary(
                request_id=request_id, first_start_s=start_s
            )
        return self._invocations[request_id]

    def _ingest_execution(self, rec: ExecutionRecord) -> None:
        if not rec.request_id:
            return
        summary = self._summary_for(rec.request_id, rec.start_s)
        summary.first_start_s = min(summary.first_start_s, rec.start_s)
        if rec.node not in summary.node_executions:
            self._bump(("exec", rec.node, rec.region), +1)
        else:
            old_region = summary.node_executions[rec.node][0]
            if old_region != rec.region:
                self._bump(("exec", rec.node, old_region), -1)
                self._bump(("exec", rec.node, rec.region), +1)
        summary.node_executions[rec.node] = (rec.region, rec.duration_s)
        # Insights utilisation.
        if rec.duration_s > 0 and rec.n_vcpu > 0:
            util = rec.cpu_total_time_s / (rec.duration_s * rec.n_vcpu)
            self._util_sum[rec.node] = self._util_sum.get(rec.node, 0.0) + util
            self._util_n[rec.node] = self._util_n.get(rec.node, 0) + 1

    def _ingest_transmission(self, rec: TransmissionRecord) -> None:
        if not rec.request_id or "->" not in rec.edge:
            return
        src, dst = rec.edge.split("->", 1)
        if src == "$input":
            # Client -> start-node transfer: learn the input-size
            # distribution (the entry stage pays it when shifted).
            summary = self._summary_for(rec.request_id, rec.start_s)
            summary.input_bytes = rec.size_bytes
            return
        if src not in self._dag.node_names or dst not in self._dag.node_names:
            return
        summary = self._summary_for(rec.request_id, rec.start_s)
        key = (src, dst)
        if key not in summary.edge_transfers:
            self._bump(("route", rec.src_region, rec.dst_region), +1)
        else:
            old = summary.edge_transfers[key]
            if (old[0], old[1]) != (rec.src_region, rec.dst_region):
                self._bump(("route", old[0], old[1]), -1)
                self._bump(("route", rec.src_region, rec.dst_region), +1)
        summary.edge_transfers[key] = (rec.src_region, rec.dst_region, rec.size_bytes)

    def _bump(self, key: Tuple, delta: int) -> None:
        new = self._info_counts.get(key, 0) + delta
        if new <= 0:
            self._info_counts.pop(key, None)
        else:
            self._info_counts[key] = new

    def _expire(self, now_s: float) -> None:
        """Hard 30-day retention window (§7.2)."""
        cutoff = now_s - self._retention_s
        stale = [
            rid
            for rid, s in self._invocations.items()
            if s.first_start_s < cutoff
        ]
        for rid in stale:
            self._remove(rid)

    def _evict_to_cap(self) -> None:
        """Selective forgetting beyond the 5,000-invocation cap (§7.2).

        Walk from the oldest invocation; remove it unless it is the sole
        representative of some DAG information key, in which case it is
        retained and the walk continues.
        """
        if len(self._invocations) <= self._max_invocations:
            return
        removable = []
        for rid, summary in self._invocations.items():
            if len(self._invocations) - len(removable) <= self._max_invocations:
                break
            if all(self._info_counts.get(k, 0) > 1 for k in summary.info_keys()):
                removable.append(rid)
        for rid in removable:
            self._remove(rid)

    def _remove(self, request_id: str) -> None:
        summary = self._invocations.pop(request_id)
        for key in summary.info_keys():
            self._bump(key, -1)
        self._derived_cache.clear()
        self.version += 1

    # -- workflow-level statistics (token bucket inputs, §5.2) --------------
    @property
    def invocation_count(self) -> int:
        return len(self._invocations)

    def invocations_since(self, since_s: float) -> int:
        return sum(
            1 for s in self._invocations.values() if s.first_start_s >= since_s
        )

    def average_runtime_s(self, since_s: float = 0.0) -> float:
        """Mean total node-execution seconds per invocation."""
        totals = [
            sum(dur for _r, dur in s.node_executions.values())
            for s in self._invocations.values()
            if s.first_start_s >= since_s
        ]
        return float(np.mean(totals)) if totals else 0.0

    # -- WorkflowModelData protocol -------------------------------------------
    def execution_time_dist(self, node: str, region: str) -> EmpiricalDistribution:
        key = ("exec_dist", node, region)
        cached = self._derived_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        samples = [
            dur
            for s in self._invocations.values()
            for n, (r, dur) in s.node_executions.items()
            if n == node and r == region
        ]
        if samples:
            dist = EmpiricalDistribution(samples)
        elif (node, region) in self._prior_exec:
            dist = self._prior_exec[(node, region)]
        else:
            # §7.1: fall back to the home region's distribution.
            home = self._config.home_region
            if region == home:
                raise ValueError(
                    f"no execution history or prior for node {node!r} in "
                    f"the home region {home!r}"
                )
            dist = self.execution_time_dist(node, home)
        self._derived_cache[key] = dist
        return dist

    def edge_probability(self, src: str, dst: str) -> float:
        key = ("edge_prob", src, dst)
        cached = self._derived_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        src_ran = 0
        taken = 0
        for s in self._invocations.values():
            if src in s.node_executions:
                src_ran += 1
                # The edge was exercised iff tagged data crossed it.
                if (src, dst) in s.edge_transfers:
                    taken += 1
        if src_ran == 0:
            prob = 0.0 if self._dag.edge(src, dst).conditional else 1.0
        elif not self._dag.edge(src, dst).conditional:
            prob = 1.0
        else:
            prob = taken / src_ran
        self._derived_cache[key] = prob
        return prob

    def edge_size_dist(self, src: str, dst: str) -> EmpiricalDistribution:
        key = ("edge_size", src, dst)
        cached = self._derived_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        samples = [
            size
            for s in self._invocations.values()
            for (a, b), (_sr, _dr, size) in s.edge_transfers.items()
            if (a, b) == (src, dst)
        ]
        if samples:
            dist = EmpiricalDistribution(samples)
        elif (src, dst) in self._prior_sizes:
            dist = self._prior_sizes[(src, dst)]
        else:
            raise ValueError(
                f"no payload-size history or prior for edge {src}->{dst}"
            )
        self._derived_cache[key] = dist
        return dist

    def node_memory_mb(self, node: str) -> int:
        return self._dag.node(node).memory_mb

    def node_vcpu(self, node: str) -> float:
        from repro.cloud.functions import MEMORY_MB_PER_VCPU

        return self._dag.node(node).memory_mb / MEMORY_MB_PER_VCPU

    def node_cpu_utilization(self, node: str) -> float:
        n = self._util_n.get(node, 0)
        if n == 0:
            return 0.7  # neutral default until Insights data arrives
        return min(1.0, self._util_sum[node] / n)

    def node_external_bytes(self, node: str) -> Tuple[Optional[str], float]:
        if node in self._external:
            return self._external[node]
        return None, 0.0

    def input_size_dist(self) -> EmpiricalDistribution:
        key = ("input_size",)
        cached = self._derived_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        samples = [
            s.input_bytes
            for s in self._invocations.values()
            if s.input_bytes is not None
        ]
        if samples:
            dist = EmpiricalDistribution(samples)
        elif self._prior_input is not None:
            dist = self._prior_input
        else:
            # No observed client inputs (e.g. model built from partial
            # telemetry): a zero-size input keeps the estimator total.
            dist = EmpiricalDistribution([0.0])
        self._derived_cache[key] = dist
        return dist

    # -- carbon accessors -------------------------------------------------------
    def carbon_at(self, region: str, time_s: float) -> float:
        """Actual ACI at ``time_s`` (used for past/current hours)."""
        return self._carbon.intensity_at(region, time_s)

    def carbon_for_hour(
        self, region: str, hour: int, use_forecast: bool = True
    ) -> float:
        """Intensity for planning ``hour`` — forecast when available."""
        if use_forecast and self.forecasts.has_forecast(region):
            return self.forecasts.forecast_at(region, hour)
        return self._carbon.intensity_at_hour(region, hour)
