"""Carbon/cost accounting over raw ledger records.

The simulator's ledger stores *measurements* (durations, bytes, CPU
time); this module prices them into gCO2eq and USD using the paper's
models (§7.1) and the carbon intensity that prevailed at each record's
timestamp.  Because pricing is separate from simulation, one simulated
run can be re-priced under both the best- and worst-case transmission
scenarios (§9.1 fairness rule 4) without re-running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cloud.ledger import (
    ExecutionRecord,
    KvAccessRecord,
    MessagingRecord,
    MeteringLedger,
    TransmissionRecord,
)
from repro.data.carbon import CarbonIntensitySource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel


@dataclass
class InvocationFootprint:
    """Priced totals for one workflow invocation (or any record group)."""

    carbon_g: float = 0.0
    exec_carbon_g: float = 0.0
    trans_carbon_g: float = 0.0
    cost_usd: float = 0.0
    exec_seconds: float = 0.0
    bytes_moved: float = 0.0
    n_executions: int = 0
    n_transmissions: int = 0

    def merged(self, other: "InvocationFootprint") -> "InvocationFootprint":
        return InvocationFootprint(
            carbon_g=self.carbon_g + other.carbon_g,
            exec_carbon_g=self.exec_carbon_g + other.exec_carbon_g,
            trans_carbon_g=self.trans_carbon_g + other.trans_carbon_g,
            cost_usd=self.cost_usd + other.cost_usd,
            exec_seconds=self.exec_seconds + other.exec_seconds,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            n_executions=self.n_executions + other.n_executions,
            n_transmissions=self.n_transmissions + other.n_transmissions,
        )


class CarbonAccountant:
    """Prices ledger records under one transmission scenario."""

    def __init__(
        self,
        carbon_source: CarbonIntensitySource,
        carbon_model: CarbonModel,
        cost_model: Optional[CostModel] = None,
    ):
        self._source = carbon_source
        self._carbon = carbon_model
        self._cost = cost_model

    def with_scenario(self, scenario: TransmissionScenario) -> "CarbonAccountant":
        return CarbonAccountant(
            self._source, self._carbon.with_scenario(scenario), self._cost
        )

    # -- single records ---------------------------------------------------------
    def execution_carbon_g(self, record: ExecutionRecord) -> float:
        intensity = self._source.intensity_at(record.region, record.start_s)
        return self._carbon.execution_carbon_g(
            grid_intensity=intensity,
            duration_s=record.duration_s,
            memory_mb=record.memory_mb,
            n_vcpu=record.n_vcpu,
            cpu_total_time_s=record.cpu_total_time_s,
        )

    def transmission_carbon_g(self, record: TransmissionRecord) -> float:
        intensity = self._source.route_intensity_at(
            record.src_region, record.dst_region, record.start_s
        )
        return self._carbon.transmission_carbon_g(
            route_intensity=intensity,
            size_bytes=record.size_bytes,
            intra_region=record.intra_region,
        )

    # -- aggregation ----------------------------------------------------------------
    def price(
        self,
        executions: Sequence[ExecutionRecord] = (),
        transmissions: Sequence[TransmissionRecord] = (),
        messages: Sequence[MessagingRecord] = (),
        kv_accesses: Sequence[KvAccessRecord] = (),
    ) -> InvocationFootprint:
        fp = InvocationFootprint()
        for rec in executions:
            carbon = self.execution_carbon_g(rec)
            fp.exec_carbon_g += carbon
            fp.carbon_g += carbon
            fp.exec_seconds += rec.duration_s
            fp.n_executions += 1
            if self._cost is not None:
                fp.cost_usd += self._cost.execution_cost(
                    rec.region, rec.duration_s, rec.memory_mb
                )
        for rec in transmissions:
            carbon = self.transmission_carbon_g(rec)
            fp.trans_carbon_g += carbon
            fp.carbon_g += carbon
            fp.bytes_moved += rec.size_bytes
            fp.n_transmissions += 1
            if self._cost is not None:
                fp.cost_usd += self._cost.transmission_cost(
                    rec.src_region, rec.dst_region, rec.size_bytes
                )
        if self._cost is not None:
            for msg in messages:
                fp.cost_usd += self._cost.messaging_cost(msg.region)
            for access in kv_accesses:
                fp.cost_usd += self._cost.kv_cost(
                    access.region,
                    n_reads=0 if access.write else 1,
                    n_writes=1 if access.write else 0,
                )
        return fp

    def price_by_request(
        self,
        ledger: MeteringLedger,
        workflow: str,
        since_s: float = float("-inf"),
        until_s: float = float("inf"),
    ) -> Dict[str, InvocationFootprint]:
        """Price every invocation of a workflow in one ledger pass.

        O(records) total, unlike calling :meth:`price_workflow` per
        request id (which scans the whole ledger each time) — the shape
        the Deployment Manager needs when computing realised savings
        over thousands of invocations (§5.2).
        """
        groups: Dict[str, InvocationFootprint] = {}

        def fp_for(rid: str) -> InvocationFootprint:
            if rid not in groups:
                groups[rid] = InvocationFootprint()
            return groups[rid]

        for rec in ledger.executions:
            if rec.workflow != workflow or not (since_s <= rec.start_s < until_s):
                continue
            fp = fp_for(rec.request_id)
            carbon = self.execution_carbon_g(rec)
            fp.exec_carbon_g += carbon
            fp.carbon_g += carbon
            fp.exec_seconds += rec.duration_s
            fp.n_executions += 1
            if self._cost is not None:
                fp.cost_usd += self._cost.execution_cost(
                    rec.region, rec.duration_s, rec.memory_mb
                )
        for rec in ledger.transmissions:
            if rec.workflow != workflow or not (since_s <= rec.start_s < until_s):
                continue
            if not rec.request_id:
                continue
            fp = fp_for(rec.request_id)
            carbon = self.transmission_carbon_g(rec)
            fp.trans_carbon_g += carbon
            fp.carbon_g += carbon
            fp.bytes_moved += rec.size_bytes
            fp.n_transmissions += 1
            if self._cost is not None:
                fp.cost_usd += self._cost.transmission_cost(
                    rec.src_region, rec.dst_region, rec.size_bytes
                )
        if self._cost is not None:
            for msg in ledger.messages:
                if msg.workflow != workflow or not (
                    since_s <= msg.start_s < until_s
                ):
                    continue
                fp_for(msg.request_id).cost_usd += self._cost.messaging_cost(
                    msg.region
                )
            for access in ledger.kv_accesses:
                if access.workflow != workflow or not (
                    since_s <= access.start_s < until_s
                ):
                    continue
                fp_for(access.request_id).cost_usd += self._cost.kv_cost(
                    access.region,
                    n_reads=0 if access.write else 1,
                    n_writes=1 if access.write else 0,
                )
        groups.pop("", None)
        return groups

    def price_workflow(
        self,
        ledger: MeteringLedger,
        workflow: str,
        request_id: Optional[str] = None,
        since_s: float = float("-inf"),
        until_s: float = float("inf"),
    ) -> InvocationFootprint:
        """Price every record of a workflow (optionally one invocation,
        optionally restricted to a time window)."""

        def in_window(start: float) -> bool:
            return since_s <= start < until_s

        return self.price(
            executions=[
                r
                for r in ledger.executions_for(workflow, request_id)
                if in_window(r.start_s)
            ],
            transmissions=[
                r
                for r in ledger.transmissions_for(workflow, request_id)
                if in_window(r.start_s)
            ],
            messages=[
                r
                for r in ledger.messages_for(workflow, request_id)
                if in_window(r.start_s)
            ],
            kv_accesses=[
                r
                for r in ledger.kv_accesses_for(workflow, request_id)
                if in_window(r.start_s)
            ],
        )
