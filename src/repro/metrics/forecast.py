"""Carbon-intensity forecasting (paper §7.2).

"MM accomplishes this by using Holt-Winters Forecasting Exponential
Smoothing once every day using the hourly carbon intensities of the
previous week as input."  Implemented from scratch: additive
triple-exponential smoothing with a 24-hour season, fit either with
supplied smoothing parameters or by a small grid search minimising
one-step-ahead squared error.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

SEASON_LENGTH = 24


@dataclass(frozen=True)
class HoltWintersParams:
    """Smoothing parameters: level, trend, season — all in (0, 1)."""

    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            v = getattr(self, name)
            if not 0.0 < v < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {v}")


class HoltWintersForecaster:
    """Additive Holt-Winters with a daily (24-hour) season."""

    def __init__(
        self,
        season_length: int = SEASON_LENGTH,
        params: Optional[HoltWintersParams] = None,
    ):
        if season_length < 2:
            raise ValueError(f"season_length must be >= 2, got {season_length}")
        self._m = season_length
        self._params = params
        # Fitted state.
        self._level: Optional[float] = None
        self._trend: Optional[float] = None
        self._season: Optional[np.ndarray] = None
        self._fitted_params: Optional[HoltWintersParams] = None
        self._n_observed = 0

    @property
    def is_fitted(self) -> bool:
        return self._level is not None

    @property
    def fitted_params(self) -> Optional[HoltWintersParams]:
        return self._fitted_params

    def fit(self, series: Sequence[float]) -> "HoltWintersForecaster":
        """Fit on a history of at least two full seasons.

        The paper feeds in the previous week of hourly data (168 points,
        7 seasons), refit daily.
        """
        y = np.asarray(series, dtype=float)
        if len(y) < 2 * self._m:
            raise ValueError(
                f"need at least {2 * self._m} observations, got {len(y)}"
            )
        if not np.all(np.isfinite(y)):
            raise ValueError("series contains non-finite values")

        if self._params is not None:
            params = self._params
        else:
            params = self._grid_search(y)

        level, trend, season = self._run_smoothing(y, params)
        self._level, self._trend, self._season = level, trend, season
        self._fitted_params = params
        self._n_observed = len(y)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Point forecasts for the next ``horizon`` steps."""
        if not self.is_fitted:
            raise RuntimeError("forecaster must be fitted before forecasting")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        assert self._level is not None and self._trend is not None
        assert self._season is not None
        h = np.arange(1, horizon + 1, dtype=float)
        seasonal = np.array(
            [self._season[(self._n_observed + i) % self._m] for i in range(horizon)]
        )
        out = self._level + h * self._trend + seasonal
        return np.clip(out, 0.0, None)  # carbon intensity is non-negative

    # -- internals ---------------------------------------------------------
    def _initial_state(
        self, y: np.ndarray
    ) -> Tuple[float, float, np.ndarray]:
        m = self._m
        season_means = y[: 2 * m].reshape(2, m).mean(axis=1)
        level = float(y[:m].mean())
        trend = float((season_means[1] - season_means[0]) / m)
        season = y[:m] - level
        return level, trend, season.copy()

    def _run_smoothing(
        self, y: np.ndarray, params: HoltWintersParams
    ) -> Tuple[float, float, np.ndarray]:
        level, trend, season = self._initial_state(y)
        a, b, g = params.alpha, params.beta, params.gamma
        m = self._m
        for t in range(len(y)):
            s = season[t % m]
            prev_level = level
            level = a * (y[t] - s) + (1 - a) * (level + trend)
            trend = b * (level - prev_level) + (1 - b) * trend
            season[t % m] = g * (y[t] - level) + (1 - g) * s
        return level, trend, season

    def _one_step_sse(self, y: np.ndarray, params: HoltWintersParams) -> float:
        level, trend, season = self._initial_state(y)
        a, b, g = params.alpha, params.beta, params.gamma
        m = self._m
        sse = 0.0
        for t in range(len(y)):
            s = season[t % m]
            pred = level + trend + s
            err = y[t] - pred
            sse += err * err
            prev_level = level
            level = a * (y[t] - s) + (1 - a) * (level + trend)
            trend = b * (level - prev_level) + (1 - b) * trend
            season[t % m] = g * (y[t] - level) + (1 - g) * s
        return sse

    def _grid_search(self, y: np.ndarray) -> HoltWintersParams:
        grid = (0.05, 0.15, 0.3, 0.5, 0.8)
        trend_grid = (0.01, 0.05, 0.15)
        best: Optional[HoltWintersParams] = None
        best_sse = math.inf
        for a, b, g in itertools.product(grid, trend_grid, grid):
            params = HoltWintersParams(a, b, g)
            sse = self._one_step_sse(y, params)
            if sse < best_sse:
                best_sse = sse
                best = params
        assert best is not None
        return best


def mape(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute percentage error (Fig. 13b's forecast-quality axis)."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {p.shape}")
    if len(a) == 0:
        raise ValueError("empty series")
    denom = np.where(np.abs(a) < 1e-9, 1e-9, np.abs(a))
    return float(np.mean(np.abs(a - p) / denom))
