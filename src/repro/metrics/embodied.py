"""Embodied-carbon accounting (paper §7.1's exclusion, made executable).

The paper deliberately models only *operational* carbon and argues why
embodied carbon does not belong in Caribou's offloading decisions:

* as long as capacity exists, the hardware's embodied carbon "will be
  incurred regardless of Caribou's offloading decision" — a sunk cost;
* reliable per-region embodied data does not exist, so "the most
  meaningful approach would be to associate the same embedded carbon
  per unit of resource to all regions";
* "adding the resulting equal embodied carbon baseline to all regions
  does not affect their relative carbon differential, the element
  leveraged by Caribou".

This module implements that equal-per-resource baseline so that
*reporting* can include embodied carbon when desired, and so the
invariance argument is testable: re-ranking any set of deployment plans
with embodied carbon included must produce the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cloud.ledger import ExecutionRecord

#: Amortised embodied carbon per vCPU-hour, gCO2eq.  Derived from the
#: common accounting assumption of ~1,200 kgCO2eq embodied per 2-socket
#: server (96 vCPU) amortised over a 4-year life at 65 % utilisation.
EMBODIED_G_PER_VCPU_HOUR = 1_200_000.0 / (96 * 4 * 365.25 * 24 * 0.65)
#: Amortised embodied carbon per GB-hour of DRAM, gCO2eq.
EMBODIED_G_PER_GB_HOUR = 0.35


@dataclass(frozen=True)
class EmbodiedCarbonModel:
    """Equal-per-resource embodied baseline (identical in every region).

    Attributes:
        g_per_vcpu_hour / g_per_gb_hour: Amortisation rates.  The same
        values apply to all regions by construction (§7.1: no reliable
        per-region data exists).
    """

    g_per_vcpu_hour: float = EMBODIED_G_PER_VCPU_HOUR
    g_per_gb_hour: float = EMBODIED_G_PER_GB_HOUR

    def execution_embodied_g(
        self, duration_s: float, memory_mb: float, n_vcpu: float
    ) -> float:
        """Embodied share attributed to one execution."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        hours = duration_s / 3600.0
        return (
            self.g_per_vcpu_hour * n_vcpu * hours
            + self.g_per_gb_hour * (memory_mb / 1024.0) * hours
        )

    def record_embodied_g(self, record: ExecutionRecord) -> float:
        return self.execution_embodied_g(
            record.duration_s, record.memory_mb, record.n_vcpu
        )

    def total_embodied_g(self, records: Sequence[ExecutionRecord]) -> float:
        return sum(self.record_embodied_g(r) for r in records)


def ranking_invariant_under_embodied(
    operational_carbons: Sequence[float],
    resource_hours: Sequence[Tuple[float, float]],
    model: EmbodiedCarbonModel = EmbodiedCarbonModel(),
) -> bool:
    """Check the paper's invariance argument on concrete numbers.

    Args:
        operational_carbons: Operational gCO2eq per candidate plan.
        resource_hours: ``(vcpu_hours, gb_hours)`` per candidate plan.
            When candidates consume the *same* resources (the usual case
            for alternative placements of the same workload), adding the
            embodied baseline cannot change the ordering.

    Returns:
        True when the operational-only ranking equals the
        operational+embodied ranking.
    """
    if len(operational_carbons) != len(resource_hours):
        raise ValueError("one resource tuple per candidate required")

    def ranking(values: Sequence[float]) -> List[int]:
        return sorted(range(len(values)), key=lambda i: values[i])

    with_embodied = [
        op + model.g_per_vcpu_hour * vcpu + model.g_per_gb_hour * gb
        for op, (vcpu, gb) in zip(operational_carbons, resource_hours)
    ]
    return ranking(operational_carbons) == ranking(with_embodied)
