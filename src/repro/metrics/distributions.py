"""Empirical distributions over observed metrics.

The Metrics Manager captures execution times and transmission latencies
"as a distribution (as opposed to average) from historical data" (§7.1).
:class:`EmpiricalDistribution` is that representation: a bounded sample
reservoir with mean/percentile queries and resampling for the
Monte-Carlo estimator.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np


class EmpiricalDistribution:
    """A bounded collection of observed samples.

    Appending beyond ``max_samples`` drops the oldest observation, so
    the distribution tracks the recent workload — the sliding-window
    behaviour §5.2 relies on ("without considering any earlier periods").
    """

    def __init__(
        self,
        samples: Optional[Iterable[float]] = None,
        max_samples: int = 2000,
    ):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self._max = max_samples
        self._samples: List[float] = []
        self._array: Optional[np.ndarray] = None
        if samples is not None:
            for s in samples:
                self.add(float(s))

    def add(self, sample: float) -> None:
        if not math.isfinite(sample):
            raise ValueError(f"sample must be finite, got {sample}")
        self._samples.append(sample)
        self._array = None
        if len(self._samples) > self._max:
            del self._samples[0 : len(self._samples) - self._max]

    def extend(self, samples: Iterable[float]) -> None:
        for s in samples:
            self.add(float(s))

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def mean(self) -> float:
        self._require_nonempty()
        return float(np.mean(self._samples))

    def std(self) -> float:
        self._require_nonempty()
        return float(np.std(self._samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100)."""
        self._require_nonempty()
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        return float(np.percentile(self._samples, q))

    def p95(self) -> float:
        """The tail value the paper uses for QoS checks (§7.1)."""
        return self.percentile(95)

    def min(self) -> float:
        self._require_nonempty()
        return float(np.min(self._samples))

    def max(self) -> float:
        self._require_nonempty()
        return float(np.max(self._samples))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Bootstrap-resample from the observations."""
        self._require_nonempty()
        arr = self._as_array()
        if size is None:
            return float(rng.choice(arr))
        return rng.choice(arr, size=size, replace=True)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Bootstrap-resample ``n`` observations as one ``(n,)`` vector.

        The Monte-Carlo estimator's hot path: a single index draw on the
        cached observation array replaces ``n`` scalar :meth:`sample`
        calls.  Consumes exactly one ``rng.integers`` call, which the
        estimator's determinism note relies on.
        """
        self._require_nonempty()
        if n <= 0:
            raise ValueError(f"batch size must be positive, got {n}")
        arr = self._as_array()
        return arr[rng.integers(0, len(arr), size=n)]

    def _as_array(self) -> np.ndarray:
        """The observations as a cached float array (rebuilt on append)."""
        if self._array is None:
            self._array = np.asarray(self._samples, dtype=float)
        return self._array

    def scaled(self, factor: float) -> "EmpiricalDistribution":
        """A copy with every sample multiplied by ``factor``.

        Used when a region has no history and the home region's
        execution-time distribution is borrowed (§7.1), optionally
        adjusted for relative region speed.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return EmpiricalDistribution(
            (s * factor for s in self._samples), max_samples=self._max
        )

    def merged_with(self, other: "EmpiricalDistribution") -> "EmpiricalDistribution":
        out = EmpiricalDistribution(self._samples, max_samples=self._max)
        out.extend(other.samples)
        return out

    def _require_nonempty(self) -> None:
        if not self._samples:
            raise ValueError("distribution has no samples")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "EmpiricalDistribution(empty)"
        return (
            f"EmpiricalDistribution(n={len(self._samples)}, "
            f"mean={self.mean():.4g}, p95={self.p95():.4g})"
        )
