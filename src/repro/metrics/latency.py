"""Transmission-latency estimation for the planner.

The Metrics Manager captures transmission latency "as a latency
distribution for various input sizes, derived from historical data"; in
the absence of history it "defaults to using CloudPing to estimate
transmission latency" (§7.1).  This module is that fallback path: a
deterministic latency estimate from the CloudPing-substitute RTT grid
plus serialisation delay, sharing the bandwidth constants with the
simulated network so estimates and measurements agree.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.network import (
    DEFAULT_INTER_REGION_BANDWIDTH,
    DEFAULT_INTRA_REGION_BANDWIDTH,
)
from repro.data.latency import LatencySource


class TransferLatencyModel:
    """CloudPing-style latency estimates (no jitter — model, not sample)."""

    def __init__(
        self,
        latency_source: LatencySource,
        inter_region_bandwidth: float = DEFAULT_INTER_REGION_BANDWIDTH,
        intra_region_bandwidth: float = DEFAULT_INTRA_REGION_BANDWIDTH,
    ):
        self._latency = latency_source
        self._inter_bw = inter_region_bandwidth
        self._intra_bw = intra_region_bandwidth

    def estimate(self, src: str, dst: str, size_bytes: float) -> float:
        """Expected one-way transfer latency in seconds."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        bandwidth = self._intra_bw if src == dst else self._inter_bw
        return self._latency.one_way(src, dst) + size_bytes / bandwidth

    def estimate_batch(
        self, src: str, dst: str, size_bytes: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`estimate` over a ``(n,)`` size vector.

        Element-for-element the same arithmetic as the scalar path, so
        the vectorized Monte-Carlo kernel stays bit-identical to its
        scalar reference.
        """
        sizes = np.asarray(size_bytes, dtype=float)
        if np.any(sizes < 0):
            raise ValueError("size_bytes must be non-negative")
        bandwidth = self._intra_bw if src == dst else self._inter_bw
        return self._latency.one_way(src, dst) + sizes / bandwidth

    def estimate_stacked(
        self, routes: "list[tuple[str, str]]", size_bytes: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`estimate` over per-row routes.

        ``routes[p]`` prices row ``p`` of the ``(n_routes, batch)`` size
        matrix.  Base latency and bandwidth broadcast as
        ``(n_routes, 1)`` columns, so every element undergoes exactly
        the scalar arithmetic — the cross-plan Monte-Carlo kernel's
        bit-identity relies on this.
        """
        sizes = np.asarray(size_bytes, dtype=float)
        if np.any(sizes < 0):
            raise ValueError("size_bytes must be non-negative")
        base = np.array(
            [self._latency.one_way(src, dst) for src, dst in routes]
        )[:, None]
        bandwidth = np.array(
            [self._intra_bw if src == dst else self._inter_bw for src, dst in routes]
        )[:, None]
        return base + sizes / bandwidth
