"""Metrics: models, acquisition, and forecasting (paper §7).

* :mod:`repro.metrics.carbon` — operational carbon models, Eq. 7.1-7.5.
* :mod:`repro.metrics.cost` — execution/transmission/messaging cost.
* :mod:`repro.metrics.distributions` — empirical distributions.
* :mod:`repro.metrics.montecarlo` — end-to-end workflow estimation.
* :mod:`repro.metrics.forecast` — Holt-Winters carbon forecasting.
* :mod:`repro.metrics.manager` — the Metrics Manager component.
"""

from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.forecast import HoltWintersForecaster
from repro.metrics.manager import MetricsManager
from repro.metrics.montecarlo import (
    MonteCarloEstimator,
    PlanProfile,
    WorkflowEstimate,
)

__all__ = [
    "CarbonModel",
    "TransmissionScenario",
    "CostModel",
    "EmpiricalDistribution",
    "HoltWintersForecaster",
    "MetricsManager",
    "MonteCarloEstimator",
    "PlanProfile",
    "WorkflowEstimate",
]
