"""The workflow model (paper §4) and deployment-plan representation.

A workflow is a DAG ``G = (N, E)`` with exactly one start node, optional
conditional edges, and synchronisation (fan-in) nodes.  A deployment
plan is a mapping ``psi: N -> R`` of nodes to regions; Caribou generates
24 of them per solve, one per hour of the day (§5.1).
"""

from repro.model.config import FunctionConstraints, WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.model.plan import DeploymentPlan, HourlyPlanSet

__all__ = [
    "Node",
    "Edge",
    "WorkflowDAG",
    "DeploymentPlan",
    "HourlyPlanSet",
    "WorkflowConfig",
    "FunctionConstraints",
]
