"""Workflow DAG representation (paper §4).

A workflow is a DAG ``G = (N, E)``.  Edges carry execution dependencies;
an edge may be *conditional* (taken or not per invocation, ``C: E ->
{0,1}``).  A node with more than one incoming edge is a *synchronisation
node*: it runs once all its incoming edges have resolved (taken or
explicitly skipped) and at least one was taken — Eq. 4.1:

    (forall e_ij in E_in(n_j): C(e_ij) != empty)  and
    (exists e_kj in E_in(n_j): C(e_kj) = 1)

Workflows have exactly one start node ("the most common structure",
§4).  Each source-code function can back multiple execution stages; to
keep the graph acyclic every stage is its own node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from repro.common.errors import WorkflowDefinitionError


@dataclass(frozen=True)
class Node:
    """One execution stage.

    Attributes:
        name: Unique stage id within the workflow.
        function: Source-code function backing this stage (several
            stages may share one function, §4).
        memory_mb: Configured memory size for the stage.
    """

    name: str
    function: str
    memory_mb: int = 1769

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowDefinitionError("node name must be non-empty")
        if self.memory_mb <= 0:
            raise WorkflowDefinitionError(
                f"node {self.name}: memory_mb must be positive, got {self.memory_mb}"
            )


@dataclass(frozen=True)
class Edge:
    """An execution dependency from ``src`` to ``dst``.

    ``conditional`` marks edges whose trigger condition is evaluated at
    runtime; unconditional edges are always taken.
    """

    src: str
    dst: str
    conditional: bool = False

    @property
    def key(self) -> str:
        return f"{self.src}->{self.dst}"


class WorkflowDAG:
    """Validated, immutable-after-freeze workflow graph with queries.

    Built incrementally (by the static analyser or by hand in tests),
    then :meth:`validate` checks the §4 structural rules.  All query
    methods validate lazily so read-only use is cheap.
    """

    def __init__(self, name: str):
        if not name:
            raise WorkflowDefinitionError("workflow name must be non-empty")
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._edges: Dict[Tuple[str, str], Edge] = {}
        self._graph = nx.DiGraph()
        self._validated = False
        # Memoised per-node edge tuples: the executor asks for the same
        # in/out edges on every message of every request, and walking
        # the networkx views per call is measurable at open-loop rates.
        self._in_edges_memo: Dict[str, Tuple[Edge, ...]] = {}
        self._out_edges_memo: Dict[str, Tuple[Edge, ...]] = {}

    # -- construction -------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.name in self._nodes:
            raise WorkflowDefinitionError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        self._validated = False
        self._in_edges_memo.clear()
        self._out_edges_memo.clear()

    def add_edge(self, edge: Edge) -> None:
        if edge.src not in self._nodes:
            raise WorkflowDefinitionError(
                f"edge {edge.key}: unknown source node {edge.src!r}"
            )
        if edge.dst not in self._nodes:
            raise WorkflowDefinitionError(
                f"edge {edge.key}: unknown destination node {edge.dst!r}"
            )
        if (edge.src, edge.dst) in self._edges:
            raise WorkflowDefinitionError(f"duplicate edge {edge.key}")
        if edge.src == edge.dst:
            raise WorkflowDefinitionError(f"self-loop on {edge.src!r}")
        self._edges[(edge.src, edge.dst)] = edge
        self._graph.add_edge(edge.src, edge.dst)
        self._validated = False
        self._in_edges_memo.clear()
        self._out_edges_memo.clear()

    def validate(self) -> None:
        """Check the §4 structural rules; raise on violation."""
        if not self._nodes:
            raise WorkflowDefinitionError(f"workflow {self.name!r} has no nodes")
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise WorkflowDefinitionError(
                f"workflow {self.name!r} contains a cycle: {cycle}"
            )
        starts = [n for n in self._nodes if self._graph.in_degree(n) == 0]
        if len(starts) != 1:
            # This also covers reachability: in an acyclic graph with
            # exactly one in-degree-0 node, every node is reachable from
            # it (any unreachable node would introduce another root).
            raise WorkflowDefinitionError(
                f"workflow {self.name!r} must have exactly one start node, "
                f"found {sorted(starts)}"
            )
        self._validated = True

    def _ensure_valid(self) -> None:
        if not self._validated:
            self.validate()

    # -- basic queries --------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges.values())

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(
                f"workflow {self.name!r} has no node {name!r}"
            ) from None

    def edge(self, src: str, dst: str) -> Edge:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise KeyError(
                f"workflow {self.name!r} has no edge {src}->{dst}"
            ) from None

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def __len__(self) -> int:
        return len(self._nodes)

    # -- structure queries ------------------------------------------------------
    @property
    def start_node(self) -> str:
        self._ensure_valid()
        return next(n for n in self._nodes if self._graph.in_degree(n) == 0)

    @property
    def terminal_nodes(self) -> Tuple[str, ...]:
        """Nodes with no outgoing edges."""
        return tuple(n for n in self._nodes if self._graph.out_degree(n) == 0)

    def in_edges(self, node: str) -> Tuple[Edge, ...]:
        cached = self._in_edges_memo.get(node)
        if cached is None:
            self.node(node)
            cached = self._in_edges_memo[node] = tuple(
                self._edges[(u, v)] for u, v in self._graph.in_edges(node)
            )
        return cached

    def out_edges(self, node: str) -> Tuple[Edge, ...]:
        cached = self._out_edges_memo.get(node)
        if cached is None:
            self.node(node)
            cached = self._out_edges_memo[node] = tuple(
                self._edges[(u, v)] for u, v in self._graph.out_edges(node)
            )
        return cached

    def predecessors(self, node: str) -> Tuple[str, ...]:
        self.node(node)
        return tuple(self._graph.predecessors(node))

    def successors(self, node: str) -> Tuple[str, ...]:
        self.node(node)
        return tuple(self._graph.successors(node))

    def is_sync_node(self, node: str) -> bool:
        """A node with more than one incoming edge (§4)."""
        return len(self.in_edges(node)) > 1

    @property
    def sync_nodes(self) -> Tuple[str, ...]:
        return tuple(n for n in self._nodes if self.is_sync_node(n))

    @property
    def has_conditional_edges(self) -> bool:
        return any(e.conditional for e in self._edges.values())

    def topological_order(self) -> List[str]:
        self._ensure_valid()
        # lexicographic tie-break for determinism
        return list(nx.lexicographical_topological_sort(self._graph))

    def descendants(self, node: str) -> FrozenSet[str]:
        self.node(node)
        return frozenset(nx.descendants(self._graph, node))

    def paths_between(self, src: str, dst: str) -> List[List[str]]:
        """All simple paths from ``src`` to ``dst``."""
        self.node(src)
        self.node(dst)
        return [list(p) for p in nx.all_simple_paths(self._graph, src, dst)]

    def downstream_sync_nodes(self, node: str) -> Tuple[str, ...]:
        """Sync nodes reachable from ``node`` (used by the conditional-
        DAG skip-propagation rule, §4)."""
        reach = self.descendants(node)
        return tuple(n for n in self.topological_order() if n in reach and self.is_sync_node(n))

    def critical_path(self, node_weights: Dict[str, float]) -> Tuple[List[str], float]:
        """Longest start-to-terminal path under per-node weights.

        Edge costs can be folded into the destination node's weight by
        callers (the Monte-Carlo estimator does its own richer version;
        this helper serves structural analyses and tests).
        """
        self._ensure_valid()
        order = self.topological_order()
        dist: Dict[str, float] = {}
        prev: Dict[str, Optional[str]] = {}
        for n in order:
            w = node_weights.get(n, 0.0)
            preds = list(self._graph.predecessors(n))
            if not preds:
                dist[n] = w
                prev[n] = None
            else:
                best = max(preds, key=lambda p: dist[p])
                dist[n] = dist[best] + w
                prev[n] = best
        end = max(dist, key=lambda n: dist[n])
        path: List[str] = []
        cur: Optional[str] = end
        while cur is not None:
            path.append(cur)
            cur = prev[cur]
        return list(reversed(path)), dist[end]

    def subgraph_signature(self) -> str:
        """Stable structural fingerprint (used to key solver caches)."""
        parts = [f"n:{n.name}:{n.function}:{n.memory_mb}" for n in self.nodes]
        parts += [
            f"e:{e.src}->{e.dst}:{'c' if e.conditional else 'u'}"
            for e in sorted(self._edges.values(), key=lambda e: e.key)
        ]
        return "|".join(sorted(parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkflowDAG({self.name!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._edges)})"
        )
