"""Deployment manifest (paper §8: ``config.yml`` + ``iam_policy.json``).

Developers declare: the *home region* (initial deployment, fallback, and
baseline), tolerances on end-to-end latency / carbon / cost per
invocation (enforced at DP generation), the optimisation priority among
carbon, cost, and latency (§5.1), and region allow/deny lists for
regulatory compliance.  Function-level constraints supersede
workflow-level ones (§8); when nothing is explicitly allowed, all
regions are eligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.data.regions import get_region

#: Valid optimisation priorities (§5.1: "the developer indicates their
#: preferred optimization priority between carbon, cost, or latency").
PRIORITIES = ("carbon", "cost", "latency")


@dataclass(frozen=True)
class FunctionConstraints:
    """Per-function region constraints (Listing 1's
    ``regions_and_providers``)."""

    allowed_regions: Optional[FrozenSet[str]] = None
    disallowed_regions: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.allowed_regions is not None:
            object.__setattr__(self, "allowed_regions", frozenset(self.allowed_regions))
            for name in self.allowed_regions:
                get_region(name)
        object.__setattr__(self, "disallowed_regions", frozenset(self.disallowed_regions))
        for name in self.disallowed_regions:
            get_region(name)
        if self.allowed_regions is not None and not (
            set(self.allowed_regions) - set(self.disallowed_regions)
        ):
            raise ConfigurationError(
                "function constraints allow no region at all"
            )

    def permits(self, region: str) -> bool:
        if region in self.disallowed_regions:
            return False
        if self.allowed_regions is not None:
            return region in self.allowed_regions
        return True


@dataclass(frozen=True)
class Tolerances:
    """QoS tolerances enforced at DP generation (§8).

    Each field is a *relative* allowance over the home-region baseline:
    ``latency=0.05`` permits plans whose 95th-percentile end-to-end
    latency is up to 5 % above the home-region tail latency (§9.4's
    "runtime tolerance").  ``None`` disables the check.
    """

    latency: Optional[float] = None
    carbon: Optional[float] = None
    cost: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("latency", "carbon", "cost"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(
                    f"tolerance {name} must be non-negative, got {value}"
                )


@dataclass(frozen=True)
class WorkflowConfig:
    """Workflow-level deployment manifest.

    Attributes:
        home_region: Initial deployment region; the fallback whenever a
            plan expires or a migration fails (§5.2, §6.1).
        priority: Which metric the solver ranks final plans by.
        tolerances: Relative QoS allowances over the home baseline.
        allowed_regions / disallowed_regions: Workflow-level compliance
            lists; an empty allow list means "all regions" (§8).
        function_constraints: Per-function overrides (supersede the
            workflow-level lists).
        benchmarking_fraction: Fraction of invocations always executed
            fully at the home region for metric collection (§6.2: 10 %).
        request_timeout_s: End-to-end watchdog deadline per request, in
            virtual seconds; a request still pending when it expires is
            marked *timed out* instead of staying silently incomplete.
            ``None`` disables the watchdog.
        iam_policy: Opaque policy document attached to every role.
    """

    home_region: str
    priority: str = "carbon"
    tolerances: Tolerances = field(default_factory=Tolerances)
    allowed_regions: Optional[FrozenSet[str]] = None
    disallowed_regions: FrozenSet[str] = frozenset()
    function_constraints: Mapping[str, FunctionConstraints] = field(
        default_factory=dict
    )
    benchmarking_fraction: float = 0.10
    request_timeout_s: Optional[float] = 3600.0
    iam_policy: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        get_region(self.home_region)
        if self.priority not in PRIORITIES:
            raise ConfigurationError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )
        if self.allowed_regions is not None:
            object.__setattr__(self, "allowed_regions", frozenset(self.allowed_regions))
            for name in self.allowed_regions:
                get_region(name)
        object.__setattr__(self, "disallowed_regions", frozenset(self.disallowed_regions))
        for name in self.disallowed_regions:
            get_region(name)
        object.__setattr__(self, "function_constraints", dict(self.function_constraints))
        if not 0.0 <= self.benchmarking_fraction <= 1.0:
            raise ConfigurationError(
                f"benchmarking_fraction must be in [0, 1], got "
                f"{self.benchmarking_fraction}"
            )
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ConfigurationError(
                f"request_timeout_s must be positive or None, got "
                f"{self.request_timeout_s}"
            )
        if not self.permitted_regions_for_function(
            None, candidates=[self.home_region]
        ):
            raise ConfigurationError(
                f"home region {self.home_region!r} is excluded by the "
                "workflow-level compliance constraints"
            )

    def workflow_permits(self, region: str) -> bool:
        """Workflow-level compliance check for ``region``."""
        if region in self.disallowed_regions:
            return False
        if self.allowed_regions is not None:
            return region in self.allowed_regions
        return True

    def permits(self, function: Optional[str], region: str) -> bool:
        """Full compliance check: function-level supersedes workflow-level.

        A function with explicit constraints is judged by those alone
        (§8: "function-level configurations supersede workflow-level
        ones"); functions without constraints inherit the workflow lists.
        """
        if function is not None and function in self.function_constraints:
            return self.function_constraints[function].permits(region)
        return self.workflow_permits(region)

    def permitted_regions_for_function(
        self, function: Optional[str], candidates: Iterable[str]
    ) -> Tuple[str, ...]:
        """Filter ``candidates`` down to regions ``function`` may run in."""
        return tuple(r for r in candidates if self.permits(function, r))

    def with_tolerances(self, tolerances: Tolerances) -> "WorkflowConfig":
        return replace(self, tolerances=tolerances)

    def with_home_region(self, region: str) -> "WorkflowConfig":
        return replace(self, home_region=region)
