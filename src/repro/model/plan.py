"""Deployment plans (the mapping ``psi: N -> R``, §4/§5.1).

A :class:`DeploymentPlan` assigns every DAG node a region.  The solver
produces an :class:`HourlyPlanSet` — up to 24 plans per solve, one per
hour of the day, to track diurnal carbon patterns (§5.1); with a small
carbon budget the granularity can degrade to a single daily plan (§5.2).
Plans expire (§5.2) so stale decisions never route traffic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.model.dag import WorkflowDAG


@dataclass(frozen=True)
class DeploymentPlan:
    """An immutable node-to-region mapping with bookkeeping metadata.

    Attributes:
        assignments: node name -> region name for every DAG node.
        version: Monotonic plan version (assigned by the manager).
        created_at_s: Virtual time the plan was generated.
        expires_at_s: Virtual time after which traffic falls back to the
            home region (§5.2: "when a check is due and a pre-determined
            deployment exists that deployment is expired").
    """

    assignments: Mapping[str, str]
    version: int = 0
    created_at_s: float = 0.0
    expires_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignments", dict(self.assignments))

    def region_of(self, node: str) -> str:
        try:
            return self.assignments[node]
        except KeyError:
            raise KeyError(f"plan has no assignment for node {node!r}") from None

    @property
    def regions_used(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.assignments.values())))

    def is_single_region(self) -> bool:
        return len(set(self.assignments.values())) == 1

    def digest(self) -> str:
        """Stable content hash of the node-to-region mapping.

        Covers only :attr:`assignments` (what evaluation depends on),
        never the bookkeeping metadata, so re-versioned or re-stamped
        copies of the same placement share cache entries.  Memoized —
        the solver calls this on every evaluator lookup.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            payload = ";".join(
                f"{node}={region}"
                for node, region in sorted(self.assignments.items())
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def is_expired(self, now_s: float) -> bool:
        return self.expires_at_s is not None and now_s >= self.expires_at_s

    def covers(self, dag: WorkflowDAG) -> bool:
        """Whether every DAG node has an assignment."""
        return set(self.assignments) >= set(dag.node_names)

    def with_metadata(
        self,
        version: Optional[int] = None,
        created_at_s: Optional[float] = None,
        expires_at_s: Optional[float] = None,
    ) -> "DeploymentPlan":
        return DeploymentPlan(
            assignments=self.assignments,
            version=self.version if version is None else version,
            created_at_s=self.created_at_s if created_at_s is None else created_at_s,
            expires_at_s=self.expires_at_s if expires_at_s is None else expires_at_s,
        )

    def moved_nodes(self, other: "DeploymentPlan") -> Tuple[str, ...]:
        """Nodes whose region differs between this plan and ``other``."""
        return tuple(
            sorted(
                n
                for n in self.assignments
                if other.assignments.get(n) != self.assignments[n]
            )
        )

    def to_dict(self) -> Dict[str, object]:
        """Serialise for storage in the distributed key-value store."""
        return {
            "assignments": dict(self.assignments),
            "version": self.version,
            "created_at_s": self.created_at_s,
            "expires_at_s": self.expires_at_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DeploymentPlan":
        return cls(
            assignments=dict(data["assignments"]),  # type: ignore[arg-type]
            version=int(data.get("version", 0)),  # type: ignore[arg-type]
            created_at_s=float(data.get("created_at_s", 0.0)),  # type: ignore[arg-type]
            expires_at_s=data.get("expires_at_s"),  # type: ignore[arg-type]
        )

    @classmethod
    def single_region(
        cls, dag: WorkflowDAG, region: str, **metadata: object
    ) -> "DeploymentPlan":
        """The coarse-grained plan: every node in one region."""
        return cls(
            assignments={n: region for n in dag.node_names}, **metadata  # type: ignore[arg-type]
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.assignments.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeploymentPlan):
            return NotImplemented
        return dict(self.assignments) == dict(other.assignments)


class HourlyPlanSet:
    """Per-hour deployment plans from one solve (§5.1: "24 plans are
    generated per solve — one for each hour, given sufficient carbon
    budget").

    Coarser granularities (§5.2) are expressed by repeating one plan
    across several hours; :meth:`daily` builds the single-plan case.
    """

    def __init__(
        self,
        plans_by_hour: Mapping[int, DeploymentPlan],
        created_at_s: float = 0.0,
        expires_at_s: Optional[float] = None,
    ):
        if not plans_by_hour:
            raise ConfigurationError("HourlyPlanSet needs at least one plan")
        for hour in plans_by_hour:
            if not 0 <= hour <= 23:
                raise ConfigurationError(f"hour {hour} out of range 0..23")
        self._plans = dict(plans_by_hour)
        self.created_at_s = created_at_s
        self.expires_at_s = expires_at_s

    @classmethod
    def daily(
        cls,
        plan: DeploymentPlan,
        created_at_s: float = 0.0,
        expires_at_s: Optional[float] = None,
    ) -> "HourlyPlanSet":
        """A single daily-granularity plan applied to every hour."""
        return cls({0: plan}, created_at_s=created_at_s, expires_at_s=expires_at_s)

    def plan_for_hour(self, hour_of_day: int) -> DeploymentPlan:
        """The plan in force at ``hour_of_day`` (0-23).

        Hours without an explicit plan inherit the most recent earlier
        hour's plan (wrapping), so sparse sets behave like step
        functions over the day.
        """
        if not 0 <= hour_of_day <= 23:
            raise ValueError(f"hour_of_day {hour_of_day} out of range 0..23")
        for delta in range(24):
            candidate = (hour_of_day - delta) % 24
            if candidate in self._plans:
                return self._plans[candidate]
        raise AssertionError("unreachable: plan set is non-empty")

    @property
    def hours(self) -> Tuple[int, ...]:
        return tuple(sorted(self._plans))

    @property
    def granularity(self) -> int:
        """Number of distinct hourly slots in this set."""
        return len(self._plans)

    def distinct_plans(self) -> Tuple[DeploymentPlan, ...]:
        seen = []
        for hour in sorted(self._plans):
            plan = self._plans[hour]
            if plan not in seen:
                seen.append(plan)
        return tuple(seen)

    def is_expired(self, now_s: float) -> bool:
        return self.expires_at_s is not None and now_s >= self.expires_at_s

    def all_regions_used(self) -> Tuple[str, ...]:
        regions = set()
        for plan in self._plans.values():
            regions.update(plan.regions_used)
        return tuple(sorted(regions))

    def to_dict(self) -> Dict[str, object]:
        return {
            "plans_by_hour": {
                str(h): p.to_dict() for h, p in self._plans.items()
            },
            "created_at_s": self.created_at_s,
            "expires_at_s": self.expires_at_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HourlyPlanSet":
        raw = data["plans_by_hour"]
        return cls(
            {int(h): DeploymentPlan.from_dict(p) for h, p in raw.items()},  # type: ignore[union-attr]
            created_at_s=float(data.get("created_at_s", 0.0)),  # type: ignore[arg-type]
            expires_at_s=data.get("expires_at_s"),  # type: ignore[arg-type]
        )
