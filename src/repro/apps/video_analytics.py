"""Video Analytics benchmark (paper §9.1 #5, vSwarm + INO dataset).

"An application that recognizes objects in video frames by splitting
the video into chunks, processing them in parallel, and then joining
the results."  A split stage fans out to four recognition stages (the
compute-heavy part — per-frame inference) joined by a result
aggregator.  The most complex DAG in the suite ("fan outs and
synchronization branches", §9.6).  Inputs: 206 KB / 2.4 MB clips.
"""

from __future__ import annotations

from repro.apps.base import (
    LARGE,
    SMALL,
    BenchmarkApp,
    check_input_size,
    register_app,
)
from repro.cloud.functions import WorkProfile
from repro.common.units import kb, mb
from repro.core.api import ExternalDataSpec, Payload, Workflow

WORKFLOW_NAME = "video_analytics"

INPUT_SIZES = {SMALL: kb(206), LARGE: mb(2.4)}

N_CHUNKS = 4
#: Classes the toy recogniser can report (stands in for the INO labels).
LABELS = ("person", "car", "bicycle", "dog")


def build_workflow() -> Workflow:
    workflow = Workflow(name=WORKFLOW_NAME, version="1.0")

    @workflow.serverless_function(
        name="split",
        memory_mb=1769,
        entry_point=True,
        # Demux/chunking: I/O bound, linear in clip size.
        profile=WorkProfile(
            base_seconds=0.5,
            seconds_per_mb=0.8,
            cpu_utilization=0.7,
            output_bytes_per_input_byte=1.0,
        ),
    )
    def split(event):
        video = event or {}
        size = video.get("size_bytes", 0)
        n_chunks = int(video.get("chunks", N_CHUNKS))
        for index in range(n_chunks):
            workflow.invoke_serverless_function(
                Payload(
                    content={"chunk": index, "frames": 30},
                    size_bytes=size / max(1, n_chunks),
                ),
                recognize,
            )

    @workflow.serverless_function(
        name="recognize",
        memory_mb=3538,
        max_instances=N_CHUNKS,
        # Per-frame inference dominates: compute-heavy, which is what
        # makes this workflow a good shifting candidate (Fig. 8).
        profile=WorkProfile(
            base_seconds=2.2,
            seconds_per_mb=3.5,
            cpu_utilization=0.95,
            output_bytes_per_input_byte=0.02,  # labels, not pixels
            output_base_bytes=2048.0,
        ),
    )
    def recognize(event):
        chunk = event or {}
        index = int(chunk.get("chunk", 0))
        detections = [
            {"label": LABELS[(index + f) % len(LABELS)], "frame": f}
            for f in range(0, int(chunk.get("frames", 30)), 10)
        ]
        workflow.invoke_serverless_function(
            Payload(
                content={"chunk": index, "detections": detections},
                size_bytes=kb(2) + 64 * len(detections),
            ),
            join_results,
        )

    @workflow.serverless_function(
        name="join_results",
        memory_mb=1769,
        profile=WorkProfile(
            base_seconds=0.4,
            seconds_per_mb=0.1,
            cpu_utilization=0.5,
            output_bytes_per_input_byte=1.0,
        ),
        # Aggregated detections are written to home-region storage.
        external_data=ExternalDataSpec(region="us-east-1", size_bytes=kb(32)),
    )
    def join_results(event):
        chunks = workflow.get_predecessor_data()
        counts: dict = {}
        for payload in chunks:
            for det in (payload.content or {}).get("detections", []):
                counts[det["label"]] = counts.get(det["label"], 0) + 1
        return {"chunks": len(chunks), "objects": counts}

    return workflow


def make_input(size: str) -> Payload:
    check_input_size(size)
    return Payload(
        content={"video": f"clip-{size}.mp4", "size_bytes": INPUT_SIZES[size],
                 "chunks": N_CHUNKS},
        size_bytes=INPUT_SIZES[size],
    )


register_app(
    BenchmarkApp(
        name=WORKFLOW_NAME,
        build_workflow=build_workflow,
        make_input=make_input,
        input_sizes=INPUT_SIZES,
        has_sync=True,
        has_conditional=False,
        n_stages=2 + N_CHUNKS,
        description="Chunked video object recognition with fan-out/join.",
    )
)
