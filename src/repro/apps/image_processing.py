"""Image Processing benchmark (paper §9.1 #3, from FunctionBench).

"A fan-out application that, given an image and a list of
transformations, performs those transformations in parallel."  A
prepare stage fans the image out to five short transformation stages
(flip, rotate, grayscale, resize, blur) that rejoin at a collect stage
— the classic transmission-heavy shape: the full image crosses to every
branch while each branch computes for well under a second, which is why
this workflow benefits least from geo-shifting in the worst-case
transmission scenario (§9.2 I2, Fig. 8).  Inputs: 222 KB / 2.4 MB.
"""

from __future__ import annotations

from repro.apps.base import (
    LARGE,
    SMALL,
    BenchmarkApp,
    check_input_size,
    register_app,
)
from repro.cloud.functions import WorkProfile
from repro.common.units import kb, mb
from repro.core.api import Payload, Workflow

WORKFLOW_NAME = "image_processing"

INPUT_SIZES = {SMALL: kb(222), LARGE: mb(2.4)}

TRANSFORMATIONS = ("flip", "rotate", "grayscale", "resize", "blur")


def build_workflow() -> Workflow:
    workflow = Workflow(name=WORKFLOW_NAME, version="1.0")

    @workflow.serverless_function(
        name="prepare",
        memory_mb=1769,
        entry_point=True,
        # Decode + validation: quick, linear in image size.
        profile=WorkProfile(
            base_seconds=0.15,
            seconds_per_mb=0.25,
            cpu_utilization=0.8,
            output_bytes_per_input_byte=1.0,
        ),
    )
    def prepare(event):
        image = event or {}
        size = image.get("size_bytes", 0)
        for transformation in image.get("transformations", TRANSFORMATIONS):
            workflow.invoke_serverless_function(
                Payload(
                    content={"op": transformation, "size_bytes": size},
                    size_bytes=size,
                ),
                transform,
            )

    @workflow.serverless_function(
        name="transform",
        memory_mb=1769,
        max_instances=len(TRANSFORMATIONS),
        # Each transformation is short-lived (§9.4 "very short-running
        # workflows such as Image Processing").
        profile=WorkProfile(
            base_seconds=0.25,
            seconds_per_mb=0.5,
            cpu_utilization=0.85,
            output_bytes_per_input_byte=0.9,
        ),
    )
    def transform(event):
        job = event or {}
        result = {
            "op": job.get("op", "noop"),
            "size_bytes": job.get("size_bytes", 0) * 0.9,
        }
        workflow.invoke_serverless_function(
            Payload(content=result, size_bytes=result["size_bytes"]),
            collect,
        )

    @workflow.serverless_function(
        name="collect",
        memory_mb=1769,
        profile=WorkProfile(
            base_seconds=0.2,
            seconds_per_mb=0.1,
            cpu_utilization=0.6,
            output_bytes_per_input_byte=1.0,
        ),
    )
    def collect(event):
        results = workflow.get_predecessor_data()
        return {
            "applied": sorted(p.content["op"] for p in results if p.content),
            "n_results": len(results),
        }

    return workflow


def make_input(size: str) -> Payload:
    check_input_size(size)
    return Payload(
        content={
            "image": f"photo-{size}.jpg",
            "size_bytes": INPUT_SIZES[size],
            "transformations": list(TRANSFORMATIONS),
        },
        size_bytes=INPUT_SIZES[size],
    )


register_app(
    BenchmarkApp(
        name=WORKFLOW_NAME,
        build_workflow=build_workflow,
        make_input=make_input,
        input_sizes=INPUT_SIZES,
        has_sync=True,
        has_conditional=False,
        n_stages=2 + len(TRANSFORMATIONS),
        description="Parallel image transformation fan-out (FunctionBench).",
    )
)
