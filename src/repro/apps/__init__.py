"""The five benchmark workflows of the paper's evaluation (§9.1, Table 1).

| Benchmark              | Structure        | Sync | Cond | Inputs          |
|------------------------|------------------|------|------|-----------------|
| DNA Visualization      | single node      |  no  |  no  | 69 KB / 1.1 MB  |
| RAG Data Ingestion     | 2-stage pipeline |  no  |  no  | 33 / 115 pages  |
| Image Processing       | fan-out + join   | yes  |  no  | 222 KB / 2.4 MB |
| Text2Speech Censoring  | diamond + cond   | yes  | yes  | 1 KB / 12 KB    |
| Video Analytics        | split/process/join | yes |  no | 206 KB / 2.4 MB |

Each module exposes ``build_workflow()`` returning a *fresh*
:class:`~repro.core.api.Workflow` (handlers are closures over it, so
parallel experiments never share state) and ``make_input(size)``
producing a small/large payload per Table 1.
"""

from repro.apps.base import ALL_APPS, BenchmarkApp, get_app
from repro.apps import (  # noqa: F401  (registration side effects)
    dna_visualization,
    image_processing,
    rag_ingestion,
    text2speech,
    video_analytics,
)

__all__ = ["ALL_APPS", "BenchmarkApp", "get_app"]
