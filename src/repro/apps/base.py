"""Benchmark application registry and shared helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.core.api import Payload, Workflow
from repro.model.config import Tolerances, WorkflowConfig

#: Table 1 input sizes in bytes (pages are materialised at ~60 KB/page,
#: a typical text-heavy PDF density).
SMALL = "small"
LARGE = "large"


@dataclass(frozen=True)
class BenchmarkApp:
    """Registry entry for one benchmark workflow.

    Attributes:
        name: Workflow name (stable across builds).
        build_workflow: Factory producing a fresh :class:`Workflow`.
        make_input: ``size -> Payload`` for "small" / "large" (Table 1).
        input_sizes: The Table 1 byte sizes per label.
        has_sync / has_conditional: Structural facts (Table 1 columns).
        n_stages: DAG node count after fan-out expansion.
        description: One-line summary for reports.
    """

    name: str
    build_workflow: Callable[[], Workflow]
    make_input: Callable[[str], Payload]
    input_sizes: Mapping[str, float]
    has_sync: bool
    has_conditional: bool
    n_stages: int
    description: str


ALL_APPS: Dict[str, BenchmarkApp] = {}


def register_app(app: BenchmarkApp) -> BenchmarkApp:
    if app.name in ALL_APPS:
        raise ValueError(f"benchmark app {app.name!r} already registered")
    ALL_APPS[app.name] = app
    return app


def get_app(name: str) -> BenchmarkApp:
    try:
        return ALL_APPS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_APPS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def default_config(
    home_region: str = "us-east-1",
    priority: str = "carbon",
    tolerances: Optional[Tolerances] = None,
    benchmarking_fraction: float = 0.10,
    **kwargs,
) -> WorkflowConfig:
    """The manifest the evaluation deploys every benchmark with (§9.1:
    home region us-east-1, carbon priority)."""
    return WorkflowConfig(
        home_region=home_region,
        priority=priority,
        tolerances=tolerances or Tolerances(),
        benchmarking_fraction=benchmarking_fraction,
        **kwargs,
    )


def check_input_size(size: str) -> str:
    if size not in (SMALL, LARGE):
        raise ValueError(f"input size must be 'small' or 'large', got {size!r}")
    return size
