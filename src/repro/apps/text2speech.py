"""Text2Speech Censoring benchmark (paper §9.1 #4, §2.4, Fig. 3).

Turns text into censored speech: an upload/validation stage (regulation
sensitive — pinned to US regions via function-level compliance
constraints, exactly the Fig. 3 scenario) fans into a compute-heavy
text-to-speech + wav-conversion path (the critical path) and a light
profanity-detection path off the critical path; both join at a
censoring sync node.  The profanity→censoring edge is *conditional*:
when no profanity is found the edge is skipped and the sync node fires
on the audio alone (Eq. 4.1's "at least one taken").

Inputs: 1 KB / 12 KB of text (Table 1); the synthesised audio is ~100x
the text size, so the intermediate data dwarfs the input.
"""

from __future__ import annotations

from repro.apps.base import (
    LARGE,
    SMALL,
    BenchmarkApp,
    check_input_size,
    register_app,
)
from repro.cloud.functions import WorkProfile
from repro.common.units import kb
from repro.core.api import ExternalDataSpec, Payload, Workflow

WORKFLOW_NAME = "text2speech_censoring"

INPUT_SIZES = {SMALL: kb(1), LARGE: kb(12)}

#: Words the profanity detector flags (kept comically tame).
PROFANITY = frozenset({"darn", "heck", "dang"})
#: Synthesised wav bytes per input text byte.
AUDIO_EXPANSION = 100.0


def build_workflow() -> Workflow:
    workflow = Workflow(name=WORKFLOW_NAME, version="1.0")

    @workflow.serverless_function(
        name="upload",
        memory_mb=1769,
        entry_point=True,
        # Regulation-sensitive validation: must stay on US soil (Fig. 3
        # "Regulation Sensitive"); the rest of the workflow is free to
        # move — the compliance scenario §9.2 I3 highlights.
        regions_and_providers={
            "allowed_regions": [
                {"region": "us-east-1"},
                {"region": "us-east-2"},
                {"region": "us-west-1"},
                {"region": "us-west-2"},
            ]
        },
        profile=WorkProfile(
            base_seconds=0.3,
            seconds_per_mb=2.0,
            cpu_utilization=0.6,
            output_bytes_per_input_byte=1.0,
        ),
    )
    def upload(event):
        doc = event or {}
        text = doc.get("text", "")
        size = doc.get("size_bytes", len(text))
        body = Payload(content={"text": text, "size_bytes": size}, size_bytes=size)
        workflow.invoke_serverless_function(body, text2speech)
        workflow.invoke_serverless_function(body, profanity_detection)

    @workflow.serverless_function(
        name="text2speech",
        memory_mb=3538,
        # Speech synthesis is the expensive, critical-path stage (§2.4).
        profile=WorkProfile(
            base_seconds=3.0,
            seconds_per_mb=180.0,  # text inputs are tiny; scale hard
            cpu_utilization=0.9,
            output_bytes_per_input_byte=AUDIO_EXPANSION,
        ),
    )
    def text2speech(event):
        doc = event or {}
        size = doc.get("size_bytes", 0)
        audio = Payload(
            content={"format": "pcm", "text_bytes": size},
            size_bytes=size * AUDIO_EXPANSION,
        )
        workflow.invoke_serverless_function(audio, conversion)

    @workflow.serverless_function(
        name="conversion",
        memory_mb=1769,
        profile=WorkProfile(
            base_seconds=0.8,
            seconds_per_mb=0.6,
            cpu_utilization=0.8,
            output_bytes_per_input_byte=1.0,
        ),
    )
    def conversion(event):
        audio = event or {}
        wav = Payload(
            content={"format": "wav", "text_bytes": audio.get("text_bytes", 0)},
            size_bytes=audio.get("text_bytes", 0) * AUDIO_EXPANSION,
        )
        workflow.invoke_serverless_function(wav, censoring)

    @workflow.serverless_function(
        name="profanity_detection",
        memory_mb=1769,
        # Light and off the critical path: the prime offloading target
        # (Fig. 3 "Can be Offloaded").
        profile=WorkProfile(
            base_seconds=0.5,
            seconds_per_mb=15.0,
            cpu_utilization=0.7,
            output_bytes_per_input_byte=0.05,
        ),
    )
    def profanity_detection(event):
        doc = event or {}
        words = str(doc.get("text", "")).lower().split()
        hits = sorted({w.strip(".,!?") for w in words} & PROFANITY)
        mask = Payload(
            content={"profanities": hits}, size_bytes=kb(0.2) + 16 * len(hits)
        )
        # Conditional edge: only censor when something was found (§8).
        workflow.invoke_serverless_function(mask, censoring, bool(hits))

    @workflow.serverless_function(
        name="censoring",
        memory_mb=1769,
        profile=WorkProfile(
            base_seconds=1.2,
            seconds_per_mb=0.4,
            cpu_utilization=0.8,
            output_bytes_per_input_byte=1.0,
        ),
        # The final artefact lands in home-region storage.
        external_data=ExternalDataSpec(region="us-east-1", size_bytes=kb(64)),
    )
    def censoring(event):
        inputs = workflow.get_predecessor_data()
        audio_bytes = 0.0
        profanities = []
        for payload in inputs:
            content = payload.content or {}
            if content.get("format") == "wav":
                audio_bytes = payload.size_bytes
            if "profanities" in content:
                profanities = content["profanities"]
        return {"censored": len(profanities), "audio_bytes": audio_bytes}

    return workflow


def make_input(size: str, with_profanity: bool = True) -> Payload:
    check_input_size(size)
    words = ["the", "quick", "brown", "fox", "spoke", "clearly"]
    if with_profanity:
        words.append("darn")
    text = " ".join(words)
    return Payload(
        content={"text": text, "size_bytes": INPUT_SIZES[size]},
        size_bytes=INPUT_SIZES[size],
    )


register_app(
    BenchmarkApp(
        name=WORKFLOW_NAME,
        build_workflow=build_workflow,
        make_input=make_input,
        input_sizes=INPUT_SIZES,
        has_sync=True,
        has_conditional=True,
        n_stages=5,
        description="Text-to-speech with parallel profanity censoring (Fig. 3).",
    )
)
