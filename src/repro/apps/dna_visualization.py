"""DNA Visualization benchmark (paper §9.1 #1, from SeBS).

"A simple single-step workflow that, given a DNA sequence file,
generates the corresponding visualization."  One compute-heavy stage;
no synchronisation, no conditionals.  Inputs: 69 KB / 1.1 MB sequence
files (Table 1).  The rendered visualization is written back to storage
at the home region (§9.1 fairness rule 1), so offloading the stage pays
the result's return trip.
"""

from __future__ import annotations

from repro.apps.base import (
    LARGE,
    SMALL,
    BenchmarkApp,
    check_input_size,
    register_app,
)
from repro.cloud.functions import WorkProfile
from repro.common.units import kb, mb
from repro.core.api import ExternalDataSpec, Payload, Workflow

WORKFLOW_NAME = "dna_visualization"

INPUT_SIZES = {SMALL: kb(69), LARGE: mb(1.1)}

_BASES = "ACGT"


def _synthetic_sequence(n_bases: int, seed: int = 7) -> str:
    """A small deterministic DNA string for the real in-handler logic."""
    state = seed
    out = []
    for _ in range(n_bases):
        state = (state * 1103515245 + 12345) % (2**31)
        out.append(_BASES[state % 4])
    return "".join(out)


def build_workflow() -> Workflow:
    """Create a fresh workflow instance with its single handler."""
    workflow = Workflow(name=WORKFLOW_NAME, version="1.0")

    @workflow.serverless_function(
        name="visualize",
        memory_mb=1769,
        entry_point=True,
        # ~2 s on the small input, ~6 s on the large one: squiggle-style
        # visualisation is CPU-bound in sequence length.
        profile=WorkProfile(
            base_seconds=1.8,
            seconds_per_mb=4.0,
            cpu_utilization=0.9,
            output_bytes_per_input_byte=1.6,
        ),
        # Visualization artefact written back to home-region storage.
        external_data=ExternalDataSpec(region="us-east-1", size_bytes=kb(120)),
    )
    def visualize(event):
        sequence = (event or {}).get("sequence", "")
        counts = {base: sequence.count(base) for base in _BASES}
        gc_content = (
            (counts["G"] + counts["C"]) / len(sequence) if sequence else 0.0
        )
        # Terminal stage: the result is the workflow output; nothing to
        # invoke downstream.
        return {"gc_content": gc_content, "counts": counts}

    return workflow


def make_input(size: str) -> Payload:
    check_input_size(size)
    return Payload(
        content={"sequence": _synthetic_sequence(512), "file": f"{size}.fasta"},
        size_bytes=INPUT_SIZES[size],
    )


register_app(
    BenchmarkApp(
        name=WORKFLOW_NAME,
        build_workflow=build_workflow,
        make_input=make_input,
        input_sizes=INPUT_SIZES,
        has_sync=False,
        has_conditional=False,
        n_stages=1,
        description="Single-step DNA sequence visualization (SeBS).",
    )
)
