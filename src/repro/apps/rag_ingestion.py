"""RAG Data Ingestion benchmark (paper §9.1 #2, from UBC-CIC
document-chat).

"A two-stage pipeline that, given an input PDF document, extracts
document metadata and then generates bedrock embeddings for use as part
of a 'Document Chat' LLM application."  A linear two-node chain; the
embedding stage calls a managed model endpoint pinned near the home
region (§9.1 fairness rule 1), so offloading it drags the chunked text
across regions.  Inputs: 33 / 115 pages (Table 1), materialised at
~60 KB/page.
"""

from __future__ import annotations

from repro.apps.base import (
    LARGE,
    SMALL,
    BenchmarkApp,
    check_input_size,
    register_app,
)
from repro.cloud.functions import WorkProfile
from repro.common.units import kb, mb
from repro.core.api import ExternalDataSpec, Payload, Workflow

WORKFLOW_NAME = "rag_ingestion"

PAGES = {SMALL: 33, LARGE: 115}
BYTES_PER_PAGE = kb(60)
INPUT_SIZES = {label: pages * BYTES_PER_PAGE for label, pages in PAGES.items()}


def build_workflow() -> Workflow:
    workflow = Workflow(name=WORKFLOW_NAME, version="1.0")

    @workflow.serverless_function(
        name="extract_metadata",
        memory_mb=1769,
        entry_point=True,
        # PDF parsing: mostly linear in document size.
        profile=WorkProfile(
            base_seconds=0.6,
            seconds_per_mb=1.2,
            cpu_utilization=0.75,
            output_bytes_per_input_byte=0.85,  # extracted text < raw PDF
        ),
    )
    def extract_metadata(event):
        doc = event or {}
        pages = doc.get("pages", 0)
        chunks = max(1, pages // 2)
        metadata = {
            "title": doc.get("title", "untitled"),
            "pages": pages,
            "chunks": chunks,
        }
        workflow.invoke_serverless_function(
            Payload(
                content=metadata,
                size_bytes=doc.get("size_bytes", 0) * 0.85,
            ),
            generate_embeddings,
        )

    @workflow.serverless_function(
        name="generate_embeddings",
        memory_mb=3538,
        # Embedding calls dominate: roughly constant per chunk of text.
        profile=WorkProfile(
            base_seconds=1.5,
            seconds_per_mb=2.8,
            cpu_utilization=0.55,
            output_bytes_per_input_byte=0.4,  # dense vectors
        ),
        # The Bedrock-style endpoint + vector store live near home.
        external_data=ExternalDataSpec(region="us-east-1", size_bytes=kb(256)),
    )
    def generate_embeddings(event):
        metadata = event or {}
        n_chunks = metadata.get("chunks", 1)
        # Terminal stage: vectors land in the vector store.
        return {"embedded_chunks": n_chunks, "dim": 1536}

    return workflow


def make_input(size: str) -> Payload:
    check_input_size(size)
    pages = PAGES[size]
    return Payload(
        content={
            "title": f"doc-{size}",
            "pages": pages,
            "size_bytes": INPUT_SIZES[size],
        },
        size_bytes=INPUT_SIZES[size],
    )


register_app(
    BenchmarkApp(
        name=WORKFLOW_NAME,
        build_workflow=build_workflow,
        make_input=make_input,
        input_sizes=INPUT_SIZES,
        has_sync=False,
        has_conditional=False,
        n_stages=2,
        description="PDF metadata extraction + embedding generation pipeline.",
    )
)
