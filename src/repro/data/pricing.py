"""Per-region price tables (AWS Price List substitute).

The cost model (§7.1) charges: Lambda GB-second compute + per-invocation
fee, SNS publishes, DynamoDB accesses introduced by the framework, and
inter-region egress.  Prices here are the public AWS list prices as of
the paper's period; regional multipliers reflect that Canadian/US-West
regions price slightly above us-east-1 (§2.3 Cost).  The free tier is not
modelled, matching the paper ("we do not consider the implications of the
free tier").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.data.regions import Region, get_region


@dataclass(frozen=True)
class RegionPrices:
    """All unit prices the cost model needs for one region (USD)."""

    lambda_gb_second: float
    lambda_invocation: float
    sns_per_million: float
    dynamodb_per_million_write: float
    dynamodb_per_million_read: float
    egress_per_gb: float

    @property
    def sns_publish(self) -> float:
        """USD per single SNS publish."""
        return self.sns_per_million / 1e6

    @property
    def dynamodb_write(self) -> float:
        """USD per single write request unit."""
        return self.dynamodb_per_million_write / 1e6

    @property
    def dynamodb_read(self) -> float:
        """USD per single read request unit."""
        return self.dynamodb_per_million_read / 1e6


# us-east-1 list prices (x86, on-demand).
_BASE = RegionPrices(
    lambda_gb_second=1.66667e-5,
    lambda_invocation=2.0e-7,
    sns_per_million=0.50,
    dynamodb_per_million_write=1.25,
    dynamodb_per_million_read=0.25,
    egress_per_gb=0.09,
)

# Regional price multipliers relative to us-east-1.
_MULTIPLIERS: Dict[str, float] = {
    "us-east-1": 1.00,
    "us-east-2": 1.00,
    "us-west-1": 1.12,
    "us-west-2": 1.00,
    "ca-central-1": 1.06,
    "ca-west-1": 1.10,
}


def _scaled(multiplier: float) -> RegionPrices:
    return RegionPrices(
        lambda_gb_second=_BASE.lambda_gb_second * multiplier,
        lambda_invocation=_BASE.lambda_invocation * multiplier,
        sns_per_million=_BASE.sns_per_million * multiplier,
        dynamodb_per_million_write=_BASE.dynamodb_per_million_write * multiplier,
        dynamodb_per_million_read=_BASE.dynamodb_per_million_read * multiplier,
        egress_per_gb=_BASE.egress_per_gb,
    )


class PricingSource:
    """Price lookups per region, with optional per-region overrides."""

    def __init__(self, overrides: Dict[str, RegionPrices] | None = None):
        self._prices: Dict[str, RegionPrices] = {
            name: _scaled(mult) for name, mult in _MULTIPLIERS.items()
        }
        if overrides:
            for name, prices in overrides.items():
                get_region(name)  # validate the region exists
                self._prices[name] = prices

    def prices(self, region: "Region | str") -> RegionPrices:
        name = region.name if isinstance(region, Region) else region
        try:
            return self._prices[name]
        except KeyError:
            known = ", ".join(sorted(self._prices))
            raise KeyError(
                f"no prices for region {name!r}; known: {known}"
            ) from None

    def egress_per_gb(self, src: "Region | str", dst: "Region | str") -> float:
        """Egress price in USD/GB for a transfer from ``src`` to ``dst``.

        Intra-region traffic is free; cross-region transfers pay the
        source region's egress rate (AWS bills the sender).
        """
        src_name = src.name if isinstance(src, Region) else src
        dst_name = dst.name if isinstance(dst, Region) else dst
        if src_name == dst_name:
            return 0.0
        return self.prices(src_name).egress_per_gb
