"""Open-loop arrival-trace generation for fleet-scale serving.

The paper's client population is open-loop: users fire requests at a
workflow independently of whether earlier requests finished (§2.1's
image-processing pipeline sees whatever its front-end sends).  This
module synthesises such traffic as an inhomogeneous Poisson process —
a base rate modulated by a deterministic-given-seed intensity profile —
and injects it into a :class:`~repro.core.executor.CaribouExecutor`
without materialising millions of heap entries.

Generation is vectorised: the horizon is cut into fixed bins, each bin
gets a Poisson event count at its modulated rate, and events are placed
uniformly within their bin (exact for piecewise-constant intensity).
All randomness flows through a single numpy ``Generator`` obtained from
the shared :class:`~repro.common.rng.RngRegistry`, so a trace is a pure
function of ``(seed, stream name, spec)`` — same inputs, byte-identical
arrival times, on any machine.

Injection is a self-rescheduling chain (:class:`OpenLoopInjector`): one
pending event per workflow at any instant, each injection scheduling
the next, so the simulator heap stays O(workflows) rather than
O(requests) no matter how long the trace is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from repro.core.api import Payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.executor import CaribouExecutor

__all__ = [
    "WorkloadSpec",
    "ArrivalTrace",
    "OpenLoopInjector",
    "generate_arrivals",
    "generate_trace",
    "PROFILES",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one open-loop arrival trace.

    Args:
        base_rate_per_s: Long-run mean request rate before modulation.
        duration_s: Horizon length in (virtual) seconds.
        profile: Intensity profile name; see :data:`PROFILES`.
        bin_s: Width of the piecewise-constant intensity bins.  One
            minute resolves every preset profile's fastest feature
            (flash-crowd ramps) while keeping generation vectorised.
        start_s: Virtual time of the trace origin (arrivals are emitted
            in ``[start_s, start_s + duration_s)``).
    """

    base_rate_per_s: float
    duration_s: float
    profile: str = "diurnal"
    bin_s: float = 60.0
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_per_s < 0:
            raise ValueError(f"base_rate_per_s must be >= 0, got {self.base_rate_per_s}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.bin_s <= 0:
            raise ValueError(f"bin_s must be > 0, got {self.bin_s}")
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; choose from {sorted(PROFILES)}"
            )


# ---------------------------------------------------------------- profiles
# A profile maps bin midpoints (seconds since trace start) to a rate
# multiplier, drawing any shape randomness (burst times, flash onset)
# from the caller's Generator so the whole trace stays seed-determined.

def _steady(mid_s: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    return np.ones_like(mid_s)


def _diurnal(mid_s: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    # Sinusoidal day shape peaking mid-afternoon (hour 15), floored so
    # the overnight trough keeps a trickle of traffic (§7.1's diurnal
    # invocation profile has the same property).
    hour = (mid_s / 3600.0) % 24.0
    return np.maximum(1.0 + 0.8 * np.sin(2.0 * np.pi * (hour - 9.0) / 24.0), 0.1)


def _bursty(mid_s: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    # Diurnal baseline plus short random surges: on average one burst
    # per half hour, each 1-5 minutes long at 3-8x the baseline.
    mult = _diurnal(mid_s, rng)
    duration = float(mid_s[-1]) if len(mid_s) else 0.0
    n_bursts = int(rng.poisson(max(duration / 1800.0, 1.0)))
    for _ in range(n_bursts):
        onset = rng.uniform(0.0, duration)
        length = rng.uniform(60.0, 300.0)
        height = rng.uniform(3.0, 8.0)
        window = (mid_s >= onset) & (mid_s < onset + length)
        mult = np.where(window, mult * height, mult)
    return mult


def _flash_crowd(mid_s: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    # Steady baseline with one flash event: a 2-minute linear ramp to
    # ~20x, a 5-minute plateau, then exponential decay (tau = 10 min).
    mult = np.ones_like(mid_s)
    duration = float(mid_s[-1]) if len(mid_s) else 0.0
    onset = rng.uniform(0.1 * duration, 0.7 * duration)
    peak = rng.uniform(15.0, 25.0)
    ramp_s, hold_s, tau_s = 120.0, 300.0, 600.0
    since = mid_s - onset
    ramp = 1.0 + (peak - 1.0) * np.clip(since / ramp_s, 0.0, 1.0)
    decay = 1.0 + (peak - 1.0) * np.exp(-(since - ramp_s - hold_s) / tau_s)
    mult = np.where(since >= 0, np.where(since <= ramp_s + hold_s, ramp, decay), mult)
    return mult


#: Intensity profiles by name.  Each maps (bin midpoints, rng) -> rate
#: multipliers; add entries here to extend the generator.
PROFILES: Dict[str, Callable[[np.ndarray, np.random.Generator], np.ndarray]] = {
    "steady": _steady,
    "diurnal": _diurnal,
    "bursty": _bursty,
    "flash_crowd": _flash_crowd,
}


def generate_arrivals(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    """Draw one arrival trace: sorted float64 timestamps in seconds.

    Inhomogeneous Poisson via per-bin thinning-free sampling: each bin's
    count is Poisson(rate * bin_s) at the profile-modulated rate, and
    events land uniformly inside their bin.  Fully vectorised — a
    day-long trace at thousands of requests/s generates in milliseconds.
    """
    n_bins = int(np.ceil(spec.duration_s / spec.bin_s))
    edges = np.arange(n_bins, dtype=np.float64) * spec.bin_s
    widths = np.minimum(spec.bin_s, spec.duration_s - edges)
    mids = edges + widths / 2.0
    mult = PROFILES[spec.profile](mids, rng)
    counts = rng.poisson(spec.base_rate_per_s * mult * widths)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.float64)
    # Place every event uniformly within its bin, then one global sort.
    bin_of_event = np.repeat(np.arange(n_bins), counts)
    offsets = rng.random(total) * widths[bin_of_event]
    times = spec.start_s + edges[bin_of_event] + offsets
    times.sort(kind="stable")
    return times


class ArrivalTrace:
    """A generated arrival trace plus its provenance."""

    __slots__ = ("spec", "times")

    def __init__(self, spec: WorkloadSpec, times: np.ndarray):
        self.spec = spec
        self.times = times

    def __len__(self) -> int:
        return len(self.times)

    @property
    def mean_rate_per_s(self) -> float:
        """Realised request rate over the horizon."""
        return len(self.times) / self.spec.duration_s

    def shifted(self, start_s: float) -> "ArrivalTrace":
        """The same arrivals re-anchored at a new virtual start time."""
        delta = start_s - self.spec.start_s
        return ArrivalTrace(replace(self.spec, start_s=start_s), self.times + delta)


def generate_trace(
    spec: WorkloadSpec, rng: np.random.Generator
) -> ArrivalTrace:
    """Generate a trace for ``spec`` using ``rng`` (pass a named stream
    from the environment's :class:`~repro.common.rng.RngRegistry`, e.g.
    ``env.rng.get("workload:my-app")``, for reproducibility)."""
    return ArrivalTrace(spec, generate_arrivals(spec, rng))


class OpenLoopInjector:
    """Feeds an arrival trace into an executor, one pending event at a time.

    Scheduling all N arrivals up front would put N entries in the
    simulator heap; instead each injection schedules its successor, so
    the injector holds exactly one heap slot regardless of trace length
    (the property that lets a fleet of hundreds of workflows serve
    millions of requests through one event loop).
    """

    def __init__(
        self,
        executor: "CaribouExecutor",
        trace: ArrivalTrace,
        payload_factory: Optional[Callable[[int], Payload]] = None,
        force_home: bool = False,
    ):
        self._executor = executor
        self._env = executor.deployed.cloud.env
        self._times = trace.times
        self._payload_factory = payload_factory or (lambda i: Payload())
        self._force_home = force_home
        self._next = 0
        self.injected = 0
        self._started = False

    @property
    def remaining(self) -> int:
        """Arrivals not yet injected."""
        return len(self._times) - self._next

    def start(self) -> None:
        """Arm the chain (idempotent).  Arrivals already in the past
        relative to the virtual clock are skipped, not replayed."""
        if self._started:
            return
        self._started = True
        now = self._env.now()
        # searchsorted: first arrival at or after the current clock.
        self._next = int(np.searchsorted(self._times, now, side="left"))
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._next >= len(self._times):
            return
        self._env.schedule_at(float(self._times[self._next]), self._fire)

    def _fire(self) -> None:
        i = self._next
        self._next = i + 1
        # Schedule the successor before invoking so a re-entrant drain
        # inside invoke() cannot stall the chain.
        self._schedule_next()
        self._executor.invoke(
            self._payload_factory(i), force_home=self._force_home
        )
        self.injected += 1
