"""Synthetic invocation traces (Azure Functions 2021 trace substitute).

The paper drives its continuous evaluations (§9.5, §9.7) with the 2021
Azure Functions invocation trace and picks the 5th-percentile DAG from
the Azure characterisation (~1.6 K average daily invocations, §9.7).  The
real trace is not redistributable here, so we synthesise traces with the
properties those experiments depend on: a configurable mean daily rate, a
diurnal load curve, and bursty (over-dispersed) interarrivals, the
well-documented shape of production serverless traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.common.rng import RngRegistry


@dataclass(frozen=True)
class InvocationTrace:
    """An immutable sequence of invocation timestamps (seconds)."""

    timestamps: Sequence[float]
    duration_s: float

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self) -> Iterator[float]:
        return iter(self.timestamps)

    def count_in(self, start_s: float, end_s: float) -> int:
        """Number of invocations in ``[start_s, end_s)``."""
        arr = np.asarray(self.timestamps)
        return int(np.count_nonzero((arr >= start_s) & (arr < end_s)))

    def daily_counts(self) -> List[int]:
        """Invocations per simulated day."""
        days = max(1, int(math.ceil(self.duration_s / SECONDS_PER_DAY)))
        return [
            self.count_in(d * SECONDS_PER_DAY, (d + 1) * SECONDS_PER_DAY)
            for d in range(days)
        ]

    def hourly_counts(self) -> List[int]:
        """Invocations per simulated hour."""
        hrs = max(1, int(math.ceil(self.duration_s / SECONDS_PER_HOUR)))
        return [
            self.count_in(h * SECONDS_PER_HOUR, (h + 1) * SECONDS_PER_HOUR)
            for h in range(hrs)
        ]

    def slice(self, start_s: float, end_s: float) -> "InvocationTrace":
        """Sub-trace covering ``[start_s, end_s)``, re-based to t=0."""
        arr = np.asarray(self.timestamps)
        sel = arr[(arr >= start_s) & (arr < end_s)] - start_s
        return InvocationTrace(tuple(float(t) for t in sel), end_s - start_s)


def azure_like_trace(
    days: float = 7.0,
    mean_daily_invocations: float = 1600.0,
    diurnal_amplitude: float = 0.5,
    peak_hour: float = 14.0,
    burstiness: float = 2.0,
    seed: int = 0,
    stream: str = "trace",
) -> InvocationTrace:
    """Generate a bursty, diurnal invocation trace.

    Args:
        days: Trace length in days.
        mean_daily_invocations: Average invocations per day (§9.7 uses
            ~1.6 K for the 5th-percentile Azure DAG).
        diurnal_amplitude: Relative amplitude of the daily load cycle
            (0 == uniform; 0.5 == rate swings ±50 % around the mean).
        peak_hour: Hour of day at which load peaks.
        burstiness: Squared coefficient of variation of interarrivals;
            1.0 is Poisson, larger values are burstier (gamma renewal
            process, the standard over-dispersed traffic model).
        seed: Experiment seed.
        stream: RNG stream name, so multiple traces from one seed differ.

    Returns:
        An :class:`InvocationTrace` with timestamps sorted ascending.
    """
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    if mean_daily_invocations <= 0:
        raise ValueError("mean_daily_invocations must be positive")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    if burstiness <= 0:
        raise ValueError("burstiness must be positive")

    rng = RngRegistry(seed).get(f"trace:{stream}")
    duration = days * SECONDS_PER_DAY
    base_rate = mean_daily_invocations / SECONDS_PER_DAY  # events/sec

    # Gamma renewal process with time-varying rate via thinning-free
    # rescaling: draw interarrivals in "unit-rate operational time" and
    # invert the cumulative rate function numerically on an hourly grid.
    shape = 1.0 / burstiness
    # Hourly rate curve.
    n_hours = int(math.ceil(days * 24))
    hours = np.arange(n_hours + 1, dtype=float)
    rate = base_rate * (
        1.0
        + diurnal_amplitude * np.cos(2.0 * math.pi * (hours - peak_hour) / 24.0)
    )
    cum = np.concatenate([[0.0], np.cumsum(rate[:-1] * SECONDS_PER_HOUR)])
    total_mass = cum[-1] + rate[-1] * 0.0  # mass up to the last grid point

    # Draw enough unit-rate gamma interarrivals to cover the total mass.
    expected = int(total_mass) + 1
    draws = rng.gamma(shape, scale=burstiness, size=max(expected * 2, 64))
    arrival_mass = np.cumsum(draws)
    while arrival_mass[-1] < total_mass:
        extra = rng.gamma(shape, scale=burstiness, size=len(draws))
        arrival_mass = np.concatenate([arrival_mass, arrival_mass[-1] + np.cumsum(extra)])
    arrival_mass = arrival_mass[arrival_mass < total_mass]

    # Invert the cumulative-rate function: mass -> wall-clock seconds.
    grid_times = hours * SECONDS_PER_HOUR
    timestamps = np.interp(arrival_mass, cum, grid_times[: len(cum)])
    timestamps = timestamps[timestamps < duration]
    return InvocationTrace(tuple(float(t) for t in timestamps), duration)


def uniform_trace(
    days: float, invocations_per_day: float, seed: int = 0
) -> InvocationTrace:
    """Evenly spaced invocations (the paper's §9.2 uniform pattern)."""
    total = int(round(days * invocations_per_day))
    if total <= 0:
        return InvocationTrace((), days * SECONDS_PER_DAY)
    duration = days * SECONDS_PER_DAY
    step = duration / total
    # Offset by half a step so invocations fall inside the window.
    return InvocationTrace(
        tuple((i + 0.5) * step for i in range(total)), duration
    )
