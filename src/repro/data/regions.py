"""Cloud region catalogue.

The paper evaluates on the North American AWS regions (§9.1): us-east-1,
us-west-1, us-west-2, and ca-central-1, with us-east-2 and ca-west-1
mentioned as the remaining public NA regions (§2.1).  Each region carries
its coordinates (for the geodesic latency model), the jurisdiction it
falls under (for compliance constraints), and the grid zone its
datacenters draw power from (for carbon intensity lookups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Region:
    """A cloud provider region.

    Attributes:
        name: Provider-style region id, e.g. ``"us-east-1"``.
        provider: Cloud provider the region belongs to.
        latitude / longitude: Approximate datacenter coordinates.
        country: ISO country code, used for data-residency constraints.
        grid_zone: Electrical grid the region is attached to.  Regions on
            the same grid share a carbon-intensity series (us-east-1 and
            us-east-2 per §2.1).
    """

    name: str
    provider: str
    latitude: float
    longitude: float
    country: str
    grid_zone: str

    def __str__(self) -> str:
        return self.name


def _r(name: str, lat: float, lon: float, country: str, grid: str) -> Region:
    return Region(
        name=name,
        provider="aws",
        latitude=lat,
        longitude=lon,
        country=country,
        grid_zone=grid,
    )


#: The six public AWS North American regions (§2.1).  us-east-1/us-east-2
#: share the PJM grid; ca-west-1 (Calgary) rolled out in 2024 and is kept
#: in the catalogue but excluded from the paper's four-region evaluation.
NORTH_AMERICA: Tuple[Region, ...] = (
    _r("us-east-1", 38.9, -77.5, "US", "US-PJM"),
    _r("us-east-2", 40.0, -83.0, "US", "US-PJM"),
    _r("us-west-1", 37.4, -121.9, "US", "US-CAISO"),
    _r("us-west-2", 45.8, -119.7, "US", "US-BPA"),
    _r("ca-central-1", 45.5, -73.6, "CA", "CA-QC"),
    _r("ca-west-1", 51.0, -114.1, "CA", "CA-AB"),
)

#: The four regions used throughout the paper's evaluation (§9.1).
EVALUATION_REGIONS: Tuple[str, ...] = (
    "us-east-1",
    "us-west-1",
    "us-west-2",
    "ca-central-1",
)

_BY_NAME: Dict[str, Region] = {r.name: r for r in NORTH_AMERICA}


def get_region(name: str) -> Region:
    """Look up a region by name, raising ``KeyError`` with guidance."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown region {name!r}; known regions: {known}") from None


def all_regions() -> Tuple[Region, ...]:
    """Every region in the catalogue."""
    return NORTH_AMERICA


def evaluation_regions() -> Tuple[Region, ...]:
    """The four regions the paper's evaluation is restricted to."""
    return tuple(_BY_NAME[n] for n in EVALUATION_REGIONS)
