"""Synthetic grid carbon-intensity traces (Electricity Maps substitute).

The paper uses hourly average carbon intensity (ACI, §7.1) per grid zone
from Electricity Maps for 2023-10-15..21 (§9.1) and shows July '23 to
January '24 in Fig. 2.  Offline, we synthesise traces per grid zone that
reproduce the properties the evaluation leans on:

* ``CA-QC`` (ca-central-1) is hydro-dominated and consistently low — the
  paper reports a 91.5 % lower average than us-east-1 over the
  experiment window.
* ``US-CAISO`` (us-west-1) has a solar-heavy grid: a pronounced diurnal
  swing with low intensity during the day and high at night, with a
  6.1 % lower average than us-east-1.
* ``US-PJM`` (us-east-1/us-east-2) has the highest average intensity
  with a mild diurnal pattern.
* ``US-BPA`` (us-west-2) has an average comparable to us-east-1 but a
  different (hydro/wind driven) short-term pattern.

Each trace is ``baseline × (1 + diurnal + seasonal) + AR(1) noise``,
generated deterministically from the grid-zone name, so every component
of the system sees the same "world" without sharing state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.common.clock import SECONDS_PER_HOUR
from repro.common.rng import RngRegistry
from repro.data.regions import Region, get_region


@dataclass(frozen=True)
class GridProfile:
    """Shape parameters for one grid zone's synthetic trace.

    Attributes:
        mean: Average intensity over the window, gCO2eq/kWh.
        diurnal_amplitude: Relative amplitude of the daily cycle
            (0.1 == ±10 % swing around the mean).
        diurnal_phase_hours: Hour of day at which intensity peaks.
        seasonal_amplitude: Relative amplitude of the slow (multi-week)
            component, visible in Fig. 2's six-month view.
        noise_std: Std-dev of the AR(1) noise, gCO2eq/kWh.
        noise_rho: AR(1) autocorrelation of the noise.
    """

    mean: float
    diurnal_amplitude: float
    diurnal_phase_hours: float
    seasonal_amplitude: float = 0.08
    noise_std: float = 8.0
    noise_rho: float = 0.85


# Calibrated so us-west-1 is ~6.1 % and ca-central-1 ~91.5 % below
# us-east-1 on average, us-west-2 comparable to us-east-1 (§9.2 I1), and
# the solar grid peaks at night (§2.1).
GRID_PROFILES: Dict[str, GridProfile] = {
    "US-PJM": GridProfile(mean=400.0, diurnal_amplitude=0.10, diurnal_phase_hours=19.0),
    "US-CAISO": GridProfile(
        mean=375.6, diurnal_amplitude=0.45, diurnal_phase_hours=23.0, noise_std=12.0
    ),
    "US-BPA": GridProfile(
        mean=392.0, diurnal_amplitude=0.18, diurnal_phase_hours=20.0, noise_std=15.0
    ),
    "CA-QC": GridProfile(
        mean=34.0, diurnal_amplitude=0.06, diurnal_phase_hours=18.0, noise_std=1.5
    ),
    "CA-AB": GridProfile(
        mean=520.0, diurnal_amplitude=0.08, diurnal_phase_hours=19.0, noise_std=10.0
    ),
}


def generate_carbon_trace(
    grid_zone: str,
    hours: int,
    seed: int = 0,
    start_hour_of_day: int = 0,
) -> np.ndarray:
    """Generate an hourly carbon-intensity series for ``grid_zone``.

    Args:
        grid_zone: Key into :data:`GRID_PROFILES`.
        hours: Length of the series.
        seed: Experiment seed; traces for different zones are independent
            streams derived from it.
        start_hour_of_day: Hour of day of sample 0 (UTC-ish; the paper's
            window starts at midnight).

    Returns:
        Array of ``hours`` values in gCO2eq/kWh, strictly positive.
    """
    if hours <= 0:
        raise ValueError(f"hours must be positive, got {hours}")
    try:
        profile = GRID_PROFILES[grid_zone]
    except KeyError:
        known = ", ".join(sorted(GRID_PROFILES))
        raise KeyError(
            f"unknown grid zone {grid_zone!r}; known zones: {known}"
        ) from None

    rng = RngRegistry(seed).get(f"carbon:{grid_zone}")
    t = np.arange(hours, dtype=float) + start_hour_of_day

    diurnal = profile.diurnal_amplitude * np.cos(
        2.0 * math.pi * (t - profile.diurnal_phase_hours) / 24.0
    )
    # Slow multi-week drift standing in for the seasonal trend in Fig. 2.
    seasonal = profile.seasonal_amplitude * np.sin(2.0 * math.pi * t / (24.0 * 45.0))

    noise = np.empty(hours)
    eps = rng.normal(0.0, profile.noise_std, size=hours)
    noise[0] = eps[0]
    for i in range(1, hours):
        noise[i] = profile.noise_rho * noise[i - 1] + eps[i]

    series = profile.mean * (1.0 + diurnal + seasonal) + noise
    # Grid intensity is physically positive; hydro grids can approach but
    # not cross zero.
    return np.clip(series, 1.0, None)


class CarbonIntensitySource:
    """Queryable carbon-intensity "world" shared by all components.

    Mirrors the Electricity Maps API surface that Caribou's Metrics
    Manager consumes: point-in-time ACI per region, window averages, and
    transmission-route intensity (§7.1 Eq. 7.5 uses the average carbon
    intensity of the route between source and destination; we follow the
    simplified methodology of averaging the two endpoint grids).
    """

    def __init__(
        self,
        hours: int = 24 * 7,
        seed: int = 0,
        overrides: Optional[Mapping[str, Sequence[float]]] = None,
    ):
        """Build the source.

        Args:
            hours: Length of the hourly horizon to materialise.
            seed: Experiment seed used for trace synthesis.
            overrides: Optional explicit hourly series per grid zone
                (used by tests and what-if studies); zones not listed
                fall back to the synthetic generator.
        """
        self._hours = hours
        self._seed = seed
        self._traces: Dict[str, np.ndarray] = {}
        overrides = dict(overrides or {})
        for zone in GRID_PROFILES:
            if zone in overrides:
                arr = np.asarray(overrides.pop(zone), dtype=float)
                if len(arr) < hours:
                    raise ValueError(
                        f"override for {zone} has {len(arr)} hours, need {hours}"
                    )
                self._traces[zone] = arr[:hours]
            else:
                self._traces[zone] = generate_carbon_trace(zone, hours, seed=seed)
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise KeyError(f"overrides for unknown grid zones: {unknown}")

    @property
    def horizon_hours(self) -> int:
        return self._hours

    def _zone_of(self, region: "Region | str") -> str:
        if isinstance(region, str):
            region = get_region(region)
        return region.grid_zone

    def trace(self, region: "Region | str") -> np.ndarray:
        """Full hourly series for the region's grid zone (read-only view)."""
        arr = self._traces[self._zone_of(region)]
        view = arr.view()
        view.flags.writeable = False
        return view

    def intensity_at(self, region: "Region | str", time_s: float) -> float:
        """ACI (gCO2eq/kWh) for ``region`` at simulated time ``time_s``.

        Times past the horizon wrap around, which keeps long-running
        experiments well-defined (the last week repeats).
        """
        hour = int(time_s // SECONDS_PER_HOUR) % self._hours
        return float(self._traces[self._zone_of(region)][hour])

    def intensity_at_hour(self, region: "Region | str", hour: int) -> float:
        """ACI at an integral hour index (wraps past the horizon)."""
        return float(self._traces[self._zone_of(region)][hour % self._hours])

    def average(
        self, region: "Region | str", start_hour: int = 0, end_hour: Optional[int] = None
    ) -> float:
        """Mean ACI over ``[start_hour, end_hour)``."""
        end = self._hours if end_hour is None else end_hour
        trace = self._traces[self._zone_of(region)]
        idx = np.arange(start_hour, end) % self._hours
        return float(trace[idx].mean())

    def route_intensity_at(
        self, src: "Region | str", dst: "Region | str", time_s: float
    ) -> float:
        """Average route intensity for a transfer from ``src`` to ``dst``.

        Simplified per §7.1: the mean of the endpoint grids' ACI.  An
        intra-region transfer therefore just sees its own grid.
        """
        a = self.intensity_at(src, time_s)
        b = self.intensity_at(dst, time_s)
        return (a + b) / 2.0

    def hourly_window(
        self, region: "Region | str", start_hour: int, hours: int
    ) -> np.ndarray:
        """``hours`` consecutive hourly values starting at ``start_hour``."""
        trace = self._traces[self._zone_of(region)]
        idx = np.arange(start_hour, start_hour + hours) % self._hours
        return trace[idx].copy()

    def zones(self) -> Iterable[str]:
        return self._traces.keys()
