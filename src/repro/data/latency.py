"""Inter-region latency grid (CloudPing substitute).

CloudPing publishes measured RTTs between AWS regions.  Offline we derive
round-trip times from great-circle distance: light in fibre covers about
200 km/ms one-way, and real routes are ~1.6x longer than geodesic, plus a
fixed per-hop processing overhead.  The resulting matrix lands within a
few ms of CloudPing's published numbers for the NA regions (e.g.
us-east-1 <-> us-west-1 ~62 ms, us-east-1 <-> ca-central-1 ~16 ms).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.data.regions import Region, all_regions, get_region

#: Effective one-way propagation speed in fibre, km per second.
_FIBRE_KM_PER_S = 200_000.0
#: Ratio of route length to great-circle distance.
_ROUTE_STRETCH = 1.6
#: Fixed processing/queueing overhead per direction, seconds.
_PER_HOP_OVERHEAD_S = 0.002
#: RTT within one region (between AZs / services), seconds.
_INTRA_REGION_RTT_S = 0.001


def great_circle_km(a: Region, b: Region) -> float:
    """Great-circle distance between two regions in km (haversine)."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat, dlon = lat2 - lat1, lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * 6371.0 * math.asin(math.sqrt(h))


class LatencySource:
    """Region-to-region RTT estimates in seconds."""

    def __init__(self) -> None:
        self._rtt: Dict[Tuple[str, str], float] = {}
        regions = all_regions()
        for a in regions:
            for b in regions:
                if a.name == b.name:
                    rtt = _INTRA_REGION_RTT_S
                else:
                    one_way = (
                        great_circle_km(a, b) * _ROUTE_STRETCH / _FIBRE_KM_PER_S
                        + _PER_HOP_OVERHEAD_S
                    )
                    rtt = 2.0 * one_way
                self._rtt[(a.name, b.name)] = rtt

    def rtt(self, src: "Region | str", dst: "Region | str") -> float:
        """Round-trip time between two regions in seconds."""
        src_name = src.name if isinstance(src, Region) else src
        dst_name = dst.name if isinstance(dst, Region) else dst
        get_region(src_name)
        get_region(dst_name)
        return self._rtt[(src_name, dst_name)]

    def one_way(self, src: "Region | str", dst: "Region | str") -> float:
        """One-way latency estimate (half the RTT)."""
        return self.rtt(src, dst) / 2.0
