"""Synthetic data sources standing in for the paper's external feeds.

The original system pulls live data from Electricity Maps (grid carbon
intensity), the AWS Price List (service prices), CloudPing (inter-region
latency), and replays the 2021 Azure Functions invocation trace.  None of
those are reachable offline, so this package synthesises equivalents that
are calibrated to the summary statistics the paper reports; see DESIGN.md
§2 for the substitution rationale.
"""

from repro.data.carbon import CarbonIntensitySource, generate_carbon_trace
from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.data.regions import NORTH_AMERICA, Region, get_region
from repro.data.traces import InvocationTrace, azure_like_trace
from repro.data.workload import (
    ArrivalTrace,
    OpenLoopInjector,
    WorkloadSpec,
    generate_arrivals,
    generate_trace,
)

__all__ = [
    "Region",
    "get_region",
    "NORTH_AMERICA",
    "CarbonIntensitySource",
    "generate_carbon_trace",
    "PricingSource",
    "LatencySource",
    "InvocationTrace",
    "azure_like_trace",
    "WorkloadSpec",
    "ArrivalTrace",
    "OpenLoopInjector",
    "generate_arrivals",
    "generate_trace",
]
