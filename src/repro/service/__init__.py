"""Caribou-as-a-service: durable job orchestration over the library.

The paper's Deployment Manager (Fig. 6) is a long-running *service*
that shepherds each workflow through analyze → solve → deploy →
monitor.  This package turns the reproduction library into that
service:

* :mod:`repro.service.jobstore` — one durable :class:`JobRecord` per
  submitted workflow with an explicit state machine
  (``SUBMITTED → ANALYZED → SOLVED → DEPLOYED → MONITORING`` plus
  ``FAILED``/``CANCELLED``), journaled with virtual-time timestamps and
  persisted through the simulated KV store or a local JSON file.
* :mod:`repro.service.engine` — the :class:`ServiceEngine` that drains
  the job queue by driving the existing ``DeploymentUtility`` /
  ``FleetManager`` machinery, with per-step retry/backoff and
  recovery-on-restart from the store.
* :mod:`repro.service.builder` — the ``@task`` / ``workflow(...)``
  builder API compiling plain-Python DAG declarations into
  ``WorkflowDAG`` + ``WorkflowConfig``.
"""

from repro.service.builder import CompiledWorkflow, WorkflowBuilder, task, workflow
from repro.service.engine import ServiceEngine
from repro.service.jobstore import (
    ANALYZED,
    CANCELLED,
    DEPLOYED,
    FAILED,
    JOB_STATES,
    JobRecord,
    JobStore,
    KVJobStore,
    LocalJobStore,
    MemoryJobStore,
    MONITORING,
    PIPELINE,
    SOLVED,
    SUBMITTED,
    TERMINAL_STATES,
    step_digest,
)

__all__ = [
    "ANALYZED",
    "CANCELLED",
    "CompiledWorkflow",
    "DEPLOYED",
    "FAILED",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "KVJobStore",
    "LocalJobStore",
    "MemoryJobStore",
    "MONITORING",
    "PIPELINE",
    "SOLVED",
    "SUBMITTED",
    "ServiceEngine",
    "TERMINAL_STATES",
    "WorkflowBuilder",
    "step_digest",
    "task",
    "workflow",
]
