"""Durable job records for the Caribou service layer.

One :class:`JobRecord` per submitted workflow, with an explicit state
machine::

    SUBMITTED -> ANALYZED -> SOLVED -> DEPLOYED -> MONITORING
                      \\-> FAILED (after max retries)
                      \\-> CANCELLED (operator action)

Every transition is idempotent (re-applying a transition the record has
already passed is a no-op), journaled with *virtual-time* timestamps,
and safe to retry after a crash: completed steps are recorded as
``step -> digest`` entries keyed on job id + step name, so an engine
restarting mid-pipeline skips exactly the work whose digest is already
on the record.

Three persistence backends share one interface:

* :class:`MemoryJobStore` — plain dict, for tests and throwaway runs.
* :class:`KVJobStore` — persisted through the simulated distributed KV
  store, so job durability costs the same metered accesses as any other
  workflow metadata (and is subject to injected KV faults).
* :class:`LocalJobStore` — a JSON file with atomic replace, for real
  CLI processes (``caribou submit`` in one process, ``caribou serve``
  in another).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import CaribouError

# -- states -----------------------------------------------------------------
SUBMITTED = "SUBMITTED"
ANALYZED = "ANALYZED"
SOLVED = "SOLVED"
DEPLOYED = "DEPLOYED"
MONITORING = "MONITORING"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: The happy path, in order.
PIPELINE: Tuple[str, ...] = (SUBMITTED, ANALYZED, SOLVED, DEPLOYED, MONITORING)
TERMINAL_STATES = frozenset({FAILED, CANCELLED})
JOB_STATES: Tuple[str, ...] = PIPELINE + (FAILED, CANCELLED)

_RANK = {state: i for i, state in enumerate(PIPELINE)}


class JobStateError(CaribouError):
    """An illegal job-state transition was requested."""


def step_digest(job_id: str, step: str, payload: Any = None) -> str:
    """Digest identifying one completed step of one job.

    Keyed on job id + step name (+ optional canonicalised payload), so
    re-running a completed step — after a crash, a retry, or a manual
    replay — is detectable as a no-op.
    """
    blob = json.dumps(
        {"job": job_id, "step": step, "payload": payload},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class JournalEntry:
    """One state transition, stamped with the simulation clock."""

    time_s: float
    from_state: str
    to_state: str
    step: str = ""
    digest: str = ""
    note: str = ""


@dataclass
class JobRecord:
    """Everything the service durably knows about one submitted job."""

    job_id: str
    app: str
    input_size: str = "small"
    state: str = SUBMITTED
    submitted_at_s: float = 0.0
    updated_at_s: float = 0.0
    #: step name -> digest of the completed step (idempotency ledger).
    steps: Dict[str, str] = field(default_factory=dict)
    #: step name -> failed attempt count (retry/backoff bookkeeping).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: durable step outputs (e.g. the solved plan set as a plain dict)
    #: that recovery re-applies instead of re-computing.
    artifacts: Dict[str, Any] = field(default_factory=dict)
    journal: List[JournalEntry] = field(default_factory=list)
    error: Optional[str] = None
    #: virtual time before which the engine must not retry this job.
    not_before_s: float = 0.0

    # -- queries ------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def step_done(self, step: str) -> bool:
        return step in self.steps

    def rank(self) -> int:
        """Position along the pipeline (-1 for terminal states)."""
        return _RANK.get(self.state, -1)

    # -- transitions --------------------------------------------------------
    def record_step(self, step: str, digest: str) -> None:
        self.steps[step] = digest

    def advance(
        self,
        to_state: str,
        now_s: float,
        step: str = "",
        digest: str = "",
        note: str = "",
    ) -> bool:
        """Move forward along the pipeline; idempotent.

        Returns True when the state actually changed.  Re-applying a
        transition the record has already passed (same or earlier
        target state) is a silent no-op; moving backwards or out of a
        terminal state raises :class:`JobStateError`.
        """
        if to_state not in _RANK:
            raise JobStateError(f"{to_state!r} is not a pipeline state")
        if self.is_terminal:
            raise JobStateError(
                f"job {self.job_id!r} is terminal ({self.state}); "
                f"cannot advance to {to_state}"
            )
        if _RANK[to_state] <= self.rank():
            return False  # already at or past: idempotent no-op
        if _RANK[to_state] != self.rank() + 1:
            raise JobStateError(
                f"job {self.job_id!r}: illegal jump {self.state} -> {to_state}"
            )
        self._journal(now_s, to_state, step=step, digest=digest, note=note)
        return True

    def fail(self, now_s: float, error: str, step: str = "") -> None:
        if self.state == FAILED:
            return
        self.error = error
        self._journal(now_s, FAILED, step=step, note=error)

    def cancel(self, now_s: float, note: str = "") -> bool:
        """Cancel the job; idempotent, no-op on already-terminal jobs."""
        if self.is_terminal:
            return False
        self._journal(now_s, CANCELLED, note=note)
        return True

    def _journal(
        self,
        now_s: float,
        to_state: str,
        step: str = "",
        digest: str = "",
        note: str = "",
    ) -> None:
        self.journal.append(
            JournalEntry(
                time_s=now_s,
                from_state=self.state,
                to_state=to_state,
                step=step,
                digest=digest,
                note=note,
            )
        )
        self.state = to_state
        self.updated_at_s = now_s

    # -- (de)serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["journal"] = [asdict(entry) for entry in self.journal]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobRecord":
        data = dict(doc)
        data["journal"] = [JournalEntry(**e) for e in doc.get("journal", ())]
        return cls(**data)


class JobStore:
    """Persistence interface; subclasses implement the raw doc I/O."""

    def save(self, record: JobRecord) -> None:
        self._write(record.job_id, record.to_dict())

    def load(self, job_id: str) -> Optional[JobRecord]:
        doc = self._read(job_id)
        return JobRecord.from_dict(doc) if doc is not None else None

    def get(self, job_id: str) -> JobRecord:
        record = self.load(job_id)
        if record is None:
            raise KeyError(f"no such job {job_id!r}")
        return record

    def load_all(self) -> List[JobRecord]:
        return [
            JobRecord.from_dict(doc)
            for _job_id, doc in sorted(self._read_all().items())
        ]

    def job_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._read_all()))

    # -- backend hooks ------------------------------------------------------
    def _write(self, job_id: str, doc: Dict[str, Any]) -> None:
        raise NotImplementedError

    def _read(self, job_id: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def _read_all(self) -> Dict[str, Dict[str, Any]]:
        raise NotImplementedError


class MemoryJobStore(JobStore):
    """In-process dict backend (tests, throwaway engines)."""

    def __init__(self) -> None:
        self._docs: Dict[str, Dict[str, Any]] = {}

    def _write(self, job_id: str, doc: Dict[str, Any]) -> None:
        self._docs[job_id] = json.loads(json.dumps(doc))

    def _read(self, job_id: str) -> Optional[Dict[str, Any]]:
        doc = self._docs.get(job_id)
        return json.loads(json.dumps(doc)) if doc is not None else None

    def _read_all(self) -> Dict[str, Dict[str, Any]]:
        return {job_id: self._read(job_id) for job_id in self._docs}


class KVJobStore(JobStore):
    """Jobs persisted through the simulated distributed KV store.

    Every save/load is a metered KV access (and therefore subject to
    injected KV faults), exactly like workflow metadata — the service's
    own durability is part of the simulated system, not outside it.
    """

    TABLE = "service:jobs"

    def __init__(self, kv, region: str, table: str = TABLE):
        self._kv = kv
        self._region = region
        self._table = table

    def _write(self, job_id: str, doc: Dict[str, Any]) -> None:
        self._kv.put(
            self._table, job_id, doc,
            caller_region=self._region, workflow="service",
        )

    def _read(self, job_id: str) -> Optional[Dict[str, Any]]:
        doc, _latency = self._kv.get(
            self._table, job_id,
            caller_region=self._region, workflow="service",
        )
        return doc

    def _read_all(self) -> Dict[str, Dict[str, Any]]:
        docs, _latency = self._kv.scan(
            self._table, caller_region=self._region, workflow="service",
        )
        return docs


class LocalJobStore(JobStore):
    """JSON-file backend for real processes (atomic replace on save).

    ``caribou submit`` writes the record in one process; a later
    ``caribou serve`` in another process loads it and resumes — the
    cross-process durability story the simulated KV store cannot give.
    """

    def __init__(self, path: str):
        self._path = path

    def _load_file(self) -> Dict[str, Dict[str, Any]]:
        if not os.path.exists(self._path):
            return {}
        with open(self._path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def _write(self, job_id: str, doc: Dict[str, Any]) -> None:
        docs = self._load_file()
        docs[job_id] = doc
        directory = os.path.dirname(os.path.abspath(self._path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(docs, fh, sort_keys=True, indent=2)
                fh.write("\n")
            os.replace(tmp, self._path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _read(self, job_id: str) -> Optional[Dict[str, Any]]:
        return self._load_file().get(job_id)

    def _read_all(self) -> Dict[str, Dict[str, Any]]:
        return self._load_file()
