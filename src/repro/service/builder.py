"""Decorator/builder developer API: plain-Python DAG declarations.

The paper's Listing-1 style (``Workflow`` + ``serverless_function``
decorators whose bodies call ``invoke_serverless_function``) requires
the AST analyzer to recover the DAG from handler source.  This module
offers the complementary *explicit* style — declare tasks with
:func:`task`, chain them with :meth:`WorkflowBuilder.then` /
:meth:`~WorkflowBuilder.branch` — and compiles the declaration straight
into a :class:`~repro.model.dag.WorkflowDAG` + runtime
:class:`~repro.core.api.Workflow` + ``WorkflowConfig``::

    @task(memory_mb=512)
    def fetch(payload):
        return payload

    @task()
    def render(payload):
        return payload

    compiled = workflow("pipeline").then(fetch).then(render).build()
    deployed, executor = DeploymentUtility(cloud).deploy(
        compiled.workflow, compiled.config, dag=compiled.dag
    )

The generated handlers route through the normal runtime API
(``invoke_serverless_function`` with string targets, and
``get_predecessor_data`` at fan-ins), so the executor treats a built
workflow identically to a hand-written one.  Because the DAG is
constructed directly, no static analysis runs — ``deploy(dag=...)``
bypasses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.base import default_config
from repro.cloud.functions import WorkProfile
from repro.common.errors import WorkflowDefinitionError
from repro.core.api import Payload, Workflow
from repro.model.config import FunctionConstraints, WorkflowConfig
from repro.model.dag import Edge, Node, WorkflowDAG


@dataclass
class TaskSpec:
    """One ``@task``-declared stage."""

    name: str
    fn: Callable[[Any], Any]
    memory_mb: int = 1769
    profile: Optional[WorkProfile] = None
    allowed_regions: Optional[Sequence[str]] = None
    disallowed_regions: Sequence[str] = ()

    def constraints(self) -> Optional[FunctionConstraints]:
        if self.allowed_regions is None and not self.disallowed_regions:
            return None
        return FunctionConstraints(
            allowed_regions=(
                frozenset(self.allowed_regions)
                if self.allowed_regions is not None
                else None
            ),
            disallowed_regions=frozenset(self.disallowed_regions),
        )


def task(
    name: Optional[str] = None,
    *,
    memory_mb: int = 1769,
    profile: Optional[WorkProfile] = None,
    allowed_regions: Optional[Sequence[str]] = None,
    disallowed_regions: Sequence[str] = (),
) -> Callable[[Callable[[Any], Any]], Callable[[Any], Any]]:
    """Declare a plain function as a workflow task.

    The function keeps working as a normal Python callable; the
    attached spec is only read when the task is wired into a
    :class:`WorkflowBuilder`.  At runtime the function receives the
    upstream payload content (a list of contents at fan-ins) and its
    return value becomes the payload for downstream tasks (return a
    :class:`~repro.core.api.Payload` to control ``size_bytes``).
    """

    def decorator(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        fn._caribou_task = TaskSpec(  # type: ignore[attr-defined]
            name=name or fn.__name__,
            fn=fn,
            memory_mb=memory_mb,
            profile=profile,
            allowed_regions=allowed_regions,
            disallowed_regions=tuple(disallowed_regions),
        )
        return fn

    return decorator


def _spec_of(obj: Any) -> TaskSpec:
    if isinstance(obj, TaskSpec):
        return obj
    spec = getattr(obj, "_caribou_task", None)
    if spec is None:
        if callable(obj):
            # Un-decorated callables are accepted with defaults.
            return TaskSpec(name=obj.__name__, fn=obj)
        raise WorkflowDefinitionError(
            f"{obj!r} is not a @task-declared function"
        )
    return spec


@dataclass
class CompiledWorkflow:
    """The build output: everything the deployment utility needs."""

    workflow: Workflow
    dag: WorkflowDAG
    config: WorkflowConfig


class WorkflowBuilder:
    """Fluent DAG construction over ``@task`` functions.

    ``then(t)`` chains the current tail(s) into ``t`` (a multi-tail
    chain makes ``t`` a sync node); ``branch(a, b, ...)`` fans the
    current tail out.  ``join(t)`` is ``then(t)`` spelled for
    readability at explicit fan-ins.
    """

    def __init__(self, name: str, version: str = "0.1"):
        if not name:
            raise WorkflowDefinitionError("workflow name must be non-empty")
        self.name = name
        self.version = version
        self._tasks: Dict[str, TaskSpec] = {}
        self._edges: List[Tuple[str, str]] = []
        self._tails: List[str] = []
        self._entry: Optional[str] = None

    # -- wiring -------------------------------------------------------------
    def _add_task(self, spec: TaskSpec) -> str:
        if spec.name in self._tasks:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r}: duplicate task {spec.name!r}"
            )
        self._tasks[spec.name] = spec
        if self._entry is None:
            self._entry = spec.name
        return spec.name

    def then(self, task_fn: Any) -> "WorkflowBuilder":
        """Chain from every current tail into ``task_fn``."""
        spec = _spec_of(task_fn)
        name = self._add_task(spec)
        for tail in self._tails:
            self._edges.append((tail, name))
        self._tails = [name]
        return self

    def branch(self, *task_fns: Any) -> "WorkflowBuilder":
        """Fan out from the current tail(s) into several tasks."""
        if not task_fns:
            raise WorkflowDefinitionError("branch() needs at least one task")
        tails = list(self._tails)
        names = []
        for task_fn in task_fns:
            spec = _spec_of(task_fn)
            name = self._add_task(spec)
            for tail in tails:
                self._edges.append((tail, name))
            names.append(name)
        self._tails = names
        return self

    def join(self, task_fn: Any) -> "WorkflowBuilder":
        """Fan the current branches back in (``task_fn`` becomes a sync
        node when more than one branch feeds it)."""
        return self.then(task_fn)

    # -- compilation --------------------------------------------------------
    def build(
        self,
        home_region: str = "us-east-1",
        config: Optional[WorkflowConfig] = None,
        name: Optional[str] = None,
        **config_kwargs: Any,
    ) -> CompiledWorkflow:
        """Compile into (runtime Workflow, WorkflowDAG, WorkflowConfig).

        ``name`` overrides the workflow/DAG name (the service engine
        uses it to give each job an isolated deployment namespace).
        """
        if not self._tasks:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r} declares no tasks"
            )
        wf_name = name or self.name

        dag = WorkflowDAG(wf_name)
        for spec in self._tasks.values():
            dag.add_node(
                Node(name=spec.name, function=spec.name,
                     memory_mb=spec.memory_mb)
            )
        for src, dst in self._edges:
            dag.add_edge(Edge(src=src, dst=dst))
        dag.validate()

        wf = Workflow(wf_name, version=self.version)
        for spec in self._tasks.values():
            targets = tuple(e.dst for e in dag.out_edges(spec.name))
            handler = _make_handler(
                wf, spec, targets, is_sync=dag.is_sync_node(spec.name)
            )
            raw_constraints = spec.constraints()
            wf.serverless_function(
                name=spec.name,
                memory_mb=spec.memory_mb,
                profile=spec.profile,
                entry_point=spec.name == self._entry,
            )(handler)
            if raw_constraints is not None:
                # serverless_function only parses the paper-style dict;
                # attach the already-built constraints directly.
                wf.function(spec.name).constraints = raw_constraints

        cfg = config or default_config(
            home_region=home_region,
            benchmarking_fraction=config_kwargs.pop(
                "benchmarking_fraction", 0.0
            ),
            **config_kwargs,
        )
        return CompiledWorkflow(workflow=wf, dag=dag, config=cfg)


def _make_handler(
    wf: Workflow,
    spec: TaskSpec,
    targets: Tuple[str, ...],
    is_sync: bool,
) -> Callable[[Any], Any]:
    """Wrap a task function as a runtime serverless handler.

    Fan-ins read predecessor payloads via ``get_predecessor_data()``
    (which also marks the node as sync at runtime); every out-edge
    becomes an ``invoke_serverless_function`` intent carrying the task's
    return value.
    """
    fn = spec.fn

    def handler(event: Any) -> None:
        if is_sync:
            data = wf.get_predecessor_data()
            result = fn([p.content for p in data])
        else:
            result = fn(event)
        if targets:
            payload = (
                result if isinstance(result, Payload) else Payload(content=result)
            )
            for target in targets:
                wf.invoke_serverless_function(payload, target)

    handler.__name__ = f"{spec.name}_handler"
    return handler


def workflow(name: str, version: str = "0.1") -> WorkflowBuilder:
    """Start a fluent workflow declaration (``workflow(...).then(...)``)."""
    return WorkflowBuilder(name, version=version)
