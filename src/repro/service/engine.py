"""The service engine: drains the durable job queue (Fig. 6 as a daemon).

Each job walks the pipeline ``SUBMITTED → ANALYZED → SOLVED → DEPLOYED
→ MONITORING`` one durable step at a time:

========== ========================================================
step        side effects
========== ========================================================
``deploy``  build the workflow (benchmark app or registered builder)
            and run the initial home-region deployment
``solve``   warm-up traffic to seed the Metrics Manager, then solve
            the 24-hour plan set; the plan set itself is persisted on
            the job record as an artifact
``migrate`` activate the persisted plan set via the migrator
``monitor`` register with the fleet manager and arm the token-check
            chain (``DeploymentManager.run_for``)
========== ========================================================

Durability contract: a step's cloud-side effects are replace-style
idempotent (function deploy replaces, topic create no-ops, subscribe
displaces the old subscriber), the step's completion is recorded on the
job record as ``step -> digest`` *atomically with* the state
transition, and expensive outputs (the solved plan set) are persisted
as artifacts.  An engine killed at any point therefore resumes from the
store: completed steps are skipped by digest, a half-applied step is
simply re-run, and :meth:`ServiceEngine.recover` rebuilds the
in-process runtime handles (executor, subscriptions, fleet
registration) without re-running solves or re-staging plans.

Failures raised by injected faults (``repro.cloud.faults``) are
retried with exponential backoff in virtual time; a step that keeps
failing moves the job to ``FAILED`` with the error journaled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps import ALL_APPS, get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.common.errors import CaribouError
from repro.core.api import Workflow
from repro.core.deployer import DeploymentUtility
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.core.fleet import FleetManager
from repro.core.migrator import DeploymentMigrator
from repro.core.solver import SolverSettings, SolverStats
from repro.core.trigger import TriggerSettings
from repro.experiments.harness import solve_plan_set, warm_up
from repro.metrics.carbon import TransmissionScenario
from repro.model.config import WorkflowConfig
from repro.model.dag import WorkflowDAG
from repro.model.plan import HourlyPlanSet
from repro.obs.trace import NULL_TRACER
from repro.service.builder import WorkflowBuilder
from repro.service.jobstore import (
    ANALYZED,
    DEPLOYED,
    JobRecord,
    JobStore,
    JournalEntry,
    MONITORING,
    PIPELINE,
    SOLVED,
    SUBMITTED,
    step_digest,
)

#: Fast solver settings for the service loop (same family as the fleet
#: bench knobs: small sample budget, loose CoV — the service pipeline
#: is about orchestration, not solver fidelity).
SERVICE_SOLVER_SETTINGS = SolverSettings(
    batch_size=30, max_samples=60, cov_threshold=0.2
)

#: step name per transition, in pipeline order.
STEP_OF_TRANSITION: Dict[str, str] = {
    ANALYZED: "deploy",
    SOLVED: "solve",
    DEPLOYED: "migrate",
    MONITORING: "monitor",
}


@dataclass
class JobRuntime:
    """In-process (non-durable) handles for one hydrated job."""

    workflow: Workflow
    config: WorkflowConfig
    dag: Optional[WorkflowDAG]
    deployed: Optional[DeployedWorkflow] = None
    executor: Optional[CaribouExecutor] = None


class ServiceEngine:
    """Drives submitted jobs through the deployment pipeline."""

    def __init__(
        self,
        cloud: SimulatedCloud,
        store: JobStore,
        scenario: Optional[TransmissionScenario] = None,
        solver_settings: SolverSettings = SERVICE_SOLVER_SETTINGS,
        trigger_settings: Optional[TriggerSettings] = None,
        home_region: str = "us-east-1",
        warmup_invocations: int = 6,
        max_attempts: int = 3,
        backoff_s: float = 300.0,
        monitor_horizon_s: float = SECONDS_PER_DAY,
    ):
        self._cloud = cloud
        self._store = store
        self._scenario = scenario or TransmissionScenario.best_case()
        self._solver_settings = solver_settings
        self._home_region = home_region
        self._warmup_invocations = warmup_invocations
        self._max_attempts = max_attempts
        self._backoff_s = backoff_s
        self._monitor_horizon_s = monitor_horizon_s
        self.utility = DeploymentUtility(cloud)
        # The fleet runs without the token bucket: the service pipeline
        # promises a solve on the way to MONITORING, and the bench/CLI
        # demo fleets use the same knobs (cmd_fleet_report).
        self.fleet = FleetManager(
            cloud,
            self.utility,
            self._scenario,
            solver_settings=solver_settings,
            trigger_settings=trigger_settings or TriggerSettings(),
            use_forecast=False,
            use_token_bucket=False,
            fixed_granularity=1,
        )
        self.solver_stats = SolverStats()
        self._runtime: Dict[str, JobRuntime] = {}
        self._factories: Dict[
            str, Callable[[str], Tuple[Workflow, WorkflowConfig, WorkflowDAG]]
        ] = {}
        self._metrics = getattr(cloud, "metrics", None)
        self._tracer = getattr(cloud, "tracer", NULL_TRACER)
        self._submit_counter = 0
        #: jobs that finished a step this engine's lifetime (telemetry).
        self.steps_executed = 0

    # -- workflow sources ---------------------------------------------------
    def register_workflow(self, builder: WorkflowBuilder) -> None:
        """Make a builder-declared workflow submittable by name."""

        def factory(job_id: str) -> Tuple[Workflow, WorkflowConfig, WorkflowDAG]:
            compiled = builder.build(home_region=self._home_region, name=job_id)
            return compiled.workflow, compiled.config, compiled.dag

        self._factories[builder.name] = factory

    def _build_workflow(self, record: JobRecord) -> JobRuntime:
        """(Re)construct the workflow objects for a job — deterministic,
        so recovery rebuilds exactly what the original step deployed."""
        if record.app in self._factories:
            wf, config, dag = self._factories[record.app](record.job_id)
            return JobRuntime(workflow=wf, config=config, dag=dag)
        if record.app in ALL_APPS:
            from repro.apps.base import default_config

            app = get_app(record.app)
            wf = app.build_workflow()
            # Isolated per-job namespace: two jobs of the same app must
            # not collide in the fleet registry or the KV tables.
            wf.name = record.job_id
            config = default_config(
                home_region=self._home_region, benchmarking_fraction=0.0
            )
            return JobRuntime(workflow=wf, config=config, dag=None)
        raise CaribouError(
            f"job {record.job_id!r}: unknown workflow source {record.app!r} "
            "(not a benchmark app, not a registered builder)"
        )

    # -- submission / queries -----------------------------------------------
    def submit(
        self,
        app: str,
        input_size: str = "small",
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Create a durable job record in ``SUBMITTED``."""
        if app not in self._factories and app not in ALL_APPS:
            raise KeyError(
                f"unknown workflow {app!r}: pick a benchmark app "
                f"({', '.join(sorted(ALL_APPS))}) or register a builder"
            )
        self._submit_counter += 1
        if job_id is None:
            job_id = f"{app}-{self._submit_counter:04d}"
            while self._store.load(job_id) is not None:
                self._submit_counter += 1
                job_id = f"{app}-{self._submit_counter:04d}"
        elif self._store.load(job_id) is not None:
            raise ValueError(f"job {job_id!r} already exists")
        now = self._cloud.now()
        record = JobRecord(
            job_id=job_id,
            app=app,
            input_size=input_size,
            submitted_at_s=now,
            updated_at_s=now,
        )
        self._store.save(record)
        self._count_transition(SUBMITTED)
        return record

    def job(self, job_id: str) -> JobRecord:
        return self._store.get(job_id)

    def jobs(self) -> List[JobRecord]:
        return self._store.load_all()

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job; a MONITORING job's check chain is torn down."""
        record = self._store.get(job_id)
        if record.state == MONITORING and record.job_id in self.fleet.workflows:
            # Bugfixed unregister: stops the armed check chain and
            # raises on unknown names instead of masking typos.
            self.fleet.unregister(record.job_id)
        if record.cancel(self._cloud.now(), note="cancelled by operator"):
            self._store.save(record)
            self._count_transition("CANCELLED")
        self._runtime.pop(job_id, None)
        return record

    # -- the drain loop -----------------------------------------------------
    def runnable(self) -> List[JobRecord]:
        """Jobs with pipeline work left whose backoff window has passed."""
        now = self._cloud.now()
        return [
            r
            for r in self.jobs()
            if not r.is_terminal
            and r.state != MONITORING
            and r.not_before_s <= now
        ]

    def tick(self) -> int:
        """Advance every runnable job by exactly one pipeline step.

        Returns the number of steps that completed successfully."""
        done = 0
        for record in self.runnable():
            if self._step(record):
                done += 1
        return done

    def run(self, max_steps: int = 100) -> int:
        """Tick until every job is settled (MONITORING or terminal) or
        the step budget runs out, advancing virtual time over backoff
        windows so retries actually happen.  Returns steps executed."""
        executed = 0
        while executed < max_steps:
            progressed = 0
            for record in self.runnable():
                if executed >= max_steps:
                    break
                self._step(record)
                executed += 1
                progressed += 1
            if progressed:
                continue
            # Nothing runnable: either all settled, or every pending
            # job is backing off — jump the clock to the next retry.
            waiting = [
                r.not_before_s
                for r in self.jobs()
                if not r.is_terminal and r.state != MONITORING
            ]
            if not waiting:
                break
            self._cloud.env.run(until=max(min(waiting), self._cloud.now()))
        return executed

    # -- one step ------------------------------------------------------------
    def _step(self, record: JobRecord) -> bool:
        """Run the next pipeline step for one job; True on success."""
        next_state = PIPELINE[record.rank() + 1]
        step = STEP_OF_TRANSITION[next_state]
        t0 = self._cloud.now()
        try:
            digest = self._run_step(record, step)
        except CaribouError as exc:
            self._note_failure(record, step, exc)
            return False
        self._tracer.record(
            "service", f"service.{step}",
            t0=t0, t1=self._cloud.now(), workflow=record.job_id,
        )
        record.record_step(step, digest)
        record.advance(
            next_state,
            self._cloud.now(),
            step=step,
            digest=digest,
            note="" if digest else "replayed (already complete)",
        )
        record.not_before_s = 0.0
        self._store.save(record)
        self.steps_executed += 1
        self._count_transition(next_state)
        return True

    def _run_step(self, record: JobRecord, step: str) -> str:
        """Execute one step's side effects; returns its digest.

        A step whose digest is already on the record is a no-op: the
        runtime is hydrated if needed, but no solve/deploy/migrate side
        effects re-run (crash-after-persist replays land here).
        """
        digest = step_digest(record.job_id, step)
        if record.step_done(step):
            self._hydrate(record)
            return record.steps[step]
        runtime = self._hydrate(record, for_step=step)
        if step == "deploy":
            self._do_deploy(record, runtime)
        elif step == "solve":
            self._do_solve(record, runtime)
        elif step == "migrate":
            self._do_migrate(record, runtime)
        elif step == "monitor":
            self._do_monitor(record, runtime)
        else:  # pragma: no cover - state machine guards this
            raise CaribouError(f"unknown step {step!r}")
        return digest

    # -- step bodies ---------------------------------------------------------
    def _do_deploy(self, record: JobRecord, runtime: JobRuntime) -> None:
        deployed, executor = self.utility.deploy(
            runtime.workflow, runtime.config, dag=runtime.dag
        )
        runtime.deployed, runtime.executor = deployed, executor
        record.artifacts["nodes"] = list(deployed.dag.node_names)
        record.artifacts["home_region"] = deployed.config.home_region

    def _do_solve(self, record: JobRecord, runtime: JobRuntime) -> None:
        deployed, executor = runtime.deployed, runtime.executor
        assert deployed is not None and executor is not None
        if record.app in ALL_APPS:
            warm_up(
                executor, get_app(record.app), record.input_size,
                n=self._warmup_invocations,
            )
        else:
            self._builder_warm_up(record, executor)
        plan_set = solve_plan_set(
            deployed,
            executor,
            self._scenario,
            solver_settings=self._solver_settings,
            stats=self.solver_stats,
        )
        now = self._cloud.now()
        plan_set.created_at_s = now
        plan_set.expires_at_s = now + 3 * SECONDS_PER_DAY
        # The expensive output is durable: recovery re-applies this
        # dict instead of re-running the solver.
        record.artifacts["plan_set"] = plan_set.to_dict()

    def _builder_warm_up(
        self, record: JobRecord, executor: CaribouExecutor
    ) -> None:
        """Home-region warm-up for builder workflows (no app inputs)."""
        from repro.core.api import Payload

        env = self._cloud.env
        for i in range(self._warmup_invocations):
            env.schedule(
                i * 120.0,
                lambda: executor.invoke(
                    Payload(content=None, size_bytes=1024.0), force_home=True
                ),
            )
        self._cloud.run_until_idle()

    def _do_migrate(self, record: JobRecord, runtime: JobRuntime) -> None:
        deployed, executor = runtime.deployed, runtime.executor
        assert deployed is not None and executor is not None
        raw = record.artifacts.get("plan_set")
        if raw is None:
            raise CaribouError(
                f"job {record.job_id!r}: no persisted plan set to migrate"
            )
        plan_set = HourlyPlanSet.from_dict(raw)
        migrator = DeploymentMigrator(self.utility, deployed, executor)
        report = migrator.migrate(plan_set)
        if not report.activated:
            raise CaribouError(
                f"job {record.job_id!r}: migration failed: {report.error}"
            )
        record.artifacts["migrated_regions"] = list(
            plan_set.all_regions_used()
        )

    def _do_monitor(self, record: JobRecord, runtime: JobRuntime) -> None:
        deployed, executor = runtime.deployed, runtime.executor
        assert deployed is not None and executor is not None
        if record.job_id not in self.fleet.workflows:
            manager = self.fleet.register(deployed, executor)
        else:  # replay after crash-before-persist
            manager = self.fleet.manager_for(record.job_id)
            manager.stop()
        manager.run_for(self._monitor_horizon_s)

    # -- retry / backoff -----------------------------------------------------
    def _note_failure(
        self, record: JobRecord, step: str, exc: CaribouError
    ) -> None:
        now = self._cloud.now()
        attempts = record.attempts.get(step, 0) + 1
        record.attempts[step] = attempts
        if attempts >= self._max_attempts:
            record.fail(now, error=f"{step}: {exc!r}", step=step)
            self._count_transition("FAILED")
        else:
            # Exponential backoff in virtual time.
            record.not_before_s = now + self._backoff_s * 2 ** (attempts - 1)
            record.journal.append(
                JournalEntry(
                    time_s=now,
                    from_state=record.state,
                    to_state=record.state,
                    step=step,
                    note=f"attempt {attempts} failed: {exc!r}; "
                    f"retry not before t={record.not_before_s:.0f}s",
                )
            )
        self._store.save(record)

    # -- recovery ------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild in-process runtime for every non-terminal job.

        Called on engine start.  For each job past ``SUBMITTED`` the
        workflow objects are rebuilt deterministically and either
        *attached* to the still-standing cloud deployment (same-process
        restart: functions/plan survive in the simulated cloud) or
        *re-established* in a fresh cloud (cross-process ``caribou
        serve``: re-deploy, then re-apply the persisted plan artifact —
        never re-solve).  MONITORING jobs are re-registered with the
        fleet and their check chains re-armed.  Returns the number of
        jobs hydrated.
        """
        hydrated = 0
        for record in self.jobs():
            if record.is_terminal or record.rank() < 1:
                continue  # SUBMITTED jobs hydrate lazily on first step
            self._hydrate(record)
            if record.state == MONITORING:
                runtime = self._runtime[record.job_id]
                assert runtime.deployed is not None
                assert runtime.executor is not None
                if record.job_id not in self.fleet.workflows:
                    manager = self.fleet.register(
                        runtime.deployed, runtime.executor
                    )
                    manager.run_for(self._monitor_horizon_s)
            hydrated += 1
        return hydrated

    def _hydrate(
        self, record: JobRecord, for_step: Optional[str] = None
    ) -> JobRuntime:
        """Ensure in-process handles exist for a job, rebuilding them
        from the durable record when this engine has none."""
        runtime = self._runtime.get(record.job_id)
        if runtime is not None and (
            runtime.deployed is not None or not record.step_done("deploy")
        ):
            return runtime
        runtime = self._build_workflow(record)
        self._runtime[record.job_id] = runtime
        if not record.step_done("deploy"):
            return runtime  # nothing cloud-side yet
        entry = runtime.workflow.entry_function.name
        if self._cloud.functions.is_deployed(
            runtime.workflow.name, entry, runtime.config.home_region
        ):
            # Same-process restart: cloud state survived; attach only.
            deployed, executor = self.utility.attach(
                runtime.workflow, runtime.config, dag=runtime.dag
            )
        else:
            # Fresh cloud (cross-process serve): re-establish the
            # recorded deployment, then re-apply the persisted plan.
            deployed, executor = self.utility.deploy(
                runtime.workflow, runtime.config, dag=runtime.dag
            )
            raw = record.artifacts.get("plan_set")
            if raw is not None and record.step_done("migrate"):
                migrator = DeploymentMigrator(self.utility, deployed, executor)
                migrator.migrate(HourlyPlanSet.from_dict(raw))
        runtime.deployed, runtime.executor = deployed, executor
        return runtime

    # -- telemetry -----------------------------------------------------------
    def _count_transition(self, to_state: str) -> None:
        if self._metrics is not None:
            self._metrics.counter("service.transitions", state=to_state).inc()

    def summary(self) -> Dict[str, Any]:
        """Counts per state plus engine-lifetime step count."""
        by_state: Dict[str, int] = {}
        for record in self.jobs():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "jobs": sum(by_state.values()),
            "by_state": dict(sorted(by_state.items())),
            "steps_executed": self.steps_executed,
            "fleet_workflows": len(self.fleet.workflows),
        }
