"""Command-line interface (the paper's Deployment Utility CLI, §6.1/§8).

The original ``caribou`` package ships a CLI for deploying workflows and
proxy-invoking them.  Offline, the CLI operates on the bundled benchmark
workflows against a simulated cloud:

    caribou list                       # available benchmark workflows
    caribou deploy <app>               # initial deployment (home region)
    caribou run <app> [-n N] [--size large] [--regions r1,r2]
    caribou solve <app> [--regions ...]  # print the 24-hour plan set
    caribou carbon [--hours H]           # show the synthetic carbon traces
    caribou report <file>                # render a run report / analyze a trace
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Optional, Sequence

from repro.apps import ALL_APPS, get_app
from repro.cloud.faults import FaultPlan
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.core.solver import SolverStats
from repro.data.regions import EVALUATION_REGIONS
from repro.experiments.harness import (
    BENCH_SOLVER_SETTINGS,
    HOME_REGION,
    deploy_benchmark,
    run_caribou,
    run_coarse,
    solve_plan_set,
    warm_up,
)
from repro.metrics.carbon import TransmissionScenario
from repro.obs.critical_path import analyze_trace, render_critical_path
from repro.obs.dash import render_dashboard
from repro.obs.diffrun import diff_runs
from repro.obs.render import load_jsonl, render_trace_summary
from repro.obs.report import RunReport, build_run_report, fleet_markdown_lines
from repro.obs.slo import DEFAULT_SLOS, parse_slo
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    TelemetryConfig,
    export_series,
    load_series_jsonl,
)
from repro.obs.trace import Tracer


def _parse_regions(raw: Optional[str]) -> tuple:
    if not raw:
        return tuple(EVALUATION_REGIONS)
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'workflow':28s} {'stages':>6s} {'sync':>5s} {'cond':>5s}  description")
    for app in ALL_APPS.values():
        print(
            f"{app.name:28s} {app.n_stages:6d} "
            f"{'yes' if app.has_sync else 'no':>5s} "
            f"{'yes' if app.has_conditional else 'no':>5s}  {app.description}"
        )
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    cloud = SimulatedCloud(seed=args.seed, regions=_parse_regions(args.regions))
    deployed, _executor, _utility = deploy_benchmark(app, cloud)
    print(f"deployed {deployed.name!r} to {deployed.config.home_region}")
    print(f"  nodes: {', '.join(deployed.dag.node_names)}")
    print(f"  sync nodes: {', '.join(deployed.dag.sync_nodes) or '(none)'}")
    print(f"  functions: {len(deployed.workflow.functions)}")
    print(f"  IAM roles: {len(cloud.iam.roles())}")
    return 0


def _default_chaos_plan(regions: Sequence[str], home: str) -> FaultPlan:
    """The stock ``--chaos`` schedule: one non-home region goes dark for
    half a day, 5 % of invocations fail everywhere, and KV accesses are
    slowed 3x for a stretch — enough to exercise every resilience path."""
    plan = (
        FaultPlan()
        .with_invocation_failures(0.05)
        .with_kv_latency(
            3.0, start_s=2.0 * SECONDS_PER_DAY, end_s=3.0 * SECONDS_PER_DAY
        )
    )
    victims = [r for r in regions if r != home]
    if victims:
        plan = plan.with_region_outage(
            victims[0], start_s=1.0 * SECONDS_PER_DAY, end_s=1.5 * SECONDS_PER_DAY
        )
    return plan


def _solver_settings(args: argparse.Namespace):
    """The bench defaults, with any CLI solver knobs applied."""
    settings = BENCH_SOLVER_SETTINGS
    wave = getattr(args, "wave", None)
    if wave:
        settings = dataclasses.replace(settings, wave_size=wave)
    solver = getattr(args, "solver", None)
    if solver:
        settings = dataclasses.replace(settings, solver=solver)
    return settings


def _telemetry_config(args: argparse.Namespace) -> Optional[TelemetryConfig]:
    """Build the run's :class:`TelemetryConfig` from CLI flags.

    Any of ``--timeseries``/``--slo``/``--export-prom`` turns the
    windowed pipeline on; without them the run schedules no telemetry
    events at all (the byte-identical no-telemetry path).
    """
    slo_args = args.slo or []
    wants = args.timeseries or args.export_prom or slo_args
    if not wants:
        return None
    slos = []
    for raw in slo_args:
        if raw == "":  # bare --slo: the stock objectives
            slos.extend(DEFAULT_SLOS)
        else:
            slos.append(parse_slo(raw))
    return TelemetryConfig(window_s=args.window, slos=tuple(slos))


def cmd_run(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    regions = _parse_regions(args.regions)
    fault_plan = None
    if args.chaos:
        home = args.coarse if args.coarse else HOME_REGION
        fault_plan = _default_chaos_plan(regions, home)
    # --report needs a trace for its critical-path section; tracing is
    # pure observation, so enabling it never changes the run itself.
    tracer = (
        Tracer(sample_every=args.trace_sample)
        if (args.trace or args.report)
        else None
    )
    telemetry = _telemetry_config(args)
    if args.coarse:
        outcome = run_coarse(
            app, args.size, args.coarse, seed=args.seed,
            n_invocations=args.invocations, fault_plan=fault_plan,
            tracer=tracer, telemetry=telemetry,
        )
    else:
        outcome = run_caribou(
            app, args.size, regions, seed=args.seed,
            n_invocations=args.invocations, fault_plan=fault_plan,
            tracer=tracer, jobs=args.jobs, backend=args.backend,
            solver_settings=_solver_settings(args),
            telemetry=telemetry,
        )
    print(f"{outcome.label}: {outcome.n_invocations} invocations")
    print(f"  mean service time : {outcome.mean_service_time_s:8.3f} s")
    print(f"  p95 service time  : {outcome.p95_service_time_s:8.3f} s")
    for name, stats in outcome.per_scenario.items():
        print(
            f"  [{name}] carbon {stats.mean_carbon_g * 1000:8.3f} mgCO2eq/inv "
            f"(exec {stats.mean_exec_carbon_g * 1000:.3f} / "
            f"trans {stats.mean_trans_carbon_g * 1000:.3f}), "
            f"cost ${stats.mean_cost_usd:.6f}"
        )
    print(f"  regions used      : {', '.join(outcome.regions_used)}")
    if outcome.solver_stats is not None:
        print(f"  solver stats      : {outcome.solver_stats.summary()}")
    if outcome.reliability is not None and (
        args.chaos or outcome.reliability.total_injected
    ):
        print(f"  reliability       : {outcome.reliability.summary()}")
    if tracer is not None and args.trace:
        tracer.export(args.trace)
        print(f"  trace             : {len(tracer)} spans -> {args.trace}")
        print(render_trace_summary(tracer))
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(outcome.metrics or {}, fh, sort_keys=True, indent=2)
            fh.write("\n")
        n = len(outcome.metrics or {})
        print(f"  metrics           : {n} instruments -> {args.metrics}")
    if args.timeseries:
        export_series(
            outcome.series or [], args.timeseries,
            window_s=outcome.series_window_s or args.window,
        )
        print(
            f"  timeseries        : {len(outcome.series or [])} points -> "
            f"{args.timeseries}"
        )
    if args.export_prom:
        with open(args.export_prom, "w", encoding="utf-8") as fh:
            fh.write(outcome.prom or "")
        print(f"  prometheus        : -> {args.export_prom}")
    if outcome.slo:
        for entry in outcome.slo:
            status = "OK  " if entry["met"] else "MISS"
            print(
                f"  slo [{status}]        : {entry['name']} "
                f"({entry['violations']}/{entry['windows']} windows "
                f"violating, {len(entry['alerts'])} alerts)"
            )
    if args.report:
        report = build_run_report(outcome, trace=tracer)
        report.export(args.report)
        print(f"  report            : -> {args.report}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Compare two run artifacts (reports or series dumps)."""
    print(diff_runs(args.a, args.b), end="")
    return 0


def cmd_dash(args: argparse.Namespace) -> int:
    """Render the offline terminal dashboard for a series dump, with
    SLO budget lines when a run report is supplied alongside."""
    points, window_s = load_series_jsonl(args.series)
    slo = None
    if args.report:
        with open(args.report, "r", encoding="utf-8") as fh:
            slo = RunReport.from_json(fh.read()).doc.get("slo")
    print(
        render_dashboard(
            points, slo_results=slo, window_s=window_s, width=args.width
        ),
        end="",
    )
    return 0


def cmd_fleet_report(args: argparse.Namespace) -> int:
    """Run a small managed fleet and print its control-loop rollup."""
    from repro.apps.base import default_config
    from repro.core.deployer import DeploymentUtility
    from repro.core.fleet import FleetManager
    from repro.core.solver import SolverSettings

    app = get_app(args.app)
    cloud = SimulatedCloud(seed=args.seed, regions=_parse_regions(args.regions))
    utility = DeploymentUtility(cloud)
    # Bench-style fleet knobs: no forecast gate and no token bucket, so
    # every checked workflow actually solves and the rollup shows real
    # control-loop activity even for a tiny demo fleet.
    fleet = FleetManager(
        cloud,
        utility,
        TransmissionScenario.best_case(),
        solver_settings=SolverSettings(
            batch_size=30, max_samples=60, cov_threshold=0.2
        ),
        use_forecast=False,
        use_token_bucket=False,
        fixed_granularity=1,
    )
    executors = []
    for i in range(args.workflows):
        workflow = app.build_workflow()
        workflow.name = f"{workflow.name}-{i:03d}"
        deployed, executor = utility.deploy(
            workflow, default_config(benchmarking_fraction=0.0)
        )
        fleet.register(deployed, executor)
        executors.append(executor)
    for executor in executors:
        for _ in range(args.invocations):
            executor.invoke(app.make_input(args.size), force_home=True)
        cloud.env.run_until_idle()
    fleet.check_all()
    report = fleet.fleet_report()
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print("\n".join(fleet_markdown_lines(report)).lstrip("\n"))
    return 0


#: Default durable job store for the service commands.
DEFAULT_JOB_STORE = ".caribou-jobs.json"


def _job_store(args: argparse.Namespace):
    from repro.service import LocalJobStore

    return LocalJobStore(args.store)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a workflow as a durable job (state SUBMITTED)."""
    from repro.service import JobRecord, SUBMITTED

    if args.app not in ALL_APPS:
        print(
            f"caribou submit: unknown workflow {args.app!r} "
            f"(available: {', '.join(sorted(ALL_APPS))})",
            file=sys.stderr,
        )
        return 2
    store = _job_store(args)
    seq = len(store.job_ids()) + 1
    job_id = args.job_id or f"{args.app}-{seq:04d}"
    if store.load(job_id) is not None:
        print(f"caribou submit: job {job_id!r} already exists", file=sys.stderr)
        return 2
    record = JobRecord(job_id=job_id, app=args.app, input_size=args.size)
    store.save(record)
    print(f"submitted {job_id} ({SUBMITTED}) -> {args.store}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """List all jobs in the durable store."""
    store = _job_store(args)
    records = store.load_all()
    if args.json:
        print(json.dumps([r.to_dict() for r in records], sort_keys=True,
                         indent=2))
        return 0
    if not records:
        print(f"no jobs in {args.store}")
        return 0
    print(f"{'job id':32s} {'app':24s} {'state':12s} {'updated':>10s}  note")
    for r in records:
        note = r.error or ""
        print(
            f"{r.job_id:32s} {r.app:24s} {r.state:12s} "
            f"{r.updated_at_s:10.1f}  {note}"
        )
    return 0


def cmd_job(args: argparse.Namespace) -> int:
    """Show one job record, including its transition journal."""
    store = _job_store(args)
    record = store.load(args.job_id)
    if record is None:
        print(f"caribou job: no such job {args.job_id!r}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record.to_dict(), sort_keys=True, indent=2))
        return 0
    print(f"job      : {record.job_id}")
    print(f"app      : {record.app} (input {record.input_size})")
    print(f"state    : {record.state}")
    if record.error:
        print(f"error    : {record.error}")
    print(f"steps    : {', '.join(record.steps) or '(none)'}")
    if record.artifacts.get("plan_set"):
        print("artifacts: plan_set (persisted)")
    print("journal  :")
    for entry in record.journal:
        extra = f"  [{entry.note}]" if entry.note else ""
        print(
            f"  t={entry.time_s:10.1f}  {entry.from_state:10s} -> "
            f"{entry.to_state:10s}  step={entry.step or '-'}{extra}"
        )
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    """Cancel a job in the durable store."""
    store = _job_store(args)
    record = store.load(args.job_id)
    if record is None:
        print(f"caribou cancel: no such job {args.job_id!r}", file=sys.stderr)
        return 2
    if not record.cancel(record.updated_at_s, note="cancelled via CLI"):
        print(f"{record.job_id} is already terminal ({record.state})")
        return 0
    store.save(record)
    print(f"cancelled {record.job_id}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Tick the service engine deterministically over the job store.

    Builds a fresh simulated cloud, recovers every in-flight job from
    the store (re-establishing deployments and re-applying persisted
    plan artifacts — never re-solving), then runs up to ``--steps``
    pipeline steps.  Safe to re-run: completed steps are skipped by
    digest.
    """
    from repro.service import ServiceEngine

    store = _job_store(args)
    cloud = SimulatedCloud(seed=args.seed, regions=_parse_regions(args.regions))
    engine = ServiceEngine(cloud, store)
    hydrated = engine.recover()
    executed = engine.run(max_steps=args.steps)
    summary = engine.summary()
    print(
        f"serve: {summary['jobs']} job(s), {executed} step(s) executed, "
        f"{hydrated} recovered from {args.store}"
    )
    for state, count in summary["by_state"].items():
        print(f"  {state:12s} {count}")
    if summary["fleet_workflows"]:
        print(f"  fleet: {summary['fleet_workflows']} workflow(s) under "
              "management")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a saved run report (JSON) or analyze a trace (JSONL)."""
    if args.file.endswith(".jsonl"):
        spans = load_jsonl(args.file)
        analysis = analyze_trace(spans)
        print(
            f"{analysis.n_requests} requests, "
            f"total critical-path time {analysis.total_latency_s():.3f}s"
        )
        for kind, entry in analysis.by_kind().items():
            print(
                f"  {kind:12s} {entry['seconds']:10.3f}s "
                f"{entry['share']:6.1%}"
            )
        gates = analysis.sync_gates()
        for node, entry in gates.items():
            gated = ", ".join(
                f"{edge} x{count}" for edge, count in entry["gated_by"].items()
            )
            print(
                f"  sync {node}: {entry['n']} joins, gated by {gated}, "
                f"mean straggle {entry['mean_straggle_s']:.4f}s"
            )
        if args.requests:
            for path in analysis.requests:
                print(render_critical_path(path))
        return 0
    with open(args.file, "r", encoding="utf-8") as fh:
        report = RunReport.from_json(fh.read())
    print(report.to_markdown(), end="")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    regions = _parse_regions(args.regions)
    cloud = SimulatedCloud(seed=args.seed, regions=regions)
    deployed, executor, _utility = deploy_benchmark(app, cloud)
    warm_up(executor, app, args.size, n=10)
    scenario = (
        TransmissionScenario.worst_case()
        if args.worst_case
        else TransmissionScenario.best_case()
    )
    stats = SolverStats()
    plan_set = solve_plan_set(
        deployed, executor, scenario,
        solver_settings=_solver_settings(args),
        stats=stats, jobs=args.jobs, backend=args.backend,
    )
    print(f"24-hour plan set for {app.name} over {', '.join(regions)}:")
    last = None
    for hour in range(24):
        plan = plan_set.plan_for_hour(hour)
        summary = ", ".join(f"{n}->{r}" for n, r in sorted(plan.assignments.items()))
        if summary != last:
            print(f"  {hour:02d}:00  {summary}")
            last = summary
    print(f"solver stats: {stats.summary()}")
    return 0


def cmd_carbon(args: argparse.Namespace) -> int:
    cloud = SimulatedCloud(seed=args.seed)
    hours = min(args.hours, cloud.carbon_source.horizon_hours)
    print(f"{'hour':>4s}  " + "  ".join(f"{r:>14s}" for r in cloud.regions))
    for hour in range(hours):
        row = "  ".join(
            f"{cloud.carbon_source.intensity_at_hour(r, hour):14.1f}"
            for r in cloud.regions
        )
        print(f"{hour:4d}  {row}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="caribou",
        description="Caribou reproduction CLI (simulated cloud).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list benchmark workflows")
    p_list.set_defaults(func=cmd_list)

    p_deploy = sub.add_parser("deploy", help="initial deployment of a workflow")
    p_deploy.add_argument("app")
    p_deploy.add_argument("--regions", default=None)
    p_deploy.add_argument("--seed", type=int, default=0)
    p_deploy.set_defaults(func=cmd_deploy)

    p_run = sub.add_parser("run", help="deploy + solve + run invocations")
    p_run.add_argument("app")
    p_run.add_argument("--size", choices=("small", "large"), default="small")
    p_run.add_argument("-n", "--invocations", type=int, default=20)
    p_run.add_argument("--regions", default=None)
    p_run.add_argument("--coarse", metavar="REGION", default=None,
                       help="static single-region deployment instead of Caribou")
    p_run.add_argument("--chaos", action="store_true",
                       help="inject the stock fault schedule (region outage, "
                            "5%% invocation failures, KV slowdown)")
    p_run.add_argument("--trace", metavar="FILE", default=None,
                       help="record a structured span trace of the run and "
                            "write it to FILE as JSON Lines")
    p_run.add_argument("--metrics", metavar="FILE", default=None,
                       help="dump the run's MetricsRegistry snapshot to "
                            "FILE as JSON")
    p_run.add_argument("--report", metavar="FILE", default=None,
                       help="write the unified run report (critical path, "
                            "per-region carbon/cost, metrics, reliability) "
                            "to FILE as JSON; render it with `caribou "
                            "report FILE`")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--jobs", type=int, default=None,
                       help="solver hour fan-out: worker threads for the "
                            "24-hour solve (0 = one per CPU; default "
                            "serial); the plan set is identical for any "
                            "worker count")
    p_run.add_argument("--backend", choices=("thread", "process"), default=None,
                       help="worker pool flavour for the hour fan-out "
                            "(default thread); 'process' forks worker "
                            "processes and returns the identical plan set")
    p_run.add_argument("--solver", choices=("hbss", "coarse", "exhaustive", "exact"),
                       default=None,
                       help="search strategy (default hbss; 'exact' runs the "
                            "provably-optimal branch-and-bound)")
    p_run.add_argument("--wave", type=int, default=None,
                       help="HBSS candidate wave size: evaluate this many "
                            "fresh candidates per batched kernel call "
                            "(default 1 = the paper's serial trajectory)")
    p_run.add_argument("--trace-sample", type=int, default=1,
                       help="keep every N-th request's spans in the trace "
                            "(default 1 = record everything); cuts tracer "
                            "overhead on hot paths")
    p_run.add_argument("--timeseries", metavar="FILE", default=None,
                       help="sample every metric into per-window points on "
                            "the virtual clock and write the series to FILE "
                            "as JSONL (render with `caribou dash FILE`)")
    p_run.add_argument("--window", type=float, default=DEFAULT_WINDOW_S,
                       help="telemetry window in virtual seconds "
                            "(default 3600 = the solver's hour granularity)")
    p_run.add_argument("--slo", metavar="SPEC", action="append", nargs="?",
                       const="", default=None,
                       help="evaluate an SLO per window, e.g. "
                            "'p95(executor.request_latency_s)<=1.0' or "
                            "'rate(a/b)<=0.01@0.999'; repeatable; bare "
                            "--slo applies the stock objectives")
    p_run.add_argument("--export-prom", metavar="FILE", default=None,
                       help="write the run's final metrics as Prometheus "
                            "text exposition to FILE")
    p_run.set_defaults(func=cmd_run)

    p_solve = sub.add_parser("solve", help="print the solved 24-hour plan set")
    p_solve.add_argument("app")
    p_solve.add_argument("--size", choices=("small", "large"), default="small")
    p_solve.add_argument("--regions", default=None)
    p_solve.add_argument("--worst-case", action="store_true")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--jobs", type=int, default=None,
                         help="solver hour fan-out: worker threads for the "
                              "24-hour solve (0 = one per CPU; default "
                              "serial)")
    p_solve.add_argument("--backend", choices=("thread", "process"),
                         default=None,
                         help="worker pool flavour for the hour fan-out "
                              "(default thread); 'process' forks worker "
                              "processes and returns the identical plan set")
    p_solve.add_argument("--solver", choices=("hbss", "coarse", "exhaustive", "exact"),
                       default=None,
                       help="search strategy (default hbss; 'exact' runs the "
                            "provably-optimal branch-and-bound)")
    p_solve.add_argument("--wave", type=int, default=None,
                         help="HBSS candidate wave size: evaluate this many "
                              "fresh candidates per batched kernel call "
                              "(default 1 = the paper's serial trajectory)")
    p_solve.set_defaults(func=cmd_solve)

    p_report = sub.add_parser(
        "report",
        help="render a saved run report (.json) or analyze a trace (.jsonl)",
    )
    p_report.add_argument("file", help="run-report JSON or trace JSONL path")
    p_report.add_argument("--requests", action="store_true",
                          help="also print each request's critical path "
                               "(trace input only)")
    p_report.set_defaults(func=cmd_report)

    p_carbon = sub.add_parser("carbon", help="show synthetic carbon traces")
    p_carbon.add_argument("--hours", type=int, default=24)
    p_carbon.add_argument("--seed", type=int, default=0)
    p_carbon.set_defaults(func=cmd_carbon)

    p_diff = sub.add_parser(
        "diff",
        help="compare two runs: delta table over reports or series dumps",
    )
    p_diff.add_argument("a", help="first run artifact (report JSON or "
                                  "series JSONL)")
    p_diff.add_argument("b", help="second run artifact (same kind as A)")
    p_diff.set_defaults(func=cmd_diff)

    p_dash = sub.add_parser(
        "dash",
        help="offline terminal dashboard (sparklines) for a series dump",
    )
    p_dash.add_argument("series", help="series JSONL from `caribou run "
                                       "--timeseries`")
    p_dash.add_argument("--report", metavar="FILE", default=None,
                        help="run report JSON to pull SLO budget lines from")
    p_dash.add_argument("--width", type=int, default=48,
                        help="max sparkline width in characters (default 48)")
    p_dash.set_defaults(func=cmd_dash)

    p_fleet = sub.add_parser(
        "fleet-report",
        help="run a small managed fleet and print its control-loop rollup",
    )
    p_fleet.add_argument("app")
    p_fleet.add_argument("-w", "--workflows", type=int, default=4,
                         help="fleet size: copies of APP to manage "
                              "(default 4)")
    p_fleet.add_argument("-n", "--invocations", type=int, default=2,
                         help="warm-up invocations per workflow (default 2)")
    p_fleet.add_argument("--size", choices=("small", "large"), default="small")
    p_fleet.add_argument("--regions", default=None)
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--json", action="store_true",
                         help="emit the raw rollup as JSON instead of "
                              "markdown")
    p_fleet.set_defaults(func=cmd_fleet_report)

    p_submit = sub.add_parser(
        "submit",
        help="submit a workflow as a durable job (drive it with `serve`)",
    )
    p_submit.add_argument("app")
    p_submit.add_argument("--size", choices=("small", "large"),
                          default="small")
    p_submit.add_argument("--job-id", default=None,
                          help="explicit job id (default APP-NNNN)")
    p_submit.add_argument("--store", default=DEFAULT_JOB_STORE,
                          help=f"durable job store path (default "
                               f"{DEFAULT_JOB_STORE})")
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser("jobs", help="list jobs in the durable store")
    p_jobs.add_argument("--store", default=DEFAULT_JOB_STORE)
    p_jobs.add_argument("--json", action="store_true")
    p_jobs.set_defaults(func=cmd_jobs)

    p_job = sub.add_parser(
        "job", help="show one job record and its transition journal"
    )
    p_job.add_argument("job_id")
    p_job.add_argument("--store", default=DEFAULT_JOB_STORE)
    p_job.add_argument("--json", action="store_true")
    p_job.set_defaults(func=cmd_job)

    p_cancel = sub.add_parser("cancel", help="cancel a job")
    p_cancel.add_argument("job_id")
    p_cancel.add_argument("--store", default=DEFAULT_JOB_STORE)
    p_cancel.set_defaults(func=cmd_cancel)

    p_serve = sub.add_parser(
        "serve",
        help="tick the service engine over the job store "
             "(submit -> analyze -> solve -> deploy -> monitor)",
    )
    p_serve.add_argument("--store", default=DEFAULT_JOB_STORE)
    p_serve.add_argument("--steps", type=int, default=16,
                         help="maximum pipeline steps to execute "
                              "(default 16)")
    p_serve.add_argument("--regions", default=None)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
