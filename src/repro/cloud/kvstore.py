"""Distributed key-value store (DynamoDB substitute).

Caribou's components "interact asynchronously through a distributed
key-value store" (§3): deployment plans, workflow metadata, sync-node
edge annotations, and intermediate data all live here.  The critical
semantic the workflow model needs is the *atomic* update of a sync
node's edge annotation (§4): the predecessor that completes the
invocation condition last is the one that invokes the sync node, which
requires read-modify-write atomicity.

The store is hosted in a home region; accesses from other regions pay
the inter-region round trip.  Every access is metered as a read or write
request unit for the cost model (§7.1 "additional DynamoDB accesses
introduced by Caribou").
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.cloud.ledger import KvAccessRecord, MeteringLedger
from repro.cloud.simulator import SimulationEnvironment
from repro.common.errors import (
    ConditionalCheckFailed,
    KeyValueStoreError,
    RegionUnavailableError,
)
from repro.data.latency import LatencySource
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:
    from repro.cloud.faults import FaultInjector
    from repro.obs.trace import Tracer


def _snapshot(value: Any) -> Any:
    """Deep-copy a stored value the fast way.

    Every KV operation snapshots values so callers cannot mutate the
    store's internals (DynamoDB hands back serialised items, never
    references) — and at open-loop request rates those copies are the
    simulation's hottest allocation site.  Values here are JSON-shaped
    (plans, annotations, message bodies), so a direct structural walk
    copies them ~10x faster than ``copy.deepcopy``'s generic machinery;
    anything exotic falls back to ``deepcopy`` for identical semantics.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, dict):
        return {k: _snapshot(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_snapshot(v) for v in value]
    if isinstance(value, tuple):
        return tuple(_snapshot(v) for v in value)
    return copy.deepcopy(value)


class KeyValueStore:
    """A multi-table KV store hosted in one region.

    All operations return ``(result, access_latency_s)`` so callers can
    fold storage round trips into their virtual-time accounting.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        region: str,
        latency_source: LatencySource,
        ledger: MeteringLedger,
        base_latency_s: float = 0.004,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        """Args:
        env: Simulation environment.
        region: Region hosting the store.
        latency_source: For cross-region access RTTs.
        ledger: Metering sink.
        base_latency_s: Single-digit-millisecond request latency that
            DynamoDB exhibits even for local callers.
        faults: Optional fault injector (KV op errors, latency
            inflation, host-region outages).
        tracer: Span tracer (one ``kv`` span per operation).
        metrics: Metrics registry (read/write units, latency).
        """
        self._env = env
        self.region = region
        self._latency = latency_source
        self._ledger = ledger
        self._base_latency = base_latency_s
        self._faults = faults
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._tables: Dict[str, Dict[str, Any]] = {}
        # Instruments are fixed for the store's lifetime (one region
        # label); resolve them once instead of per operation.
        self._ctr_reads = self._metrics.counter("kv.reads", region=region)
        self._ctr_writes = self._metrics.counter("kv.writes", region=region)
        self._hist_latency = self._metrics.histogram("kv.access_latency_s")

    # -- infrastructure ----------------------------------------------------
    def _check_fault(self, workflow: str = "") -> None:
        """Raise before mutating state when an injected fault fires."""
        if self._faults is None:
            return
        if self._faults.region_down(self.region):
            self._faults.record("region_outage")
            raise RegionUnavailableError(
                f"key-value store host region {self.region} is down"
            )
        if self._faults.kv_error(self.region, workflow):
            raise KeyValueStoreError(
                f"injected key-value store error in {self.region}"
            )

    def _access_latency(self, caller_region: str) -> float:
        if caller_region == self.region:
            latency = self._base_latency
        else:
            latency = self._base_latency + self._latency.rtt(caller_region, self.region)
        if self._faults is not None:
            latency *= self._faults.kv_latency_factor(self.region)
        return latency

    def _meter(
        self,
        table: str,
        caller_region: str,
        write: bool,
        workflow: str,
        request_id: str,
        op: str = "",
    ) -> float:
        self._ledger.record_kv_access(
            KvAccessRecord(
                workflow=workflow,
                table=table,
                region=self.region,
                start_s=self._env.now(),
                write=write,
                request_id=request_id,
            )
        )
        latency = self._access_latency(caller_region)
        op = op or ("write" if write else "read")
        if self._tracer.enabled:
            now = self._env.now()
            self._tracer.record(
                "kv",
                f"{op}:{table}",
                t0=now,
                t1=now + latency,
                workflow=workflow,
                request_id=request_id,
                op=op,
                table=table,
                region=self.region,
                caller_region=caller_region,
            )
        (self._ctr_writes if write else self._ctr_reads).inc()
        self._hist_latency.observe(latency)
        return latency

    def _table(self, name: str) -> Dict[str, Any]:
        return self._tables.setdefault(name, {})

    def tables(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    # -- operations ---------------------------------------------------------
    def put(
        self,
        table: str,
        key: str,
        value: Any,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> float:
        """Store ``value`` under ``key``.  Returns access latency."""
        self._check_fault(workflow)
        caller = caller_region or self.region
        self._table(table)[key] = _snapshot(value)
        return self._meter(table, caller, True, workflow, request_id, op="put")

    def get(
        self,
        table: str,
        key: str,
        caller_region: Optional[str] = None,
        default: Any = None,
        workflow: str = "",
        request_id: str = "",
    ) -> Tuple[Any, float]:
        """Fetch ``key``.  Returns ``(value or default, latency)``."""
        self._check_fault(workflow)
        caller = caller_region or self.region
        latency = self._meter(table, caller, False, workflow, request_id, op="get")
        value = self._table(table).get(key, default)
        return _snapshot(value), latency

    def delete(
        self,
        table: str,
        key: str,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> float:
        self._check_fault(workflow)
        caller = caller_region or self.region
        self._table(table).pop(key, None)
        return self._meter(table, caller, True, workflow, request_id, op="delete")

    def update(
        self,
        table: str,
        key: str,
        fn: Callable[[Any], Any],
        caller_region: Optional[str] = None,
        default: Any = None,
        workflow: str = "",
        request_id: str = "",
    ) -> Tuple[Any, float]:
        """Atomically apply ``fn`` to the current value (read-modify-write).

        This is the primitive sync-node edge annotations rely on (§4):
        the simulator is single-threaded, so applying ``fn`` in place is
        genuinely atomic with respect to all other simulated actors.

        Returns ``(new_value, latency)``.
        """
        self._check_fault(workflow)
        caller = caller_region or self.region
        tbl = self._table(table)
        current = _snapshot(tbl.get(key, default))
        new_value = fn(current)
        tbl[key] = _snapshot(new_value)
        latency = self._meter(table, caller, True, workflow, request_id, op="update")
        return new_value, latency

    def conditional_put(
        self,
        table: str,
        key: str,
        expected: Any,
        value: Any,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> float:
        """Compare-and-set: write ``value`` only if current == ``expected``.

        Raises :class:`ConditionalCheckFailed` on mismatch (DynamoDB's
        ``ConditionalCheckFailedException``), still charging a write unit
        as DynamoDB does.
        """
        self._check_fault(workflow)
        caller = caller_region or self.region
        tbl = self._table(table)
        latency = self._meter(table, caller, True, workflow, request_id, op="conditional_put")
        current = tbl.get(key)
        if current != expected:
            raise ConditionalCheckFailed(
                f"{table}/{key}: expected {expected!r}, found {current!r}"
            )
        tbl[key] = _snapshot(value)
        return latency

    def increment(
        self,
        table: str,
        key: str,
        amount: float = 1.0,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> Tuple[float, float]:
        """Atomic counter increment.  Returns ``(new_value, latency)``."""

        def bump(current: Any) -> float:
            if current is None:
                return amount
            if not isinstance(current, (int, float)):
                raise KeyValueStoreError(
                    f"{table}/{key} holds non-numeric value {current!r}"
                )
            return current + amount

        return self.update(
            table,
            key,
            bump,
            caller_region=caller_region,
            default=None,
            workflow=workflow,
            request_id=request_id,
        )

    def scan(
        self,
        table: str,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> Tuple[Dict[str, Any], float]:
        """Return a deep copy of the whole table (DynamoDB Scan)."""
        self._check_fault(workflow)
        caller = caller_region or self.region
        latency = self._meter(table, caller, False, workflow, request_id, op="scan")
        return _snapshot(self._table(table)), latency
