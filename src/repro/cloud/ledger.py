"""Metering ledger: the raw telemetry every experiment is built on.

Each simulated service appends immutable records here — function
executions (what AWS Lambda logs + Lambda Insights would expose, §7.2),
data transmissions, pub/sub publishes, and KV-store accesses.  Higher
layers (the Metrics Manager, the experiment harness) derive carbon, cost,
and latency from these records; the ledger itself stores measurements
only, mirroring the paper's separation between raw data sources and
data-processing (Fig. 4, orange vs yellow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True, slots=True)
class ExecutionRecord:
    """One function execution (Lambda log line + Insights metrics).

    Attributes:
        workflow: Workflow instance name.
        node: DAG node id executed.
        function: Source-code function name backing the node.
        region: Region the execution ran in.
        request_id: End-to-end workflow invocation this belongs to.
        start_s / duration_s: Virtual start time and billed duration.
        memory_mb: Configured memory size.
        n_vcpu: vCPUs allotted (memory_mb / 1769, §7.1).
        cpu_total_time_s: Total CPU time across vCPUs (Lambda Insights'
            ``cpu_total_time``, used for the utilisation power model).
        cold_start: Whether a new container was provisioned.
        payload_bytes: Input payload size.
        output_bytes: Output payload size.
    """

    workflow: str
    node: str
    function: str
    region: str
    request_id: str
    start_s: float
    duration_s: float
    memory_mb: int
    n_vcpu: float
    cpu_total_time_s: float
    cold_start: bool
    payload_bytes: float
    output_bytes: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True, slots=True)
class TransmissionRecord:
    """One inter- or intra-region data transfer.

    Covers both intermediate-data hops between DAG nodes and framework
    traffic (image copies, KV replication), distinguished by ``kind``.
    """

    workflow: str
    src_region: str
    dst_region: str
    size_bytes: float
    start_s: float
    latency_s: float
    request_id: str = ""
    kind: str = "data"  # "data" | "image" | "control"
    edge: str = ""  # "src_node->dst_node" for data hops

    @property
    def intra_region(self) -> bool:
        return self.src_region == self.dst_region


@dataclass(frozen=True, slots=True)
class MessagingRecord:
    """One pub/sub publish (SNS message, billed per publish)."""

    workflow: str
    topic: str
    region: str
    start_s: float
    size_bytes: float
    request_id: str = ""


@dataclass(frozen=True, slots=True)
class KvAccessRecord:
    """One key-value store access (DynamoDB request unit)."""

    workflow: str
    table: str
    region: str
    start_s: float
    write: bool
    request_id: str = ""


@dataclass
class RegionUsage:
    """Everything one region did during a run, grouped for pricing.

    Transmissions are attributed to their *source* region (egress is
    billed and powered where the bytes leave).  Raw record lists are
    kept so callers can price them under any transmission scenario.
    """

    executions: List[ExecutionRecord] = field(default_factory=list)
    transmissions: List[TransmissionRecord] = field(default_factory=list)
    messages: List[MessagingRecord] = field(default_factory=list)
    kv_accesses: List[KvAccessRecord] = field(default_factory=list)

    @property
    def n_executions(self) -> int:
        return len(self.executions)

    @property
    def exec_seconds(self) -> float:
        return sum(r.duration_s for r in self.executions)

    @property
    def bytes_out(self) -> float:
        return sum(r.size_bytes for r in self.transmissions)


class MeteringLedger:
    """Append-only store of telemetry records with simple querying."""

    def __init__(self) -> None:
        self.executions: List[ExecutionRecord] = []
        self.transmissions: List[TransmissionRecord] = []
        self.messages: List[MessagingRecord] = []
        self.kv_accesses: List[KvAccessRecord] = []

    # -- append -----------------------------------------------------------
    def record_execution(self, record: ExecutionRecord) -> None:
        self.executions.append(record)

    def record_transmission(self, record: TransmissionRecord) -> None:
        self.transmissions.append(record)

    def record_message(self, record: MessagingRecord) -> None:
        self.messages.append(record)

    def record_kv_access(self, record: KvAccessRecord) -> None:
        self.kv_accesses.append(record)

    # -- query ------------------------------------------------------------
    def executions_for(
        self, workflow: Optional[str] = None, request_id: Optional[str] = None
    ) -> List[ExecutionRecord]:
        return [
            r
            for r in self.executions
            if (workflow is None or r.workflow == workflow)
            and (request_id is None or r.request_id == request_id)
        ]

    def transmissions_for(
        self, workflow: Optional[str] = None, request_id: Optional[str] = None
    ) -> List[TransmissionRecord]:
        return [
            r
            for r in self.transmissions
            if (workflow is None or r.workflow == workflow)
            and (request_id is None or r.request_id == request_id)
        ]

    def messages_for(
        self, workflow: Optional[str] = None, request_id: Optional[str] = None
    ) -> List[MessagingRecord]:
        return [
            r
            for r in self.messages
            if (workflow is None or r.workflow == workflow)
            and (request_id is None or r.request_id == request_id)
        ]

    def kv_accesses_for(
        self, workflow: Optional[str] = None, request_id: Optional[str] = None
    ) -> List[KvAccessRecord]:
        return [
            r
            for r in self.kv_accesses
            if (workflow is None or r.workflow == workflow)
            and (request_id is None or r.request_id == request_id)
        ]

    def request_ids(self, workflow: str) -> List[str]:
        """Distinct request ids seen for ``workflow``, in arrival order."""
        seen: Dict[str, None] = {}
        for r in self.executions:
            if r.workflow == workflow and r.request_id not in seen:
                seen[r.request_id] = None
        return list(seen)

    def usage_by_region(
        self, workflow: Optional[str] = None
    ) -> Dict[str, RegionUsage]:
        """Group every record by the region that performed it.

        The result covers the *whole* ledger window (warm-up, framework
        traffic, and measured requests alike) — it answers "what did
        each region do", not "what did one invocation cost".  Keys are
        sorted for deterministic serialisation.
        """
        usage: Dict[str, RegionUsage] = {}

        def bucket(region: str) -> RegionUsage:
            if region not in usage:
                usage[region] = RegionUsage()
            return usage[region]

        for rec in self.executions:
            if workflow is None or rec.workflow == workflow:
                bucket(rec.region).executions.append(rec)
        for trans in self.transmissions:
            if workflow is None or trans.workflow == workflow:
                bucket(trans.src_region).transmissions.append(trans)
        for msg in self.messages:
            if workflow is None or msg.workflow == workflow:
                bucket(msg.region).messages.append(msg)
        for access in self.kv_accesses:
            if workflow is None or access.workflow == workflow:
                bucket(access.region).kv_accesses.append(access)
        return {region: usage[region] for region in sorted(usage)}

    def service_time(self, workflow: str, request_id: str) -> float:
        """End-to-end service time of one invocation (§9.1 definition):
        first function start to last function end."""
        execs = self.executions_for(workflow, request_id)
        if not execs:
            raise KeyError(f"no executions for {workflow}/{request_id}")
        return max(e.end_s for e in execs) - min(e.start_s for e in execs)

    def clear(self) -> None:
        self.executions.clear()
        self.transmissions.clear()
        self.messages.clear()
        self.kv_accesses.clear()
