"""Deterministic fault injection for the simulated cloud.

The paper's reliability mechanisms — pub/sub at-least-once redelivery
(§6.2), home-region fallback for unmaterialised deployments, and
rollback of failed migrations (§6.1) — only matter when something goes
wrong.  This module makes "something going wrong" a first-class,
*reproducible* experiment input: a :class:`FaultPlan` declares faults
per (workflow, function, region) and per virtual-time window, and a
:class:`FaultInjector` — seeded from the experiment's RNG registry —
decides, deterministically, when each fault fires.

Injectable fault kinds:

* ``invocation_failure`` / ``invocation_timeout`` — a function
  invocation crashes (or hits its execution deadline) before the
  handler's effects occur; pub/sub redelivers with backoff.
* ``cold_start_spike`` — cold-start provisioning delays are multiplied
  by ``factor`` (co-tenant pressure, image-pull slowdowns).
* ``region_outage`` — an entire region is dark: its functions refuse
  deployments and invocations, its pub/sub topics accept no deliveries,
  and a KV store hosted there errors out.
* ``kv_error`` / ``kv_latency`` — individual KV operations fail, or all
  accesses to a store are slowed by ``factor``.
* ``network_partition`` — transfers between two regions fail (in both
  directions) while the window is open.

Everything is inert by default: an empty plan never touches the RNG and
never changes behaviour, so no-fault runs remain byte-identical to a
cloud built without any fault machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.cloud.simulator import SimulationEnvironment

#: Every fault kind a rule may declare.
FAULT_KINDS = (
    "invocation_failure",
    "invocation_timeout",
    "cold_start_spike",
    "region_outage",
    "kv_error",
    "kv_latency",
    "network_partition",
)


@dataclass(frozen=True)
class FaultRule:
    """One injectable fault, scoped by target and time window.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        region: Target region (outages, KV faults, invocation faults);
            ``None`` matches every region.
        workflow / function: Scope invocation-level faults; ``None``
            matches everything.
        src_region / dst_region: Endpoints of a network partition (the
            partition is symmetric; either orientation matches).
        start_s / end_s: Half-open virtual-time window ``[start, end)``
            the rule is active in.
        probability: Chance the fault fires at each opportunity; 1.0
            fires always and consumes no randomness.
        factor: Multiplier for ``cold_start_spike`` / ``kv_latency``.
    """

    kind: str
    region: Optional[str] = None
    workflow: Optional[str] = None
    function: Optional[str] = None
    src_region: Optional[str] = None
    dst_region: Optional[str] = None
    start_s: float = 0.0
    end_s: float = math.inf
    probability: float = 1.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.factor <= 0.0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"empty fault window [{self.start_s}, {self.end_s})"
            )
        if self.kind == "network_partition" and (
            self.src_region is None or self.dst_region is None
        ):
            raise ValueError("network_partition needs src_region and dst_region")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s

    def matches(
        self,
        workflow: Optional[str] = None,
        function: Optional[str] = None,
        region: Optional[str] = None,
    ) -> bool:
        """Scope check: a ``None`` field on the rule matches anything."""
        if self.workflow is not None and workflow != self.workflow:
            return False
        if self.function is not None and function != self.function:
            return False
        if self.region is not None and region != self.region:
            return False
        return True

    def joins(self, region_a: str, region_b: str) -> bool:
        """Whether a partition rule separates ``region_a`` and ``region_b``."""
        return {self.src_region, self.dst_region} == {region_a, region_b}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault rules.

    The default plan is empty (no faults).  ``with_*`` builders return a
    new plan with one more rule, so chaos scenarios read declaratively::

        plan = (FaultPlan()
                .with_region_outage("us-west-2", start_s=day, end_s=2 * day)
                .with_invocation_failures(0.05)
                .with_kv_latency(3.0))
    """

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def of_kind(self, kind: str) -> Tuple[FaultRule, ...]:
        return tuple(r for r in self.rules if r.kind == kind)

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return replace(self, rules=self.rules + (rule,))

    # -- declarative builders ------------------------------------------------
    def with_invocation_failures(
        self,
        probability: float,
        workflow: Optional[str] = None,
        function: Optional[str] = None,
        region: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="invocation_failure", probability=probability,
            workflow=workflow, function=function, region=region,
            start_s=start_s, end_s=end_s,
        ))

    def with_invocation_timeouts(
        self,
        probability: float,
        workflow: Optional[str] = None,
        function: Optional[str] = None,
        region: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="invocation_timeout", probability=probability,
            workflow=workflow, function=function, region=region,
            start_s=start_s, end_s=end_s,
        ))

    def with_cold_start_spike(
        self,
        factor: float,
        region: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="cold_start_spike", factor=factor, region=region,
            start_s=start_s, end_s=end_s,
        ))

    def with_region_outage(
        self, region: str, start_s: float = 0.0, end_s: float = math.inf
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="region_outage", region=region, start_s=start_s, end_s=end_s,
        ))

    def with_kv_errors(
        self,
        probability: float,
        region: Optional[str] = None,
        workflow: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="kv_error", probability=probability, region=region,
            workflow=workflow, start_s=start_s, end_s=end_s,
        ))

    def with_kv_latency(
        self,
        factor: float,
        region: Optional[str] = None,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="kv_latency", factor=factor, region=region,
            start_s=start_s, end_s=end_s,
        ))

    def with_network_partition(
        self,
        region_a: str,
        region_b: str,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ) -> "FaultPlan":
        return self.with_rule(FaultRule(
            kind="network_partition", src_region=region_a, dst_region=region_b,
            start_s=start_s, end_s=end_s,
        ))


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the simulation clock.

    Services ask the injector whether a fault applies to the operation
    they are about to perform; probabilistic rules draw from a dedicated
    ``"faults"`` RNG stream so chaos experiments never perturb the
    workload's own sampling.  Fired faults are tallied in
    :attr:`injected` (per kind) for the reliability counters.
    """

    def __init__(self, plan: FaultPlan, env: SimulationEnvironment):
        self._plan = plan
        self._env = env
        self._rng = env.rng.get("faults") if plan else None
        self._by_kind: Dict[str, Tuple[FaultRule, ...]] = {
            kind: plan.of_kind(kind) for kind in FAULT_KINDS
        }
        self.injected: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return bool(self._plan)

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def record(self, kind: str) -> None:
        """Tally one fired fault of ``kind`` (services call this at the
        moment a fault actually blocks an operation)."""
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        return dict(self.injected)

    # -- internals -----------------------------------------------------------
    def _fires(self, rule: FaultRule) -> bool:
        if rule.probability >= 1.0:
            return True
        return float(self._rng.random()) < rule.probability

    def _active(self, kind: str) -> Tuple[FaultRule, ...]:
        rules = self._by_kind[kind]
        if not rules:
            return ()
        now = self._env.now()
        return tuple(r for r in rules if r.active(now))

    # -- queries (one per fault site) ---------------------------------------
    def region_down(self, region: str) -> bool:
        """Whether an outage window currently covers ``region``.

        Pure query — callers :meth:`record` when the outage actually
        blocks an operation.
        """
        if not self._by_kind["region_outage"]:
            # Hot path: every invocation/KV op asks; skip the generator
            # machinery entirely when the plan has no outage rules.
            return False
        return any(r.matches(region=region) for r in self._active("region_outage"))

    def invocation_fault(
        self, workflow: str, function: str, region: str
    ) -> Optional[str]:
        """``"failure"``/``"timeout"`` when an invocation fault fires, else
        ``None``.  Fired faults are recorded here."""
        for kind, outcome in (
            ("invocation_failure", "failure"),
            ("invocation_timeout", "timeout"),
        ):
            if not self._by_kind[kind]:
                continue
            for rule in self._active(kind):
                if rule.matches(workflow, function, region) and self._fires(rule):
                    self.record(kind)
                    return outcome
        return None

    def cold_start_multiplier(
        self, workflow: str, function: str, region: str
    ) -> float:
        """Combined cold-start delay multiplier (1.0 when no spike)."""
        if not self._by_kind["cold_start_spike"]:
            return 1.0
        multiplier = 1.0
        for rule in self._active("cold_start_spike"):
            if rule.matches(workflow, function, region) and self._fires(rule):
                multiplier *= rule.factor
        if multiplier != 1.0:
            self.record("cold_start_spike")
        return multiplier

    def kv_error(self, region: str, workflow: str = "") -> bool:
        """Whether an injected KV error fires for one operation."""
        if not self._by_kind["kv_error"]:
            return False
        for rule in self._active("kv_error"):
            if rule.matches(workflow=workflow or None, region=region) and self._fires(rule):
                self.record("kv_error")
                return True
        return False

    def kv_latency_factor(self, region: str) -> float:
        """Latency multiplier for KV accesses to a store in ``region``."""
        if not self._by_kind["kv_latency"]:
            return 1.0
        factor = 1.0
        for rule in self._active("kv_latency"):
            if rule.matches(region=region) and self._fires(rule):
                factor *= rule.factor
        if factor != 1.0:
            self.record("kv_latency")
        return factor

    def partitioned(self, region_a: str, region_b: str) -> bool:
        """Whether a partition currently separates the two regions.

        Pure query — callers :meth:`record` when a transfer is refused.
        """
        if region_a == region_b or not self._by_kind["network_partition"]:
            return False
        return any(
            r.joins(region_a, region_b) for r in self._active("network_partition")
        )


@dataclass
class ReliabilityStats:
    """Per-workflow reliability counters for one simulated run.

    Mirrors how PR 1 surfaced ``SolverStats``: accumulated by the
    executor + cloud services, snapshotted into
    :class:`~repro.experiments.harness.RunOutcome` and printed by the
    CLI.
    """

    #: Fired faults per kind (from :attr:`FaultInjector.injected`).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Pub/sub redelivery attempts for this workflow's messages.
    retries: int = 0
    #: Messages (or acked-then-failed continuations) given up on.
    dead_letters: int = 0
    #: Publishes rerouted to the home region (§6.1 fallback).
    home_fallbacks: int = 0
    #: Requests that reached a terminal DAG node.
    completed_requests: int = 0
    #: Requests explicitly failed (dead-lettered / undeliverable).
    failed_requests: int = 0
    #: Requests cut off by the end-to-end watchdog.
    timed_out_requests: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def tracked_requests(self) -> int:
        """Every request accounted for: completed, failed, or timed out."""
        return (
            self.completed_requests
            + self.failed_requests
            + self.timed_out_requests
        )

    def summary(self) -> str:
        injected = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
            or "none"
        )
        return (
            f"requests {self.completed_requests} ok / "
            f"{self.failed_requests} failed / "
            f"{self.timed_out_requests} timed out; "
            f"retries={self.retries}, dead_letters={self.dead_letters}, "
            f"home_fallbacks={self.home_fallbacks}; injected: {injected}"
        )
