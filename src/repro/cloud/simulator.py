"""Discrete-event simulation core.

A minimal but complete event loop over virtual time: components schedule
callbacks at absolute or relative times; :meth:`SimulationEnvironment.run`
pops them in timestamp order (FIFO among ties, for determinism) and
advances the shared :class:`~repro.common.clock.VirtualClock` as it goes.

The whole cloud is single-threaded — "parallelism" (fan-out stages,
concurrent invocations) is expressed purely through event timestamps,
which is exactly what the paper's end-to-end service-time accounting
needs (§9.1: request received by the first function to the end of the
last function).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.clock import VirtualClock
from repro.common.rng import RngRegistry
from repro.obs.profile import profiled_phase


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEnvironment.schedule`.

    Allows cancelling a pending event (used e.g. by pub/sub retry timers
    once an ack arrives).
    """

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def pending(self) -> bool:
        return not self._event.cancelled


class SimulationEnvironment:
    """Shared event loop, clock, and RNG registry for one simulated cloud."""

    def __init__(self, seed: int = 0, clock: Optional[VirtualClock] = None):
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = RngRegistry(seed)
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._executed = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now()

    @property
    def events_executed(self) -> int:
        """Total events processed so far (useful for overhead accounting)."""
        return self._executed

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now() + delay, action)

    def schedule_at(self, timestamp: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at an absolute virtual ``timestamp``."""
        if timestamp < self.now():
            raise ValueError(
                f"cannot schedule in the past: now={self.now()}, target={timestamp}"
            )
        event = _Event(time=timestamp, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._executed += 1
            event.action()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Args:
            until: Absolute virtual time to stop at.  Events scheduled at
                or before ``until`` still run; the clock is left at
                ``until`` when the horizon is the binding constraint.
            max_events: Safety valve for runaway simulations.

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        # One phase per run() call, not per event — the per-event cost of
        # a timer would dwarf many event actions and skew the numbers.
        with profiled_phase("sim.run"):
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
            if until is not None and self.now() < until:
                self.clock.advance_to(until)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        return self.run(max_events=max_events)
