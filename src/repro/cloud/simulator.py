"""Discrete-event simulation core.

A minimal but complete event loop over virtual time: components schedule
callbacks at absolute or relative times; :meth:`SimulationEnvironment.run`
pops them in timestamp order (FIFO among ties, for determinism) and
advances the shared :class:`~repro.common.clock.VirtualClock` as it goes.

The whole cloud is single-threaded — "parallelism" (fan-out stages,
concurrent invocations) is expressed purely through event timestamps,
which is exactly what the paper's end-to-end service-time accounting
needs (§9.1: request received by the first function to the end of the
last function).

Hot-path design (the fleet-scale rebuild)
-----------------------------------------
The loop has to sustain 100k+ events/s so that a fleet of hundreds of
workflows serving open-loop arrival traces stays simulable in wall-clock
minutes.  Three choices carry that budget:

* **Slotted event records.** Each scheduled event is a ``__slots__``
  record of ``(time, state, action)``.  Heap entries are plain
  ``(time, seq, record)`` tuples, so every heap comparison resolves on
  the first two elements at C speed — ``seq`` is unique, the record is
  never compared — instead of calling a dataclass ``__lt__``.

* **Lazy-deletion cancellation with periodic compaction.** ``cancel()``
  just flips the record's state; the entry stays in the heap and is
  discarded when it surfaces.  Pub/sub retry timers are cancelled far
  more often than they fire, so unreclaimed entries would grow the heap
  unboundedly on long runs — once cancelled entries outnumber live ones
  (past a small floor), the heap is compacted in place (one linear
  filter + ``heapify``), bounding memory to O(live events).

* **Batched same-timestamp dispatch.** ``run`` pops *all* events that
  share the head timestamp under a single clock advance and a single
  outer-loop iteration, instead of re-scanning the heap head and
  re-notifying clock observers per event.  Events a callback schedules
  at the current timestamp join the same batch after every
  already-queued tie (their ``seq`` is higher), which is exactly the
  FIFO order the serial loop produced — ordering is byte-identical to
  the legacy loop (see ``repro.cloud._legacy_simulator`` and the
  differential tests).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.common.rng import RngRegistry
from repro.obs.profile import profiled_phase

#: Event lifecycle states (ints, not an Enum — the loop reads them
#: millions of times and Enum attribute access costs ~10x).
_PENDING = 0
_CANCELLED = 1
_EXECUTED = 2

#: Compaction floor: below this many cancelled entries the heap is left
#: alone (rebuilding a tiny heap costs more than it frees).
_COMPACT_MIN_CANCELLED = 64


class _EventRecord:
    """One scheduled event.  Slotted: the loop allocates one of these
    per event, so per-instance dict overhead would dominate."""

    __slots__ = ("time", "state", "action")

    def __init__(self, time: float, action: Callable[[], None]):
        self.time = time
        self.state = _PENDING
        self.action = action


class EventHandle:
    """Handle returned by :meth:`SimulationEnvironment.schedule`.

    Allows cancelling a pending event (used e.g. by pub/sub retry timers
    once an ack arrives).  The handle tracks the full event lifecycle:
    ``pending`` is True only until the event executes or is cancelled,
    and :meth:`cancel` is a no-op on an event that already ran (it
    returns False rather than silently "succeeding").
    """

    __slots__ = ("_event", "_env")

    def __init__(self, event: _EventRecord, env: "SimulationEnvironment"):
        self._event = event
        self._env = env

    def cancel(self) -> bool:
        """Cancel the event if it is still pending.

        Returns True when this call actually cancelled it; False when
        the event had already executed or been cancelled (no-op).
        """
        event = self._event
        if event.state != _PENDING:
            return False
        event.state = _CANCELLED
        event.action = None  # drop the closure (and anything it captured)
        self._env._note_cancelled()
        return True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet run/cancelled."""
        return self._event.state == _PENDING

    @property
    def executed(self) -> bool:
        """True once the event's action has run."""
        return self._event.state == _EXECUTED

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled before running."""
        return self._event.state == _CANCELLED


class RepeatingEvent:
    """A self-rescheduling periodic event that cannot stall the loop.

    Fires ``action(boundary_time)`` at every absolute multiple of
    ``interval`` (starting strictly after arming) and re-arms itself
    only while *other* events are pending — so a periodic observer
    (the windowed telemetry flush, a health probe) never keeps
    ``run_until_idle`` alive on its own.  Once the queue drains past a
    firing, the event parks; :meth:`arm` resumes it, and :meth:`stop`
    cancels it outright.

    Alignment to absolute grid multiples (not ``now + interval``)
    keeps firings backend-invariant: the boundary schedule depends
    only on the virtual clock, never on when the observer attached
    relative to other work.
    """

    __slots__ = ("_env", "interval", "_action", "_handle", "fired")

    def __init__(
        self,
        env: "SimulationEnvironment",
        interval: float,
        action: Callable[[float], None],
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._env = env
        self.interval = float(interval)
        self._action = action
        self._handle: Optional[EventHandle] = None
        #: Number of boundary firings so far (observability / tests).
        self.fired = 0

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.pending

    def arm(self) -> None:
        """Schedule the next grid-aligned firing; no-op while armed."""
        if self.armed:
            return
        now = self._env.now()
        boundary = ((now // self.interval) + 1.0) * self.interval
        self._handle = self._env.schedule_at(boundary, self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.fired += 1
        boundary = self._env.now()
        self._action(boundary)
        # Re-arm only while other work is pending: a periodic observer
        # must never be the thing that keeps the simulation running.
        if self._env.pending_events > 0:
            self._handle = self._env.schedule_at(
                boundary + self.interval, self._fire
            )


class SimulationEnvironment:
    """Shared event loop, clock, and RNG registry for one simulated cloud."""

    def __init__(self, seed: int = 0, clock: Optional[VirtualClock] = None):
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = RngRegistry(seed)
        # Heap of (time, seq, record): seq breaks timestamp ties FIFO
        # and guarantees tuple comparison never reaches the record.
        self._heap: List[Tuple[float, int, _EventRecord]] = []
        self._next_seq = 0
        self._executed = 0
        # Cancelled entries still buried in the heap (lazy deletion).
        self._cancelled_in_heap = 0
        #: Times the heap was compacted (observability / tests).
        self.compactions = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now()

    @property
    def events_executed(self) -> int:
        """Total events processed so far (useful for overhead accounting)."""
        return self._executed

    @property
    def heap_size(self) -> int:
        """Entries currently in the heap, cancelled ones included."""
        return len(self._heap)

    @property
    def pending_events(self) -> int:
        """Live (schedulable) events currently in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        # Inlined schedule_at: a non-negative delay from "now" can never
        # land in the past, so skip the second clock read + range check
        # (schedule is the hottest entry point — one call per message
        # hop, watchdog, and retry timer).
        event = _EventRecord(self.clock.now() + delay, action)
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (event.time, seq, event))
        return EventHandle(event, self)

    def schedule_at(self, timestamp: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at an absolute virtual ``timestamp``."""
        if timestamp < self.clock.now():
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now()}, "
                f"target={timestamp}"
            )
        event = _EventRecord(timestamp, action)
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap, (timestamp, seq, event))
        return EventHandle(event, self)

    def every(
        self, interval: float, action: Callable[[float], None]
    ) -> RepeatingEvent:
        """Create and arm a grid-aligned :class:`RepeatingEvent`."""
        repeating = RepeatingEvent(self, interval, action)
        repeating.arm()
        return repeating

    # -- lazy deletion ---------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Bookkeeping hook for :meth:`EventHandle.cancel`: count the
        dead entry and compact once the dead outnumber the living."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(live) time).

        In place (slice assignment), never rebinding ``self._heap``:
        compaction fires from ``cancel()`` inside event actions, i.e.
        while ``run`` is iterating a local alias of the heap — a rebind
        would leave the loop draining a stale list and silently drop
        every event scheduled afterwards.
        """
        self._heap[:] = [e for e in self._heap if e[2].state == _PENDING]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    # -- stepping ----------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None if idle."""
        heap = self._heap
        while heap and heap[0][2].state != _PENDING:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.state != _PENDING:
                self._cancelled_in_heap -= 1
                continue
            self.clock.advance_to(time)
            event.state = _EXECUTED
            action = event.action
            event.action = None
            self._executed += 1
            action()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        Args:
            until: Absolute virtual time to stop at.  Events scheduled at
                or before ``until`` still run; the clock is left at
                ``until`` when the horizon is the binding constraint.
            max_events: Safety valve for runaway simulations.  Counts
                *executed* events only — skipped (cancelled) entries do
                not consume budget.

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        budget = float("inf") if max_events is None else max_events
        heap = self._heap
        heappop = heapq.heappop
        advance_to = self.clock.advance_to
        # One phase per run() call, not per event — the per-event cost of
        # a timer would dwarf many event actions and skew the numbers.
        with profiled_phase("sim.run"):
            while heap and executed < budget:
                head_time, _seq, head_event = heap[0]
                if head_event.state != _PENDING:
                    heappop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and head_time > until:
                    break
                # Batched same-timestamp dispatch: one clock advance and
                # one outer iteration cover every event tied at
                # ``head_time`` — including ones their actions schedule
                # at the same instant (higher seq => popped after every
                # earlier tie, preserving FIFO exactly).
                advance_to(head_time)
                while heap and heap[0][0] == head_time and executed < budget:
                    _, _, event = heappop(heap)
                    if event.state != _PENDING:
                        self._cancelled_in_heap -= 1
                        continue
                    event.state = _EXECUTED
                    action = event.action
                    event.action = None
                    self._executed += 1
                    executed += 1
                    action()
            if until is not None and self.clock.now() < until:
                advance_to(until)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        return self.run(max_events=max_events)
