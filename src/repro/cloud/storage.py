"""Object storage (S3 substitute).

Benchmarks "access external storage and services at or close to their
home region" (§9.1, fairness rule 1): input files and result artefacts
live in region-pinned buckets that are *not* migrated when functions
move, so a shifted function pays the cross-region read — exactly the
data-locality tension §1 describes.

Objects carry a logical ``size_bytes`` plus optional small real content;
the simulator never hauls real megabytes around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.cloud.network import Network
from repro.cloud.simulator import SimulationEnvironment
from repro.common.errors import CaribouError


class ObjectNotFound(CaribouError):
    """The requested bucket/key does not exist."""


@dataclass
class StoredObject:
    """One object: logical size plus optional payload for app logic."""

    size_bytes: float
    content: Any = None


class ObjectStore:
    """Region-pinned buckets of sized objects."""

    def __init__(self, env: SimulationEnvironment, network: Network):
        self._env = env
        self._network = network
        # bucket -> (region, {key: StoredObject})
        self._buckets: Dict[str, Tuple[str, Dict[str, StoredObject]]] = {}

    def create_bucket(self, bucket: str, region: str) -> None:
        if bucket in self._buckets:
            existing_region = self._buckets[bucket][0]
            if existing_region != region:
                raise CaribouError(
                    f"bucket {bucket!r} already exists in {existing_region}"
                )
            return
        self._buckets[bucket] = (region, {})

    def bucket_region(self, bucket: str) -> str:
        try:
            return self._buckets[bucket][0]
        except KeyError:
            raise ObjectNotFound(f"bucket {bucket!r} does not exist") from None

    def put_object(
        self,
        bucket: str,
        key: str,
        size_bytes: float,
        content: Any = None,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> float:
        """Upload an object.  Returns the transfer latency incurred."""
        region, objects = self._get_bucket(bucket)
        objects[key] = StoredObject(size_bytes=size_bytes, content=content)
        caller = caller_region or region
        result = self._network.transfer(
            caller, region, size_bytes, workflow=workflow, request_id=request_id,
            kind="data", edge=f"put:{bucket}/{key}",
        )
        return result.latency_s

    def get_object(
        self,
        bucket: str,
        key: str,
        caller_region: Optional[str] = None,
        workflow: str = "",
        request_id: str = "",
    ) -> Tuple[StoredObject, float]:
        """Download an object.  Returns ``(object, transfer latency)``.

        The transfer is billed from the bucket's region (the sender pays
        egress), matching AWS billing.
        """
        region, objects = self._get_bucket(bucket)
        if key not in objects:
            raise ObjectNotFound(f"{bucket}/{key} does not exist")
        obj = objects[key]
        caller = caller_region or region
        result = self._network.transfer(
            region, caller, obj.size_bytes, workflow=workflow,
            request_id=request_id, kind="data", edge=f"get:{bucket}/{key}",
        )
        return obj, result.latency_s

    def head_object(self, bucket: str, key: str) -> StoredObject:
        """Metadata-only lookup (no transfer charged)."""
        _, objects = self._get_bucket(bucket)
        if key not in objects:
            raise ObjectNotFound(f"{bucket}/{key} does not exist")
        return objects[key]

    def list_objects(self, bucket: str) -> Tuple[str, ...]:
        _, objects = self._get_bucket(bucket)
        return tuple(objects)

    def _get_bucket(self, bucket: str) -> Tuple[str, Dict[str, StoredObject]]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise ObjectNotFound(f"bucket {bucket!r} does not exist") from None
