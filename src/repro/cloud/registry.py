"""Container registry with crane-style cross-region image copy.

Initial deployment pushes each function's Docker image to the home
region's registry (§6.1 step 2).  Re-deployment does *not* rebuild:
the Deployment Migrator copies the existing image between registries
("crane, a lightweight library for image migration between arbitrary
container registries", §6.1), paying the image's bytes as a control-
plane transfer — one of the overheads the token bucket must budget for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cloud.network import Network
from repro.cloud.simulator import SimulationEnvironment
from repro.common.errors import DeploymentError


@dataclass(frozen=True)
class ImageManifest:
    """A pushed container image."""

    name: str
    tag: str
    size_bytes: float

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"


class ContainerRegistry:
    """All regional registries of the provider."""

    def __init__(self, env: SimulationEnvironment, network: Network):
        self._env = env
        self._network = network
        # (region, "name:tag") -> ImageManifest
        self._images: Dict[Tuple[str, str], ImageManifest] = {}

    def push(
        self, region: str, name: str, tag: str, size_bytes: float
    ) -> ImageManifest:
        """Build-and-push an image into ``region``'s registry."""
        if size_bytes <= 0:
            raise ValueError(f"image size must be positive, got {size_bytes}")
        manifest = ImageManifest(name=name, tag=tag, size_bytes=size_bytes)
        self._images[(region, manifest.reference)] = manifest
        return manifest

    def exists(self, region: str, name: str, tag: str) -> bool:
        return (region, f"{name}:{tag}") in self._images

    def get(self, region: str, name: str, tag: str) -> ImageManifest:
        try:
            return self._images[(region, f"{name}:{tag}")]
        except KeyError:
            raise DeploymentError(
                f"image {name}:{tag} not present in {region}"
            ) from None

    def copy_image(
        self,
        name: str,
        tag: str,
        src_region: str,
        dst_region: str,
        workflow: str = "",
    ) -> float:
        """Crane-style copy between registries.

        Returns the transfer latency.  Copying an image that is already
        present is a cheap no-op (crane skips identical layers).
        """
        manifest = self.get(src_region, name, tag)
        if self.exists(dst_region, name, tag):
            return 0.0
        result = self._network.transfer(
            src_region,
            dst_region,
            manifest.size_bytes,
            workflow=workflow,
            kind="image",
            edge=f"crane:{manifest.reference}",
        )
        self._images[(dst_region, manifest.reference)] = manifest
        return result.latency_s

    def delete(self, region: str, name: str, tag: str) -> None:
        self._images.pop((region, f"{name}:{tag}"), None)

    def images_in(self, region: str) -> Tuple[ImageManifest, ...]:
        return tuple(
            manifest for (r, _), manifest in self._images.items() if r == region
        )


class IamService:
    """Identity and access management roles (§6.1 step 2).

    One role per (workflow, function, region); deployment fails fast if
    the role is missing, which is how mis-configured manifests surface.
    """

    def __init__(self) -> None:
        self._roles: Dict[str, Dict[str, object]] = {}

    def create_role(self, role_name: str, policy: Optional[dict] = None) -> None:
        self._roles[role_name] = dict(policy or {})

    def role_exists(self, role_name: str) -> bool:
        return role_name in self._roles

    def get_policy(self, role_name: str) -> Dict[str, object]:
        try:
            return dict(self._roles[role_name])
        except KeyError:
            raise DeploymentError(f"IAM role {role_name!r} does not exist") from None

    def delete_role(self, role_name: str) -> None:
        self._roles.pop(role_name, None)

    def roles(self) -> Tuple[str, ...]:
        return tuple(self._roles)
