"""AWS Step Functions substitute (centralised orchestration service).

Fig. 12 compares Caribou against AWS Step Functions, the first-party
orchestrator.  Step Functions is faster than SNS-based chaining because
state transitions happen inside one service in one region with
proprietary optimisations (§9.6) — there is no publish + topic + delivery
round trip per edge, and synchronisation (fan-in) is tracked centrally
rather than through a distributed key-value store.

The service here provides exactly those primitives: a cheap per-edge
``transition`` delay and free central synchronisation state.  The actual
traversal logic lives in :mod:`repro.core.baselines`, which drives the
same applications through this engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cloud.simulator import SimulationEnvironment

#: Per-state-transition overhead, seconds.  Calibrated so that SNS-based
#: chaining is ~12.8 % slower on small inputs (Fig. 12): an SNS hop costs
#: publish + delivery overheads (~125 ms) versus this.
TRANSITION_OVERHEAD_S = 0.025


@dataclass
class _ExecutionState:
    """Central bookkeeping for one state-machine execution."""

    arrived: Dict[str, int] = field(default_factory=dict)
    done: bool = False


class StepFunctionsService:
    """Centralised state-machine execution bookkeeping.

    The orchestrator lives in one region; every transition adds the
    service overhead but no cross-region messaging (the paper's Fig. 12
    baseline runs single-region).
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        region: str,
        transition_overhead_s: float = TRANSITION_OVERHEAD_S,
    ):
        self._env = env
        self.region = region
        self._overhead = transition_overhead_s
        self._executions: Dict[str, _ExecutionState] = {}
        self._transitions = 0

    @property
    def transitions(self) -> int:
        """Total transitions performed (for overhead accounting)."""
        return self._transitions

    def start_execution(self, execution_id: str) -> None:
        if execution_id in self._executions:
            raise ValueError(f"execution {execution_id!r} already exists")
        self._executions[execution_id] = _ExecutionState()

    def transition_delay(self) -> float:
        """Charge one state transition and return its latency."""
        self._transitions += 1
        return self._overhead

    def record_arrival(self, execution_id: str, node: str) -> int:
        """Count a predecessor arrival at a fan-in state.

        Returns the number of arrivals seen so far for ``node`` —
        central synchronisation, no KV store round trips.
        """
        state = self._require(execution_id)
        state.arrived[node] = state.arrived.get(node, 0) + 1
        return state.arrived[node]

    def arrivals(self, execution_id: str, node: str) -> int:
        return self._require(execution_id).arrived.get(node, 0)

    def finish_execution(self, execution_id: str) -> None:
        self._require(execution_id).done = True

    def is_finished(self, execution_id: str) -> bool:
        return self._require(execution_id).done

    def _require(self, execution_id: str) -> _ExecutionState:
        try:
            return self._executions[execution_id]
        except KeyError:
            raise KeyError(f"unknown execution {execution_id!r}") from None
