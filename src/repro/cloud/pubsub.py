"""Publisher/subscriber messaging (SNS substitute).

Caribou uses pub/sub as its "geospatial offloading glue" (§6.2): each
function in each region subscribes to one topic; invoking a successor
means publishing a message to the successor's topic in whatever region
the deployment plan placed it.  The properties the framework relies on
are reproduced here:

* topics are region-scoped, one per (function, region);
* delivery is at-least-once: an unacknowledged (raising) subscriber is
  retried with backoff before the message is dead-lettered;
* publish + delivery add a service overhead on top of network latency —
  this overhead is what makes SNS orchestration slower than AWS Step
  Functions in Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.cloud.ledger import MessagingRecord, MeteringLedger
from repro.cloud.network import Network
from repro.cloud.simulator import EventHandle, SimulationEnvironment
from repro.common.errors import MessageDeliveryError, RegionUnavailableError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:
    from repro.cloud.faults import FaultInjector
    from repro.obs.trace import Tracer

#: Service-side processing time for accepting a publish, seconds.
PUBLISH_OVERHEAD_S = 0.025
#: Service-side time to hand a message to the subscriber, seconds.
DELIVERY_OVERHEAD_S = 0.100
#: Delivery retry policy.
MAX_DELIVERY_ATTEMPTS = 3
RETRY_BACKOFF_S = 0.5


@dataclass
class Message:
    """A published message: opaque body plus metering metadata."""

    body: Any
    size_bytes: float
    workflow: str = ""
    request_id: str = ""


@dataclass
class _Topic:
    name: str
    region: str
    subscriber: Optional[Callable[[Message], None]] = None
    delivered: int = 0
    dead_lettered: int = 0


class PubSubService:
    """All topics across all regions of the simulated provider."""

    def __init__(
        self,
        env: SimulationEnvironment,
        network: Network,
        ledger: MeteringLedger,
        publish_overhead_s: float = PUBLISH_OVERHEAD_S,
        delivery_overhead_s: float = DELIVERY_OVERHEAD_S,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._env = env
        self._network = network
        self._ledger = ledger
        self._faults = faults
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._publish_overhead = publish_overhead_s
        self._delivery_overhead = delivery_overhead_s
        self._topics: Dict[Tuple[str, str], _Topic] = {}
        self._dead_letters: List[Tuple[str, Message, str]] = []
        self._retries_by_workflow: Dict[str, int] = {}
        # Live retry-timer handles per workflow.  Backoff timers are the
        # event loop's cancellation-churn source, so keeping the handles
        # makes the churn observable (pending_retries) and controllable
        # (cancel_pending_retries) — e.g. when an operator tears down a
        # workflow whose requests are already terminally failed.
        self._retry_timers: Dict[str, List[EventHandle]] = {}
        self._dead_letters_by_workflow: Dict[str, int] = {}
        self._dead_letter_listeners: List[Callable[[str, Message, str], None]] = []
        # Per-region publish/delivery counters, resolved once per region
        # (two registry lookups per message otherwise).
        self._ctr_publishes: Dict[str, Any] = {}
        self._ctr_deliveries: Dict[str, Any] = {}

    # -- topic management ---------------------------------------------------
    def create_topic(self, name: str, region: str) -> None:
        key = (name, region)
        if key not in self._topics:
            self._topics[key] = _Topic(name=name, region=region)

    def delete_topic(self, name: str, region: str) -> None:
        self._topics.pop((name, region), None)

    def topic_exists(self, name: str, region: str) -> bool:
        return (name, region) in self._topics

    def subscribe(
        self, name: str, region: str, handler: Callable[[Message], None]
    ) -> None:
        """Attach the (single) subscriber for a topic.

        Caribou subscribes exactly one function per topic (§6.1 step 2),
        so a single-subscriber model is sufficient.
        """
        topic = self._require_topic(name, region)
        topic.subscriber = handler

    def topic_stats(self, name: str, region: str) -> Tuple[int, int]:
        """(delivered, dead_lettered) counts for a topic."""
        topic = self._require_topic(name, region)
        return topic.delivered, topic.dead_lettered

    @property
    def dead_letters(self) -> List[Tuple[str, Message, str]]:
        """Messages that exhausted retries: (topic, message, error)."""
        return list(self._dead_letters)

    def retry_count(self, workflow: str) -> int:
        """Redelivery attempts scheduled for ``workflow``'s messages."""
        return self._retries_by_workflow.get(workflow, 0)

    def pending_retries(self, workflow: str) -> int:
        """Retry timers of ``workflow`` armed right now."""
        return sum(1 for h in self._retry_timers.get(workflow, ()) if h.pending)

    def cancel_pending_retries(self, workflow: str) -> int:
        """Cancel every armed retry timer of ``workflow``.

        The affected messages are *not* dead-lettered — the workflow is
        assumed to be going away.  Returns the number of timers this
        call actually cancelled (already-fired ones are no-ops under
        the :class:`~repro.cloud.simulator.EventHandle` contract).
        """
        timers = self._retry_timers.pop(workflow, [])
        return sum(1 for h in timers if h.cancel())

    def dead_letter_count(self, workflow: str) -> int:
        """Messages of ``workflow`` given up on."""
        return self._dead_letters_by_workflow.get(workflow, 0)

    def add_dead_letter_listener(
        self, listener: Callable[[str, Message, str], None]
    ) -> None:
        """Register ``listener(topic, message, error)`` to observe every
        dead-lettered message (the executor uses this to mark the
        affected request failed instead of losing it silently)."""
        self._dead_letter_listeners.append(listener)

    def dead_letter(self, name: str, message: Message, error: str) -> None:
        """Record ``message`` as undeliverable without attempting delivery.

        Publishers use this when they can tell no delivery can succeed —
        e.g. the executor's home-region fallback finding no home topic —
        so the failure is counted and observable rather than raised from
        inside a scheduled callback.
        """
        self._dead_letters.append((name, message, error))
        self._metrics.counter("pubsub.dead_letters").inc()
        if message.workflow:
            self._dead_letters_by_workflow[message.workflow] = (
                self._dead_letters_by_workflow.get(message.workflow, 0) + 1
            )
        for listener in list(self._dead_letter_listeners):
            listener(name, message, error)

    # -- publishing ----------------------------------------------------------
    def publish(
        self,
        name: str,
        region: str,
        message: Message,
        source_region: str,
        edge_label: str = "",
    ) -> float:
        """Publish ``message`` to topic ``name`` in ``region``.

        The message body crosses the network from ``source_region`` to the
        topic's region, then is delivered to the subscriber after the
        service overheads.  Returns the publish-accept latency (what the
        *publisher* waits for); delivery happens asynchronously.

        ``edge_label`` tags the underlying transfer record (callers use
        the ``src->dst`` DAG edge key so the Metrics Manager can learn
        per-edge payload sizes and routes).
        """
        topic = self._require_topic(name, region)
        with self._tracer.span(
            "publish",
            edge_label or f"publish:{name}",
            workflow=message.workflow,
            request_id=message.request_id,
            topic=name,
            region=region,
            source_region=source_region,
            size_bytes=message.size_bytes,
        ) as span:
            if self._faults is not None and self._faults.region_down(region):
                self._faults.record("region_outage")
                raise RegionUnavailableError(
                    f"pub/sub in {region} is down; cannot accept publish to {name!r}"
                )
            ctr = self._ctr_publishes.get(region)
            if ctr is None:
                ctr = self._ctr_publishes[region] = self._metrics.counter(
                    "pubsub.publishes", region=region
                )
            ctr.inc()
            self._ledger.record_message(
                MessagingRecord(
                    workflow=message.workflow,
                    topic=name,
                    region=region,
                    start_s=self._env.now(),
                    size_bytes=message.size_bytes,
                    request_id=message.request_id,
                )
            )
            transfer = self._network.transfer(
                source_region,
                region,
                message.size_bytes,
                workflow=message.workflow,
                request_id=message.request_id,
                kind="data",
                edge=edge_label or f"publish:{name}",
            )
            arrival_delay = self._publish_overhead + transfer.latency_s
            # The span covers publish acceptance until the message is
            # handed to the topic's region (delivery attempts follow).
            span.end_at(self._env.now() + arrival_delay)
            self._env.schedule(
                arrival_delay,
                lambda: self._attempt_delivery(topic, message, attempt=1),
            )
        return self._publish_overhead

    def _attempt_delivery(self, topic: _Topic, message: Message, attempt: int) -> None:
        def deliver() -> None:
            if self._faults is not None and self._faults.region_down(topic.region):
                # The whole region is dark: the subscriber cannot run.
                # Retry with backoff — the outage may end first (§6.2's
                # at-least-once glue is what rides out such windows).
                self._faults.record("region_outage")
                self._fail(topic, message, f"region {topic.region} is down", attempt)
                return
            if topic.subscriber is None:
                self._fail(topic, message, "no subscriber", attempt)
                return
            try:
                topic.subscriber(message)
            except Exception as exc:  # subscriber did not ack
                self._fail(
                    topic,
                    message,
                    repr(exc),
                    attempt,
                    retryable=getattr(exc, "retryable", True),
                )
                return
            topic.delivered += 1
            ctr = self._ctr_deliveries.get(topic.region)
            if ctr is None:
                ctr = self._ctr_deliveries[topic.region] = self._metrics.counter(
                    "pubsub.deliveries", region=topic.region
                )
            ctr.inc()

        self._env.schedule(self._delivery_overhead, deliver)

    def _fail(
        self,
        topic: _Topic,
        message: Message,
        error: str,
        attempt: int,
        retryable: bool = True,
    ) -> None:
        """One failed delivery attempt: retry with exponential backoff,
        unless retries are exhausted or the error is deterministic
        (``retryable=False``, e.g. a malformed workflow) — re-running the
        user handler cannot change those, so they dead-letter at once."""
        if not retryable or attempt >= MAX_DELIVERY_ATTEMPTS:
            topic.dead_lettered += 1
            self.dead_letter(topic.name, message, error)
            return
        self._metrics.counter("pubsub.retries").inc()
        if message.workflow:
            self._retries_by_workflow[message.workflow] = (
                self._retries_by_workflow.get(message.workflow, 0) + 1
            )
        backoff = RETRY_BACKOFF_S * (2 ** (attempt - 1))
        handle = self._env.schedule(
            backoff, lambda: self._attempt_delivery(topic, message, attempt + 1)
        )
        if message.workflow:
            timers = self._retry_timers.setdefault(message.workflow, [])
            # Lazily prune timers that fired or were cancelled since the
            # last retry, so the list tracks live churn, not history.
            timers[:] = [h for h in timers if h.pending]
            timers.append(handle)

    def _require_topic(self, name: str, region: str) -> _Topic:
        try:
            return self._topics[(name, region)]
        except KeyError:
            raise MessageDeliveryError(
                f"topic {name!r} does not exist in region {region!r}"
            ) from None
