"""Simulated multi-region serverless cloud (the AWS substrate).

The original Caribou runs on AWS Lambda + SNS + DynamoDB + ECR across
regions.  This package provides in-process, discrete-event-simulated
equivalents with the same API shapes the framework layers consume:

* :mod:`repro.cloud.simulator` — virtual-time event loop.
* :mod:`repro.cloud.functions` — FaaS runtime (Lambda substitute) with
  memory-based vCPU sizing, cold starts, and Insights-style logs.
* :mod:`repro.cloud.pubsub` — at-least-once pub/sub (SNS substitute).
* :mod:`repro.cloud.kvstore` — distributed KV store with atomic
  conditional updates (DynamoDB substitute).
* :mod:`repro.cloud.storage` — object storage (S3 substitute).
* :mod:`repro.cloud.registry` — container registry + crane-style copy.
* :mod:`repro.cloud.network` — inter-region transfer model.
* :mod:`repro.cloud.stepfunctions` — centralised orchestrator baseline.
* :mod:`repro.cloud.provider` — the facade wiring one cloud together.
"""

from repro.cloud.ledger import ExecutionRecord, MeteringLedger, TransmissionRecord
from repro.cloud.provider import SimulatedCloud
from repro.cloud.simulator import SimulationEnvironment

__all__ = [
    "SimulationEnvironment",
    "SimulatedCloud",
    "MeteringLedger",
    "ExecutionRecord",
    "TransmissionRecord",
]
