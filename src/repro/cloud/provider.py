"""The simulated cloud provider facade.

Wires one :class:`~repro.cloud.simulator.SimulationEnvironment` together
with every service the framework needs — network, functions, pub/sub,
object storage, container registries, IAM, Step Functions — plus the
synthetic external data sources (carbon, pricing, latency).  One
``SimulatedCloud`` is one self-consistent "world" for an experiment.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.cloud.faults import FaultInjector, FaultPlan
from repro.cloud.functions import FunctionService
from repro.cloud.kvstore import KeyValueStore
from repro.cloud.ledger import MeteringLedger
from repro.cloud.network import Network
from repro.cloud.pubsub import PubSubService
from repro.cloud.registry import ContainerRegistry, IamService
from repro.cloud.simulator import SimulationEnvironment
from repro.cloud.stepfunctions import StepFunctionsService
from repro.cloud.storage import ObjectStore
from repro.data.carbon import CarbonIntensitySource
from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.data.regions import EVALUATION_REGIONS, get_region
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


class SimulatedCloud:
    """All services of the provider, sharing one clock, RNG, and ledger."""

    def __init__(
        self,
        seed: int = 0,
        regions: Optional[Sequence[str]] = None,
        carbon_horizon_hours: int = 24 * 7,
        carbon_overrides: Optional[Mapping[str, Sequence[float]]] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        """Build a cloud.

        Args:
            seed: Experiment seed; drives every stochastic component.
            regions: Regions available for deployment.  Defaults to the
                paper's four evaluation regions (§9.1).
            carbon_horizon_hours: Length of the materialised carbon
                traces (defaults to the paper's one-week window).
            carbon_overrides: Explicit carbon series per grid zone (for
                tests / what-if studies).
            fault_plan: Declarative fault schedule for chaos
                experiments.  Defaults to the empty plan, which injects
                nothing and leaves every service's behaviour (including
                its RNG streams) byte-identical to a fault-free build.
            tracer: Structured span tracer all services report into.
                Defaults to the no-op tracer; traced runs stay
                byte-identical (ledger, RNG, event order) to untraced
                ones because tracing only *observes*.
            metrics: Metrics registry for operational counters,
                gauges, and histograms.  Defaults to a fresh enabled
                registry (aggregation is cheap and side-effect-free).
        """
        self.regions: tuple = tuple(regions if regions is not None else EVALUATION_REGIONS)
        for name in self.regions:
            get_region(name)  # validate early

        self.env = SimulationEnvironment(seed=seed)
        self.ledger = MeteringLedger()
        self.latency_source = LatencySource()
        self.pricing_source = PricingSource()
        self.carbon_source = CarbonIntensitySource(
            hours=carbon_horizon_hours, seed=seed, overrides=carbon_overrides
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(self.env.clock)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.faults = FaultInjector(self.fault_plan, self.env)
        self.network = Network(
            self.env, self.latency_source, self.ledger, faults=self.faults,
            tracer=self.tracer, metrics=self.metrics,
        )
        self.functions = FunctionService(
            self.env, self.ledger, faults=self.faults,
            tracer=self.tracer, metrics=self.metrics,
        )
        self.pubsub = PubSubService(
            self.env, self.network, self.ledger, faults=self.faults,
            tracer=self.tracer, metrics=self.metrics,
        )
        self.storage = ObjectStore(self.env, self.network)
        self.registry = ContainerRegistry(self.env, self.network)
        self.iam = IamService()
        self._kvstores: Dict[str, KeyValueStore] = {}
        self._stepfunctions: Dict[str, StepFunctionsService] = {}

    def kvstore(self, region: str) -> KeyValueStore:
        """The distributed key-value store hosted in ``region``.

        Caribou keeps its metadata (deployment plans, annotations,
        intermediate data) in one store in the framework's region; this
        accessor creates it lazily.
        """
        if region not in self._kvstores:
            get_region(region)
            self._kvstores[region] = KeyValueStore(
                self.env, region, self.latency_source, self.ledger,
                faults=self.faults, tracer=self.tracer, metrics=self.metrics,
            )
        return self._kvstores[region]

    def stepfunctions(self, region: str) -> StepFunctionsService:
        """The Step Functions orchestration service in ``region``."""
        if region not in self._stepfunctions:
            get_region(region)
            self._stepfunctions[region] = StepFunctionsService(self.env, region)
        return self._stepfunctions[region]

    def now(self) -> float:
        return self.env.now()

    def run(self, until: Optional[float] = None) -> int:
        """Advance the simulation (see :meth:`SimulationEnvironment.run`)."""
        return self.env.run(until=until)

    def run_until_idle(self) -> int:
        return self.env.run_until_idle()
