"""Inter-region network model.

Every byte that crosses a region boundary matters three ways in the
paper: transmission *latency* (QoS), egress *cost* (§7.1), and
transmission *carbon* (Eq. 7.5).  This module models latency and records
transfers in the ledger; carbon and cost are derived later by the metrics
layer so that a single simulated run can be re-priced under the paper's
best-/worst-case transmission-energy scenarios without re-running.

Transfer latency = one-way propagation (CloudPing-derived RTT / 2)
+ size / effective bandwidth + multiplicative jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cloud.ledger import MeteringLedger, TransmissionRecord
from repro.cloud.simulator import SimulationEnvironment
from repro.common.errors import NetworkPartitionError
from repro.data.latency import LatencySource
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:
    from repro.cloud.faults import FaultInjector
    from repro.obs.trace import Tracer

#: Histogram bucket bounds for transfer sizes, bytes.
SIZE_BUCKETS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)

#: Effective cross-region throughput for serverless payloads, bytes/sec.
#: (Conservative relative to backbone capacity: per-connection TCP over
#: long fat pipes, as SNS/Lambda payload hops see in practice.)
DEFAULT_INTER_REGION_BANDWIDTH = 40e6
#: Intra-region service-to-service throughput, bytes/sec.
DEFAULT_INTRA_REGION_BANDWIDTH = 200e6


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one transfer: when it lands and what it consumed."""

    latency_s: float
    size_bytes: float
    src_region: str
    dst_region: str


class Network:
    """Latency/jitter model for transfers, with ledger recording."""

    def __init__(
        self,
        env: SimulationEnvironment,
        latency_source: LatencySource,
        ledger: MeteringLedger,
        inter_region_bandwidth: float = DEFAULT_INTER_REGION_BANDWIDTH,
        intra_region_bandwidth: float = DEFAULT_INTRA_REGION_BANDWIDTH,
        jitter_std: float = 0.08,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._env = env
        self._latency = latency_source
        self._ledger = ledger
        self._faults = faults
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._inter_bw = inter_region_bandwidth
        self._intra_bw = intra_region_bandwidth
        self._jitter_std = jitter_std
        self._rng = env.rng.get("network")
        # Per-instance instrument cache: transfers happen per message at
        # open-loop rates and registry lookups (key formatting + dict
        # get) are measurable there.
        self._transfer_counters: dict = {}
        self._ctr_egress = self._metrics.counter("network.egress_bytes")
        self._hist_latency = self._metrics.histogram("network.transfer_latency_s")
        self._hist_bytes = self._metrics.histogram(
            "network.transfer_bytes", bounds=SIZE_BUCKETS
        )

    def transfer_latency(
        self, src: str, dst: str, size_bytes: float, jitter: bool = True
    ) -> float:
        """Latency in seconds to move ``size_bytes`` from ``src`` to ``dst``."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        propagation = self._latency.one_way(src, dst)
        bandwidth = self._intra_bw if src == dst else self._inter_bw
        serialisation = size_bytes / bandwidth
        base = propagation + serialisation
        if jitter and self._jitter_std > 0:
            base *= max(0.2, 1.0 + self._rng.normal(0.0, self._jitter_std))
        return base

    def transfer(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        workflow: str = "",
        request_id: str = "",
        kind: str = "data",
        edge: str = "",
    ) -> TransferResult:
        """Perform a transfer now, recording it in the ledger.

        The caller is responsible for scheduling whatever happens at
        arrival time (``env.now() + latency_s``).  Raises
        :class:`~repro.common.errors.NetworkPartitionError` while an
        injected partition separates the two endpoints.
        """
        if self._faults is not None and self._faults.partitioned(src, dst):
            self._faults.record("network_partition")
            self._metrics.counter("network.partition_refusals").inc()
            raise NetworkPartitionError(
                f"transfer {src} -> {dst} refused: regions are partitioned"
            )
        latency = self.transfer_latency(src, dst, size_bytes)
        now = self._env.now()
        if self._tracer.enabled:
            self._tracer.record(
                "transfer",
                edge or f"{src}->{dst}",
                t0=now,
                t1=now + latency,
                workflow=workflow,
                request_id=request_id,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                transfer_kind=kind,
            )
        ctr = self._transfer_counters.get(kind)
        if ctr is None:
            ctr = self._transfer_counters[kind] = self._metrics.counter(
                "network.transfers", kind=kind
            )
        ctr.inc()
        if src != dst:
            self._ctr_egress.inc(size_bytes)
        self._hist_latency.observe(latency)
        self._hist_bytes.observe(size_bytes)
        self._ledger.record_transmission(
            TransmissionRecord(
                workflow=workflow,
                src_region=src,
                dst_region=dst,
                size_bytes=size_bytes,
                start_s=self._env.now(),
                latency_s=latency,
                request_id=request_id,
                kind=kind,
                edge=edge,
            )
        )
        return TransferResult(
            latency_s=latency, size_bytes=size_bytes, src_region=src, dst_region=dst
        )
