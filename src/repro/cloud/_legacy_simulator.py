"""The pre-rewrite event loop, kept verbatim as a differential oracle.

This is the original ``heapq``-of-dataclasses implementation that
:mod:`repro.cloud.simulator` replaced with the slotted-record loop.  It
is retained **only** so tests can drive the same workload through both
loops and assert byte-identical event ordering (FIFO among timestamp
ties) and clock trajectories — the rewrite's correctness contract.

Do not use this in new code: it re-scans the heap head twice per event
(``peek_time`` + ``step``), never reclaims cancelled entries, and its
handles mis-report ``pending`` after execution.  Those are exactly the
behaviours the new loop fixes; the differential tests only compare the
parts both loops promise (execution order and times).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.clock import VirtualClock
from repro.common.rng import RngRegistry


@dataclass(order=True)
class _LegacyEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class LegacyEventHandle:
    """Handle with the *old* semantics (``pending`` stays True after the
    event executed; ``cancel`` on an executed event 'succeeds')."""

    def __init__(self, event: _LegacyEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def pending(self) -> bool:
        return not self._event.cancelled


class LegacySimulationEnvironment:
    """The original shared event loop, preserved for differential tests."""

    def __init__(self, seed: int = 0, clock: Optional[VirtualClock] = None):
        self.clock = clock if clock is not None else VirtualClock()
        self.rng = RngRegistry(seed)
        self._queue: List[_LegacyEvent] = []
        self._seq = itertools.count()
        self._executed = 0

    def now(self) -> float:
        return self.clock.now()

    @property
    def events_executed(self) -> int:
        return self._executed

    def schedule(self, delay: float, action: Callable[[], None]) -> LegacyEventHandle:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now() + delay, action)

    def schedule_at(
        self, timestamp: float, action: Callable[[], None]
    ) -> LegacyEventHandle:
        if timestamp < self.now():
            raise ValueError(
                f"cannot schedule in the past: now={self.now()}, target={timestamp}"
            )
        event = _LegacyEvent(time=timestamp, seq=next(self._seq), action=action)
        heapq.heappush(self._queue, event)
        return LegacyEventHandle(event)

    def peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._executed += 1
            event.action()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and self.now() < until:
            self.clock.advance_to(until)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        return self.run(max_events=max_events)
